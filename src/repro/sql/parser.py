"""Recursive-descent SQL parser.

Parses the dialect described in DESIGN.md into the AST of
:mod:`repro.sql.ast_nodes`.  The parser is *profile aware*: when
constructed with a legacy :class:`~repro.config.HiveConf` it raises
:class:`~repro.errors.UnsupportedFeatureError` for the constructs the
paper lists as missing from Hive v1.2 (set operations, interval
notation, grouping sets...) — this is what limits the legacy profile to a
subset of the benchmark queries in the Figure 7 reproduction.
"""

from __future__ import annotations

import datetime
from typing import Optional

from ..config import HiveConf
from ..errors import ParseError, UnsupportedFeatureError
from . import ast_nodes as ast
from .lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">=", "=="}
_INTERVAL_UNITS = {"DAY", "MONTH", "YEAR", "HOUR", "MINUTE", "SECOND",
                   "QUARTER", "WEEK"}


def parse_statement(text: str, conf: Optional[HiveConf] = None) -> ast.Statement:
    """Parse one SQL statement (trailing ``;`` allowed)."""
    return Parser(text, conf).parse_statement()


def parse_query(text: str, conf: Optional[HiveConf] = None) -> ast.Query:
    """Parse a bare query expression."""
    parser = Parser(text, conf)
    query = parser.parse_query()
    parser.expect_end()
    return query


class Parser:
    def __init__(self, text: str, conf: Optional[HiveConf] = None):
        self.text = text
        self.conf = conf or HiveConf()
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_op(self, *ops: str) -> bool:
        if self.peek().is_op(*ops):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names)}")
        return self.advance()

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}")
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            return self.advance().value
        # many keywords double as identifiers in practice (e.g. date)
        if token.type is TokenType.KEYWORD and token.value in (
                "DATE", "TIMESTAMP", "YEAR", "MONTH", "DAY", "FIRST",
                "LAST", "KEY", "PLAN", "POOL", "RULE", "DEFAULT", "ROW"):
            return self.advance().value.lower()
        raise self._error("expected identifier")

    def expect_number(self) -> float:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise self._error("expected number")
        self.advance()
        return _numeric(token.value)

    def expect_string(self) -> str:
        token = self.peek()
        if token.type is not TokenType.STRING:
            raise self._error("expected string literal")
        return self.advance().value

    def expect_end(self) -> None:
        self.accept_op(";")
        if self.peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    def _error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} at line {token.line} near {token.value!r}",
            token.position, token.line)

    def _unsupported(self, feature: str) -> UnsupportedFeatureError:
        token = self.peek()
        return UnsupportedFeatureError(
            f"{feature} is not supported by profile {self.conf.name}",
            token.position, token.line)

    # ------------------------------------------------------------------ #
    # statements
    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = validate = history = lineage = False
            # EXPLAIN ANALYZE <query> (but EXPLAIN ANALYZE TABLE ... is
            # an explain of the ANALYZE TABLE statement itself)
            if self.peek().is_keyword("ANALYZE") \
                    and not self.peek(1).is_keyword("TABLE"):
                self.advance()
                analyze = True
            elif self.peek().is_keyword("VALIDATE"):
                self.advance()
                validate = True
            elif (self.peek().type is TokenType.IDENT
                    and self.peek().value.lower() == "history"):
                # HISTORY is deliberately not a reserved word
                self.advance()
                history = True
            elif (self.peek().type is TokenType.IDENT
                    and self.peek().value.lower() == "lineage"):
                # LINEAGE is deliberately not a reserved word either
                self.advance()
                lineage = True
            inner = self.parse_statement()
            return ast.Explain(inner, analyze=analyze, validate=validate,
                               history=history, lineage=lineage)
        if token.is_keyword("SELECT", "WITH"):
            query = self.parse_query()
            self.expect_end()
            return ast.SelectStatement(query)
        if token.is_op("("):
            query = self.parse_query()
            self.expect_end()
            return ast.SelectStatement(query)
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("ALTER"):
            return self._parse_alter()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("MERGE"):
            return self._parse_merge()
        if token.is_keyword("ANALYZE"):
            return self._parse_analyze()
        if token.is_keyword("SET"):
            return self._parse_set()
        if token.is_keyword("SHOW"):
            self.advance()
            if self.accept_keyword("DATABASES"):
                self.expect_end()
                return ast.ShowDatabases()
            if self.accept_keyword("MATERIALIZED"):
                # accept SHOW MATERIALIZED VIEWS (and the VIEW spelling)
                if not self.accept_keyword("VIEW"):
                    if (self.peek().type is TokenType.IDENT
                            and self.peek().value.lower() == "views"):
                        self.advance()
                    else:
                        raise self._error("expected VIEWS")
                self.expect_end()
                return ast.ShowMaterializedViews()
            if self.accept_keyword("PARTITION") or (
                    self.peek().type is TokenType.IDENT
                    and self.peek().value.lower() == "partitions"
                    and self.advance()):
                table = self._parse_qualified_name()
                self.expect_end()
                return ast.ShowPartitions(table)
            self.expect_keyword("TABLES")
            self.expect_end()
            return ast.ShowTables()
        if token.is_keyword("DESCRIBE"):
            self.advance()
            name = self._parse_qualified_name()
            self.expect_end()
            return ast.DescribeTable(name)
        if token.is_keyword("FROM"):
            return self._parse_multi_insert()
        if token.is_keyword("START", "BEGIN"):
            self.advance()
            self.accept_keyword("TRANSACTION")
            self.expect_end()
            return ast.StartTransaction()
        if token.is_keyword("COMMIT"):
            self.advance()
            self.expect_end()
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            self.advance()
            self.expect_end()
            return ast.Rollback()
        if token.is_keyword("KILL"):
            self.advance()
            # QUERY is deliberately not a reserved word; match the ident
            word = self.expect_ident()
            if word.lower() != "query":
                raise self._error("expected QUERY after KILL")
            query_id = self.expect_number()
            self.expect_end()
            return ast.KillQuery(int(query_id))
        if token.is_keyword("ADD"):
            self.advance()
            self.expect_keyword("RULE")
            rule = self.expect_ident()
            self.expect_keyword("TO")
            pool = self.expect_ident()
            self.expect_end()
            return ast.AddRuleToPool(rule, pool)
        raise self._error("unrecognized statement")

    # -- CREATE ... ----------------------------------------------------- #
    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("DATABASE") or self.accept_keyword("SCHEMA"):
            if_not_exists = self._accept_if_not_exists()
            name = self.expect_ident()
            self.expect_end()
            return ast.CreateDatabase(name, if_not_exists)
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            return self._parse_create_mv()
        if self.accept_keyword("RESOURCE"):
            self.expect_keyword("PLAN")
            name = self.expect_ident()
            self.expect_end()
            return ast.CreateResourcePlan(name)
        if self.accept_keyword("POOL"):
            return self._parse_create_pool()
        if self.accept_keyword("RULE"):
            return self._parse_create_rule()
        if self.accept_keyword("APPLICATION"):
            self.expect_keyword("MAPPING")
            app = self.expect_ident()
            self.expect_keyword("IN")
            plan = self.expect_ident()
            self.expect_keyword("TO")
            pool = self.expect_ident()
            self.expect_end()
            return ast.CreateApplicationMapping(app, plan, pool)
        external = self.accept_keyword("EXTERNAL")
        self.expect_keyword("TABLE")
        return self._parse_create_table(external)

    def _accept_if_not_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            # EXISTS is a keyword token
            self.expect_keyword("EXISTS")
            return True
        return False

    def _parse_create_table(self, external: bool) -> ast.CreateTable:
        if_not_exists = self._accept_if_not_exists()
        name = self._parse_qualified_name()
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[ast.ForeignKeyDef] = []
        unique_keys: list[tuple[str, ...]] = []
        if self.accept_op("("):
            while True:
                if self.peek().is_keyword("PRIMARY"):
                    self.advance()
                    self.expect_keyword("KEY")
                    primary_key = self._parse_paren_name_list()
                    self._skip_constraint_suffix()
                elif self.peek().is_keyword("FOREIGN"):
                    self.advance()
                    self.expect_keyword("KEY")
                    cols = self._parse_paren_name_list()
                    self.expect_keyword("REFERENCES")
                    ref_table = self._parse_qualified_name()
                    ref_cols = self._parse_paren_name_list()
                    self._skip_constraint_suffix()
                    foreign_keys.append(
                        ast.ForeignKeyDef(cols, ref_table, ref_cols))
                elif self.peek().is_keyword("UNIQUE"):
                    self.advance()
                    unique_keys.append(self._parse_paren_name_list())
                    self._skip_constraint_suffix()
                elif self.peek().is_keyword("CONSTRAINT"):
                    self.advance()
                    self.expect_ident()  # constraint name, ignored
                    continue
                else:
                    columns.append(self._parse_column_def())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        partition_columns: list[ast.ColumnDef] = []
        file_format = "orc"
        storage_handler = None
        properties: list[tuple[str, str]] = []
        as_query = None
        while True:
            if self.accept_keyword("PARTITIONED"):
                self.expect_keyword("BY")
                self.expect_op("(")
                while True:
                    partition_columns.append(self._parse_column_def())
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
            elif self.accept_keyword("STORED"):
                if self.accept_keyword("BY"):
                    storage_handler = self.expect_string()
                else:
                    self.expect_keyword("AS")
                    file_format = self.expect_ident().lower()
                    if file_format == "textfile":
                        file_format = "text"
            elif self.accept_keyword("TBLPROPERTIES"):
                properties = self._parse_properties()
            elif self.accept_keyword("AS"):
                as_query = self.parse_query()
                break
            else:
                break
        self.expect_end()
        return ast.CreateTable(
            name=name, columns=tuple(columns),
            partition_columns=tuple(partition_columns), external=external,
            file_format=file_format, storage_handler=storage_handler,
            properties=tuple(properties), primary_key=primary_key,
            foreign_keys=tuple(foreign_keys),
            unique_keys=tuple(unique_keys), if_not_exists=if_not_exists,
            as_query=as_query)

    def _skip_constraint_suffix(self) -> None:
        """Hive requires DISABLE NOVALIDATE on informational constraints;

        accept and ignore such trailing words."""
        suffix_words = ("disable", "novalidate", "rely", "norely", "enable")
        while ((self.peek().type is TokenType.IDENT
                and self.peek().value.lower() in suffix_words)
               or self.peek().is_keyword("DISABLE", "ENABLE")):
            self.advance()

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_token = self.peek()
        if type_token.type in (TokenType.IDENT, TokenType.KEYWORD):
            type_name = self.advance().value
        else:
            raise self._error("expected column type")
        params: list[int] = []
        if self.accept_op("("):
            while True:
                params.append(int(self.expect_number()))
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        not_null = False
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            not_null = True
            self._skip_constraint_suffix()
        return ast.ColumnDef(name, type_name.upper(), tuple(params),
                             not_null)

    def _parse_paren_name_list(self) -> tuple[str, ...]:
        self.expect_op("(")
        names = [self.expect_ident()]
        while self.accept_op(","):
            names.append(self.expect_ident())
        self.expect_op(")")
        return tuple(names)

    def _parse_properties(self) -> list[tuple[str, str]]:
        self.expect_op("(")
        props = []
        while True:
            key = self.expect_string()
            self.expect_op("=")
            value = self.expect_string()
            props.append((key, value))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return props

    def _parse_create_mv(self) -> ast.CreateMaterializedView:
        name = self._parse_qualified_name()
        disable_rewrite = False
        stored_by = None
        properties: list[tuple[str, str]] = []
        while True:
            if self.accept_keyword("DISABLE"):
                self.expect_keyword("REWRITE")
                disable_rewrite = True
            elif self.accept_keyword("STORED"):
                self.expect_keyword("BY")
                stored_by = self.expect_string()
            elif self.accept_keyword("TBLPROPERTIES"):
                properties = self._parse_properties()
            else:
                break
        self.expect_keyword("AS")
        query = self.parse_query()
        self.expect_end()
        return ast.CreateMaterializedView(
            name, query, tuple(properties), stored_by, disable_rewrite)

    def _parse_create_pool(self) -> ast.CreatePool:
        plan = self.expect_ident()
        self.expect_op(".")
        pool = self.expect_ident()
        self.expect_keyword("WITH")
        alloc_fraction = 1.0
        parallelism = 1
        while True:
            key = self.expect_ident().lower()
            self.expect_op("=")
            value = self.expect_number()
            if key == "alloc_fraction":
                alloc_fraction = float(value)
            elif key == "query_parallelism":
                parallelism = int(value)
            else:
                raise self._error(f"unknown pool property {key!r}")
            if not self.accept_op(","):
                break
        self.expect_end()
        return ast.CreatePool(plan, pool, alloc_fraction, parallelism)

    def _parse_create_rule(self) -> ast.CreateTriggerRule:
        name = self.expect_ident()
        self.expect_keyword("IN")
        plan = self.expect_ident()
        self.expect_keyword("WHEN")
        metric = self.expect_ident().lower()
        if self.accept_op("("):
            # derived-metric triggers: WHEN p95(query.latency_s) > ...,
            # alert rules: WHEN rate(faults.injected) > ... OVER 60s,
            # query-store triggers: WHEN regression(query.latency_s) > F
            is_percentile = (metric[:1] == "p" and
                             metric[1:].replace(".", "", 1).isdigit())
            if metric not in ("rate", "regression") \
                    and not is_percentile:
                raise self._error(
                    "expected p<percentile>(metric), rate(metric) or "
                    "regression(metric) in WHEN condition")
            inner = [self.expect_ident()]
            while self.accept_op("."):
                inner.append(self.expect_ident())
            self.expect_op(")")
            metric = f"{metric}({'.'.join(inner).lower()})"
        self.expect_op(">")
        threshold = self.expect_number()
        over_s = 0.0
        if self.accept_keyword("OVER"):
            # trailing window: OVER 60s (the unit suffix lexes as an
            # adjacent identifier and is optional)
            over_s = float(self.expect_number())
            if (self.peek().type is TokenType.IDENT
                    and self.peek().value.lower() == "s"):
                self.advance()
        self.expect_keyword("THEN")
        if self.accept_keyword("MOVE"):
            target = self.expect_ident()
            action, arg = "MOVE", target
        elif self.accept_keyword("KILL"):
            action, arg = "KILL", None
        else:
            raise self._error("expected MOVE or KILL")
        self.expect_end()
        return ast.CreateTriggerRule(name, plan, metric, float(threshold),
                                     action, arg, over_s=over_s)

    # -- DROP / ALTER ------------------------------------------------------ #
    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        is_mv = False
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            is_mv = True
        else:
            self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self._parse_qualified_name()
        self.expect_end()
        return ast.DropTable(name, if_exists, is_mv)

    def _parse_alter(self) -> ast.Statement:
        self.expect_keyword("ALTER")
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            name = self._parse_qualified_name()
            self.expect_keyword("REBUILD")
            self.expect_end()
            return ast.AlterMaterializedViewRebuild(name)
        if self.accept_keyword("RESOURCE"):
            self.expect_keyword("PLAN")
            plan = self.expect_ident()
            self.expect_keyword("ENABLE")
            self.expect_keyword("ACTIVATE")
            self.expect_end()
            return ast.AlterPlan(plan, enable_activate=True)
        if self.accept_keyword("PLAN"):
            plan = self.expect_ident()
            self.expect_keyword("SET")
            self.expect_keyword("DEFAULT")
            self.expect_keyword("POOL")
            self.expect_op("=")
            pool = self.expect_ident()
            self.expect_end()
            return ast.AlterPlan(plan, default_pool=pool)
        if self.accept_keyword("TABLE"):
            name = self._parse_qualified_name()
            # RENAME is deliberately not a reserved word
            if not (self.peek().type is TokenType.IDENT
                    and self.peek().value.lower() == "rename"):
                raise self._error("expected RENAME TO")
            self.advance()
            self.expect_keyword("TO")
            new_name = self.expect_ident()
            self.expect_end()
            return ast.AlterTableRename(name, new_name)
        raise self._error("unsupported ALTER statement")

    # -- DML --------------------------------------------------------------- #
    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        overwrite = False
        if self.peek().type is TokenType.IDENT and \
                self.peek().value.lower() == "overwrite":
            self.advance()
            overwrite = True
            self.accept_keyword("TABLE")
        else:
            self.expect_keyword("INTO")
            self.accept_keyword("TABLE")
        table = self._parse_qualified_name()
        partition_spec: list[tuple[str, object]] = []
        if self.accept_keyword("PARTITION"):
            self.expect_op("(")
            while True:
                col = self.expect_ident()
                self.expect_op("=")
                value = self._parse_literal_value()
                partition_spec.append((col, value))
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        columns: tuple[str, ...] = ()
        if self.peek().is_op("(") and self._looks_like_column_list():
            columns = self._parse_paren_name_list()
        if self.accept_keyword("VALUES"):
            rows = []
            while True:
                self.expect_op("(")
                row = [self.parse_expr()]
                while self.accept_op(","):
                    row.append(self.parse_expr())
                self.expect_op(")")
                rows.append(tuple(row))
                if not self.accept_op(","):
                    break
            self.expect_end()
            return ast.Insert(table, tuple(partition_spec), columns,
                              values=tuple(rows), overwrite=overwrite)
        query = self.parse_query()
        self.expect_end()
        return ast.Insert(table, tuple(partition_spec), columns,
                          query=query, overwrite=overwrite)

    def _looks_like_column_list(self) -> bool:
        """Distinguish ``INSERT INTO t (a, b) VALUES`` from

        ``INSERT INTO t (SELECT ...)``."""
        return not self.peek(1).is_keyword("SELECT", "WITH")

    def _parse_literal_value(self):
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return _numeric(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.is_keyword("NULL"):
            self.advance()
            return None
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        if token.is_keyword("DATE"):
            self.advance()
            return datetime.date.fromisoformat(self.expect_string())
        raise self._error("expected literal value")

    def _parse_multi_insert(self) -> ast.MultiInsert:
        """FROM <source> (INSERT INTO t SELECT ... [WHERE ...])+"""
        self.expect_keyword("FROM")
        source = self._parse_table_primary()
        branches: list[ast.Insert] = []
        while self.peek().is_keyword("INSERT"):
            self.expect_keyword("INSERT")
            overwrite = False
            if self.peek().type is TokenType.IDENT and \
                    self.peek().value.lower() == "overwrite":
                self.advance()
                overwrite = True
                self.accept_keyword("TABLE")
            else:
                self.expect_keyword("INTO")
                self.accept_keyword("TABLE")
            table = self._parse_qualified_name()
            partition_spec: list[tuple[str, object]] = []
            if self.accept_keyword("PARTITION"):
                self.expect_op("(")
                while True:
                    col = self.expect_ident()
                    self.expect_op("=")
                    partition_spec.append((col,
                                           self._parse_literal_value()))
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
            self.expect_keyword("SELECT")
            items = [self._parse_select_item()]
            while self.accept_op(","):
                items.append(self._parse_select_item())
            where = None
            if self.accept_keyword("WHERE"):
                where = self.parse_expr()
            spec = ast.QuerySpec(tuple(items),
                                 (ast.NamedTable("__multi_insert_src__"),),
                                 where)
            branches.append(ast.Insert(
                table, tuple(partition_spec), (),
                query=ast.Query(spec), overwrite=overwrite))
        if not branches:
            raise self._error("multi-insert needs at least one INSERT")
        self.expect_end()
        return ast.MultiInsert(source, tuple(branches))

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self._parse_qualified_name()
        self.expect_keyword("SET")
        assignments = []
        while True:
            col = self.expect_ident()
            self.expect_op("=")
            assignments.append((col, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        self.expect_end()
        return ast.Update(table, tuple(assignments), where)

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self._parse_qualified_name()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        self.expect_end()
        return ast.Delete(table, where)

    def _parse_merge(self) -> ast.Merge:
        self.expect_keyword("MERGE")
        self.expect_keyword("INTO")
        target = self._parse_qualified_name()
        target_alias = None
        if self.peek().type is TokenType.IDENT:
            target_alias = self.advance().value
        self.expect_keyword("USING")
        source = self._parse_table_primary()
        self.expect_keyword("ON")
        condition = self.parse_expr()
        clauses: list[ast.MergeWhenClause] = []
        while self.accept_keyword("WHEN"):
            matched = True
            if self.accept_keyword("NOT"):
                matched = False
            self.expect_keyword("MATCHED")
            clause_cond = None
            if self.accept_keyword("AND"):
                clause_cond = self.parse_expr()
            self.expect_keyword("THEN")
            if self.accept_keyword("UPDATE"):
                self.expect_keyword("SET")
                assignments = []
                while True:
                    col = self._parse_qualified_name()
                    self.expect_op("=")
                    assignments.append((col.split(".")[-1],
                                        self.parse_expr()))
                    if not self.accept_op(","):
                        break
                clauses.append(ast.MergeWhenClause(
                    matched, "update", clause_cond, tuple(assignments)))
            elif self.accept_keyword("DELETE"):
                clauses.append(ast.MergeWhenClause(
                    matched, "delete", clause_cond))
            elif self.accept_keyword("INSERT"):
                self.expect_keyword("VALUES")
                self.expect_op("(")
                values = [self.parse_expr()]
                while self.accept_op(","):
                    values.append(self.parse_expr())
                self.expect_op(")")
                clauses.append(ast.MergeWhenClause(
                    matched, "insert", clause_cond,
                    insert_values=tuple(values)))
            else:
                raise self._error("expected UPDATE, DELETE or INSERT")
        self.expect_end()
        return ast.Merge(target, target_alias, source, condition,
                         tuple(clauses))

    def _parse_analyze(self) -> ast.AnalyzeTable:
        self.expect_keyword("ANALYZE")
        self.expect_keyword("TABLE")
        table = self._parse_qualified_name()
        self.expect_keyword("COMPUTE")
        self.expect_keyword("STATISTICS")
        for_columns = False
        if self.accept_keyword("FOR"):
            self.expect_keyword("COLUMNS")
            for_columns = True
        self.expect_end()
        return ast.AnalyzeTable(table, for_columns)

    def _parse_set(self) -> ast.SetConfig:
        self.expect_keyword("SET")
        parts = [self._set_key_part()]
        while self.accept_op("."):
            parts.append(self._set_key_part())
        self.expect_op("=")
        token = self.advance()
        if token.type is TokenType.EOF:
            raise self._error("expected value")
        self.expect_end()
        return ast.SetConfig(".".join(parts), token.value)

    def _set_key_part(self) -> str:
        """A segment of a dotted config key; unlike ordinary identifiers
        any keyword is legal here (hive.cbo.ENABLE, hive.check.PLAN)."""
        token = self.peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            return self.advance().value.lower()
        raise self._error("expected configuration key")

    # ------------------------------------------------------------------ #
    # queries
    def parse_query(self) -> ast.Query:
        ctes: list[ast.CommonTableExpr] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("AS")
                self.expect_op("(")
                inner = self.parse_query()
                self.expect_op(")")
                ctes.append(ast.CommonTableExpr(name, inner))
                if not self.accept_op(","):
                    break
        body = self._parse_set_expr()
        order_by: list[ast.OrderItem] = []
        limit = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._parse_order_items()
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect_number())
        return ast.Query(body, tuple(ctes), tuple(order_by), limit)

    def _parse_order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self.accept_keyword("ASC"):
                ascending = True
            elif self.accept_keyword("DESC"):
                ascending = False
            if self.accept_keyword("NULLS"):
                self.expect_keyword("FIRST", "LAST")
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept_op(","):
                break
        return items

    def _parse_set_expr(self):
        left = self._parse_set_term()
        while self.peek().is_keyword("UNION"):
            self.advance()
            all_flag = bool(self.accept_keyword("ALL"))
            if not self.accept_keyword("DISTINCT"):
                pass
            right = self._parse_set_term()
            left = ast.SetOperation("union", all_flag, left, right)
        return left

    def _parse_set_term(self):
        left = self._parse_set_primary()
        while self.peek().is_keyword("INTERSECT", "EXCEPT"):
            if not self.conf.support_setops:
                raise self._unsupported("INTERSECT/EXCEPT")
            op = self.advance().value.lower()
            all_flag = bool(self.accept_keyword("ALL"))
            right = self._parse_set_primary()
            left = ast.SetOperation(op, all_flag, left, right)
        return left

    def _parse_set_primary(self):
        if self.accept_op("("):
            inner = self._parse_set_expr()
            self.expect_op(")")
            return inner
        return self._parse_query_spec()

    def _parse_query_spec(self) -> ast.QuerySpec:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        select_items = [self._parse_select_item()]
        while self.accept_op(","):
            select_items.append(self._parse_select_item())
        from_refs: list[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            from_refs.append(self._parse_table_ref())
            while self.accept_op(","):
                from_refs.append(self._parse_table_ref())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list[ast.Expr] = []
        grouping_sets = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            if self.peek().is_keyword("GROUPING"):
                if not self.conf.support_grouping_sets:
                    raise self._unsupported("GROUPING SETS")
                self.advance()
                self.expect_keyword("SETS")
                self.expect_op("(")
                sets = []
                while True:
                    self.expect_op("(")
                    exprs = []
                    if not self.peek().is_op(")"):
                        exprs.append(self.parse_expr())
                        while self.accept_op(","):
                            exprs.append(self.parse_expr())
                    self.expect_op(")")
                    sets.append(tuple(exprs))
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
                grouping_sets = tuple(sets)
                # the union of all grouping-set columns is the group-by list
                seen = []
                for gs in sets:
                    for e in gs:
                        if e not in seen:
                            seen.append(e)
                group_by = seen
            elif self.peek().is_keyword("ROLLUP"):
                if not self.conf.support_grouping_sets:
                    raise self._unsupported("ROLLUP")
                self.advance()
                self.expect_op("(")
                exprs = [self.parse_expr()]
                while self.accept_op(","):
                    exprs.append(self.parse_expr())
                self.expect_op(")")
                group_by = exprs
                grouping_sets = tuple(
                    tuple(exprs[:i]) for i in range(len(exprs), -1, -1))
            else:
                group_by.append(self.parse_expr())
                while self.accept_op(","):
                    group_by.append(self.parse_expr())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.QuerySpec(tuple(select_items), tuple(from_refs), where,
                             tuple(group_by), grouping_sets, having,
                             distinct)

    def _parse_select_item(self) -> ast.SelectItem:
        if self.peek().is_op("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # qualified star: ident.*
        if (self.peek().type is TokenType.IDENT and self.peek(1).is_op(".")
                and self.peek(2).is_op("*")):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    # -- FROM clause ---------------------------------------------------- #
    def _parse_table_ref(self) -> ast.TableRef:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                kind = "cross"
            elif self.peek().is_keyword("JOIN"):
                self.advance()
                kind = "inner"
            elif self.peek().is_keyword("INNER") and self.peek(1).is_keyword("JOIN"):
                self.advance()
                self.advance()
                kind = "inner"
            elif self.peek().is_keyword("LEFT", "RIGHT", "FULL") and (
                    self.peek(1).is_keyword("JOIN")
                    or (self.peek(1).is_keyword("OUTER")
                        and self.peek(2).is_keyword("JOIN"))):
                kind = self.advance().value.lower()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            else:
                break
            right = self._parse_table_primary()
            condition = None
            if kind != "cross":
                self.expect_keyword("ON")
                condition = self.parse_expr()
            left = ast.JoinRef(left, right, kind, condition)
        return left

    def _parse_table_primary(self) -> ast.TableRef:
        if self.accept_op("("):
            query = self.parse_query()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.SubqueryRef(query, alias)
        name = self._parse_qualified_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return ast.NamedTable(name, alias)

    def _parse_qualified_name(self) -> str:
        parts = [self.expect_ident()]
        while self.peek().is_op(".") and self.peek(1).type in (
                TokenType.IDENT, TokenType.KEYWORD):
            self.advance()
            parts.append(self.expect_ident())
        return ".".join(parts)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            token = self.peek()
            if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
                op = self.advance().value
                if op in ("!=", "=="):
                    op = "<>" if op == "!=" else "="
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right)
                continue
            negated = False
            save = self.pos
            if self.accept_keyword("NOT"):
                negated = True
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self.expect_string()
                left = ast.Like(left, pattern, negated)
                continue
            if self.accept_keyword("IN"):
                self.expect_op("(")
                if self.peek().is_keyword("SELECT", "WITH"):
                    if not self.conf.support_correlated_subqueries:
                        raise self._unsupported("IN subquery")
                    query = self.parse_query()
                    self.expect_op(")")
                    left = ast.InSubquery(left, query, negated)
                else:
                    values = [self.parse_expr()]
                    while self.accept_op(","):
                        values.append(self.parse_expr())
                    self.expect_op(")")
                    left = ast.InList(left, tuple(values), negated)
                continue
            if negated:
                self.pos = save  # NOT belonged to something else
            if self.accept_keyword("IS"):
                is_negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNull(left, is_negated)
                continue
            return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept_op("+"):
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self.accept_op("-"):
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            elif self.accept_op("||"):
                left = ast.BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self.accept_op("*"):
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self.accept_op("/"):
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self.accept_op("%"):
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.accept_op("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.Literal(_numeric(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("DATE") and self.peek(1).type is TokenType.STRING:
            self.advance()
            return ast.Literal(
                datetime.date.fromisoformat(self.expect_string()))
        if token.is_keyword("TIMESTAMP") and \
                self.peek(1).type is TokenType.STRING:
            self.advance()
            return ast.Literal(
                datetime.datetime.fromisoformat(self.expect_string()))
        if token.is_keyword("INTERVAL"):
            if not self.conf.support_interval_notation:
                raise self._unsupported("INTERVAL notation")
            self.advance()
            raw = self.expect_string()
            unit = self.expect_keyword(*_INTERVAL_UNITS).value
            return ast.IntervalLiteral(int(raw), unit)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_keyword("AS")
            type_name = self.advance().value.upper()
            params: list[int] = []
            if self.accept_op("("):
                while True:
                    params.append(int(self.expect_number()))
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
            self.expect_op(")")
            return ast.Cast(operand, type_name, tuple(params))
        if token.is_keyword("EXTRACT"):
            self.advance()
            self.expect_op("(")
            unit = self.advance().value.upper()
            self.expect_keyword("FROM")
            operand = self.parse_expr()
            self.expect_op(")")
            return ast.ExtractExpr(unit, operand)
        if token.is_keyword("EXISTS"):
            if not self.conf.support_correlated_subqueries:
                raise self._unsupported("EXISTS subquery")
            self.advance()
            self.expect_op("(")
            query = self.parse_query()
            self.expect_op(")")
            return ast.Exists(query)
        if token.is_op("("):
            self.advance()
            if self.peek().is_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self.expect_op(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.type is TokenType.IDENT or token.is_keyword(
                "YEAR", "MONTH", "DAY", "FIRST", "LAST", "ROW"):
            return self._parse_ident_expr()
        raise self._error("expected expression")

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().is_keyword("WHEN"):
            operand = self.parse_expr()
        whens = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            if operand is not None:
                cond = ast.BinaryOp("=", operand, cond)
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expr()))
        else_expr = None
        if self.accept_keyword("ELSE"):
            else_expr = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(tuple(whens), else_expr)

    def _parse_ident_expr(self) -> ast.Expr:
        name = self.advance().value
        # function call
        if self.peek().is_op("("):
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: list[ast.Expr] = []
            if self.peek().is_op("*"):
                self.advance()
            elif not self.peek().is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            window = None
            if self.accept_keyword("OVER"):
                if not self.conf.support_window_functions:
                    raise self._unsupported("window functions")
                window = self._parse_window_spec()
            return ast.FuncCall(name.lower(), tuple(args), distinct, window)
        # qualified column a.b (or db.t.c → qualifier "db.t")
        parts = [name]
        while self.peek().is_op(".") and self.peek(1).type in (
                TokenType.IDENT, TokenType.KEYWORD):
            self.advance()
            parts.append(self.expect_ident())
        if len(parts) == 1:
            return ast.ColumnRef(parts[0])
        return ast.ColumnRef(parts[-1], ".".join(parts[:-1]))

    def _parse_window_spec(self) -> ast.WindowSpec:
        self.expect_op("(")
        partition_by: list[ast.Expr] = []
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            partition_by.append(self.parse_expr())
            while self.accept_op(","):
                partition_by.append(self.parse_expr())
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._parse_order_items()
        # frame clauses are accepted and ignored (whole-partition frames)
        if self.accept_keyword("ROWS", "RANGE"):
            while not self.peek().is_op(")"):
                self.advance()
        self.expect_op(")")
        return ast.WindowSpec(tuple(partition_by), tuple(order_by))


def _numeric(text: str):
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
