"""SQL frontend: lexer, parser, AST, semantic analyzer, functions."""

from .lexer import Token, TokenType, tokenize
from .parser import parse_statement, parse_query

__all__ = ["Token", "TokenType", "tokenize", "parse_statement",
           "parse_query"]
