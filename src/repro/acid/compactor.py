"""Compaction: initiator, worker, and cleaner (Section 3.2).

* the **initiator** inspects each table/partition directory and enqueues
  minor/major compaction when thresholds are surpassed (delta-directory
  count; ratio of delta rows to base rows),
* the **worker** merges files: *minor* folds delta directories into a
  single range delta (and delete deltas into a single range delete
  delta); *major* folds everything into a fresh ``base_W``, applying
  tombstones and deleting history,
* the **cleaner** removes obsolete directories only once no open
  transaction could still be reading them — the separation the paper
  calls out so that ongoing queries complete before files disappear.

Compaction takes no locks on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HiveConf
from ..formats.orc import OrcReader
from ..fs import SimFileSystem
from ..metastore.compaction import (CompactionQueue, CompactionRequest,
                                    CompactionType, should_compact)
from ..metastore.hms import HiveMetastore
from ..metastore.catalog import TableDescriptor
from ..metastore.txn import TransactionManager
from .layout import parse_acid_dirs, select_acid_state
from .reader import AcidReader
from .writer import AcidWriter, BUCKET_FILE, DELETE_SCHEMA


@dataclass
class CompactionReport:
    """What one worker pass produced (for tests and observability)."""

    request: CompactionRequest
    merged_rows: int
    output_dir: str
    obsolete_dirs: list[str]


def _table_locations(table: TableDescriptor) -> list[tuple[tuple | None, str]]:
    if table.is_partitioned:
        return [(p.values, p.location) for p in table.list_partitions()]
    return [(None, table.location)]


class CompactionInitiator:
    """Scans ACID tables and enqueues compaction requests."""

    def __init__(self, hms: HiveMetastore, conf: HiveConf):
        self.hms = hms
        self.conf = conf

    def check_table(self, table: TableDescriptor) -> list[CompactionRequest]:
        if not table.is_acid:
            return []
        requests = []
        for partition, location in _table_locations(table):
            decision = self._decide(location)
            if decision is not None:
                requests.append(self.hms.compaction_queue.enqueue(
                    table.qualified_name, partition, decision))
        return requests

    def _decide(self, location: str) -> CompactionType | None:
        fs = self.hms.fs
        if not fs.exists(location):
            return None
        names = [d.rsplit("/", 1)[-1] for d in fs.list_dirs(location)]
        bases, deltas = parse_acid_dirs(names)
        insert_deltas = [d for d in deltas if not d.is_delete]
        delete_deltas = [d for d in deltas if d.is_delete]
        base_rows = 0
        if bases:
            base_path = f"{location}/{bases[-1].name}/{BUCKET_FILE}"
            if fs.exists(base_path):
                base_rows = OrcReader(fs.read(base_path)).num_rows
        delta_rows = 0
        for delta in insert_deltas:
            path = f"{location}/{delta.name}/{BUCKET_FILE}"
            if fs.exists(path):
                delta_rows += OrcReader(fs.read(path)).num_rows
        return should_compact(
            len(insert_deltas), len(delete_deltas), delta_rows, base_rows,
            self.conf.compaction_delta_threshold,
            self.conf.compaction_delta_pct_threshold)


class CompactionWorker:
    """Executes queued compactions."""

    def __init__(self, hms: HiveMetastore, row_group_size: int = 4096,
                 registry=None):
        self.hms = hms
        self.reader = AcidReader(hms.fs)
        self.writer = AcidWriter(hms.fs, row_group_size)
        self.registry = registry

    def run_one(self) -> CompactionReport | None:
        """Pop and execute the next queued request, if any."""
        request = self.hms.compaction_queue.next_pending()
        if request is None:
            return None
        table = self.hms.get_table(request.table)
        if request.partition is not None:
            location = table.get_partition(request.partition).location
        else:
            location = table.location
        if request.compaction_type is CompactionType.MAJOR:
            report = self._major(request, table, location)
        else:
            report = self._minor(request, table, location)
        request.merged_rows = report.merged_rows
        request.output_dir = report.output_dir
        barrier = self.hms.txn_manager.get_snapshot().high_watermark
        self.hms.compaction_queue.mark_ready_for_cleaning(
            request.request_id,
            [f"{location}/{d}" for d in report.obsolete_dirs], barrier)
        if self.registry is not None:
            kind = request.compaction_type.value
            self.registry.counter("compaction.runs", type=kind).inc()
            self.registry.counter("compaction.merged_rows",
                                  type=kind).inc(report.merged_rows)
        return report

    def _current_state(self, location: str):
        txn = self.hms.txn_manager
        snapshot = txn.get_snapshot()
        names = [d.rsplit("/", 1)[-1]
                 for d in self.hms.fs.list_dirs(location)]
        return names, snapshot

    def _major(self, request, table: TableDescriptor,
               location: str) -> CompactionReport:
        """Fold base + deltas - deletes into a new base (deletes history)."""
        txn = self.hms.txn_manager
        snapshot = txn.get_snapshot()
        valid = txn.valid_write_ids(snapshot, table.qualified_name)
        if valid.high_watermark == 0:
            return CompactionReport(request, 0, "", [])
        batch, _ = self.reader.read(location, valid, columns=None,
                                    include_row_ids=True)
        names = [d.rsplit("/", 1)[-1]
                 for d in self.hms.fs.list_dirs(location)]
        state = select_acid_state(names, valid)
        obsolete = state.all_read_dirs() + state.obsolete
        out_dir = self.writer.write_base(
            location, valid.high_watermark, batch.schema, batch.to_rows(),
            bloom_columns=table.bloom_filter_columns)
        return CompactionReport(request, batch.num_rows,
                                out_dir.rsplit("/", 1)[0], obsolete)

    def _minor(self, request, table: TableDescriptor,
               location: str) -> CompactionReport:
        """Merge delta dirs into one range delta (base untouched)."""
        txn = self.hms.txn_manager
        snapshot = txn.get_snapshot()
        valid = txn.valid_write_ids(snapshot, table.qualified_name)
        names = [d.rsplit("/", 1)[-1]
                 for d in self.hms.fs.list_dirs(location)]
        state = select_acid_state(names, valid)
        obsolete: list[str] = list(state.obsolete)
        merged_rows = 0
        output_dir = ""

        if len(state.insert_deltas) > 1:
            batches = []
            schema = None
            for delta in state.insert_deltas:
                reader = OrcReader(self.hms.fs.read(
                    f"{location}/{delta.name}/{BUCKET_FILE}"))
                batch = reader.read_all()
                # drop rows from aborted transactions while merging
                rows = [r for r in batch.to_rows()
                        if valid.is_valid(r[0])]
                schema = reader.schema
                batches.append(rows)
                obsolete.append(delta.name)
            all_rows = [r for rows in batches for r in rows]
            all_rows.sort(key=lambda r: (r[0], r[1], r[2]))
            lo = min(d.min_write_id for d in state.insert_deltas)
            hi = max(d.max_write_id for d in state.insert_deltas)
            path = self.writer.write_merged_delta(
                location, lo, hi, schema, all_rows, is_delete=False,
                bloom_columns=table.bloom_filter_columns)
            output_dir = path.rsplit("/", 1)[0]
            merged_rows += len(all_rows)

        if len(state.delete_deltas) > 1:
            all_rows = []
            for delta in state.delete_deltas:
                reader = OrcReader(self.hms.fs.read(
                    f"{location}/{delta.name}/{BUCKET_FILE}"))
                all_rows.extend(r for r in reader.read_all().to_rows()
                                if valid.is_valid(r[0]))
                obsolete.append(delta.name)
            all_rows.sort(key=lambda r: (r[1], r[2], r[3]))
            lo = min(d.min_write_id for d in state.delete_deltas)
            hi = max(d.max_write_id for d in state.delete_deltas)
            path = self.writer.write_merged_delta(
                location, lo, hi, DELETE_SCHEMA, all_rows, is_delete=True)
            output_dir = output_dir or path.rsplit("/", 1)[0]
            merged_rows += len(all_rows)

        return CompactionReport(request, merged_rows, output_dir, obsolete)


class CompactionCleaner:
    """Deletes obsolete directories once no open reader can need them."""

    def __init__(self, hms: HiveMetastore):
        self.hms = hms

    def run(self) -> int:
        """Clean every request that is past its barrier; returns number of

        directories removed."""
        txn: TransactionManager = self.hms.txn_manager
        fs: SimFileSystem = self.hms.fs
        removed = 0
        for request in self.hms.compaction_queue.ready_for_cleaning():
            min_open = txn.min_open_txn()
            if (request.cleaner_barrier_txn is not None
                    and min_open is not None
                    and min_open <= request.cleaner_barrier_txn):
                continue  # a reader opened before compaction may still run
            for path in request.obsolete_paths:
                if fs.exists(path):
                    fs.delete(path, recursive=True)
                    removed += 1
            self.hms.compaction_queue.mark_done(request.request_id)
        return removed
