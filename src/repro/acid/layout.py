"""ACID directory layout (Section 3.2, Figure 3).

Within each table or partition directory Hive keeps separate *stores*:

* ``base_<W>`` — all valid records up to WriteId ``W`` (created by major
  compaction or an initial bulk load),
* ``delta_<Wmin>_<Wmax>`` — inserted records in a WriteId range (a single
  transaction writes ``delta_W_W``; minor compaction merges ranges),
* ``delete_delta_<Wmin>_<Wmax>`` — tombstones pointing at the unique
  (WriteId, FileId/bucket, RowId) of deleted records.

Given the directory listing and a reader's
:class:`~repro.metastore.txn.ValidWriteIdList`, :func:`select_acid_state`
decides which directories a snapshot must read and which are obsolete —
the same directory-level filtering the paper describes for scans.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import HiveError
from ..metastore.txn import ValidWriteIdList

# the optional trailing component is the statement id: a transaction
# writing the same table from several statements (multi-statement
# transactions) gets delta_W_W_0, delta_W_W_1, ... like Hive's stmtId
_BASE_RE = re.compile(r"^base_(\d+)$")
_DELTA_RE = re.compile(r"^delta_(\d+)_(\d+)(?:_(\d+))?$")
_DELETE_DELTA_RE = re.compile(r"^delete_delta_(\d+)_(\d+)(?:_(\d+))?$")


@dataclass(frozen=True)
class BaseDir:
    write_id: int
    name: str


@dataclass(frozen=True)
class DeltaDir:
    min_write_id: int
    max_write_id: int
    name: str
    is_delete: bool = False

    @property
    def is_compacted(self) -> bool:
        return self.max_write_id > self.min_write_id


@dataclass
class AcidDirectoryState:
    """Directories a snapshot reader must visit, plus obsolete ones."""

    base: BaseDir | None = None
    insert_deltas: list[DeltaDir] = field(default_factory=list)
    delete_deltas: list[DeltaDir] = field(default_factory=list)
    obsolete: list[str] = field(default_factory=list)

    def all_read_dirs(self) -> list[str]:
        dirs = []
        if self.base is not None:
            dirs.append(self.base.name)
        dirs.extend(d.name for d in self.insert_deltas)
        dirs.extend(d.name for d in self.delete_deltas)
        return dirs


def parse_acid_dirs(names: list[str]) -> tuple[list[BaseDir], list[DeltaDir]]:
    """Classify child directory names into bases and deltas.

    Unknown names are ignored (e.g. temp dirs); malformed ACID-looking
    names raise.
    """
    bases: list[BaseDir] = []
    deltas: list[DeltaDir] = []
    for name in names:
        m = _BASE_RE.match(name)
        if m:
            bases.append(BaseDir(int(m.group(1)), name))
            continue
        m = _DELTA_RE.match(name)
        if m:
            lo, hi = int(m.group(1)), int(m.group(2))
            if lo > hi:
                raise HiveError(f"malformed delta dir {name}")
            deltas.append(DeltaDir(lo, hi, name, is_delete=False))
            continue
        m = _DELETE_DELTA_RE.match(name)
        if m:
            lo, hi = int(m.group(1)), int(m.group(2))
            if lo > hi:
                raise HiveError(f"malformed delete delta dir {name}")
            deltas.append(DeltaDir(lo, hi, name, is_delete=True))
    bases.sort(key=lambda b: b.write_id)
    deltas.sort(key=lambda d: (d.min_write_id, d.max_write_id, d.is_delete))
    return bases, deltas


def select_acid_state(names: list[str],
                      valid: ValidWriteIdList) -> AcidDirectoryState:
    """Choose the directories a snapshot must read.

    * the newest base whose WriteId is at or below the high watermark is
    the starting point; older bases are obsolete,
    * delta directories entirely at or below the chosen base are obsolete
    (their content is already folded in),
    * remaining deltas are read if their range can contain valid data:
      a single-WriteId delta is skipped when that WriteId is invalid
      (open/aborted), and any delta above the high watermark is skipped.
      Compacted (multi-id) deltas only ever contain committed data, so
      they are read whenever they are at or below the high watermark —
      per-row WriteId filtering inside the reader handles the rest.
    """
    bases, deltas = parse_acid_dirs(names)
    state = AcidDirectoryState()

    chosen_base: BaseDir | None = None
    for base in bases:
        if base.write_id <= valid.high_watermark:
            if chosen_base is not None:
                state.obsolete.append(chosen_base.name)
            chosen_base = base
        # a base above the high watermark is from the future: ignore,
        # but it is not obsolete (a newer snapshot will want it)
    state.base = chosen_base
    base_wid = chosen_base.write_id if chosen_base else 0

    for delta in deltas:
        if delta.max_write_id <= base_wid:
            state.obsolete.append(delta.name)
            continue
        if delta.min_write_id > valid.high_watermark:
            continue  # future data, not visible and not obsolete
        if not delta.is_compacted and not valid.is_valid(delta.min_write_id):
            continue  # single-txn delta from an open/aborted transaction
        if delta.is_delete:
            state.delete_deltas.append(delta)
        else:
            state.insert_deltas.append(delta)
    return state
