"""Snapshot-isolation reader (merge-on-read).

A scan bound to a :class:`~repro.metastore.txn.ValidWriteIdList` reads the
base plus every relevant insert delta, discards rows whose WriteId is not
valid in the snapshot, and **anti-joins** the survivors against the delete
deltas that apply to their WriteId range (Section 3.2).  Delete deltas
are usually small, so the tombstone set is materialized in memory —
exactly the optimization the paper describes.

The reader also reports :class:`ReadMetrics` (bytes touched, row groups
skipped, merge effort) that feed the runtime's cost model and the ACID
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..common.rows import Schema
from ..common.vector import VectorBatch
from ..formats.orc import OrcReader, SargPredicate
from ..fs import SimFileSystem
from ..metastore.txn import ValidWriteIdList
from .layout import select_acid_state
from .writer import ACID_META_COLUMNS, BUCKET_FILE, RowId, acid_schema

META_NAMES = [c.name for c in ACID_META_COLUMNS]


@dataclass
class ReadMetrics:
    bytes_read: int = 0
    metadata_bytes: int = 0
    files_opened: int = 0
    row_groups_total: int = 0
    row_groups_read: int = 0
    delete_keys: int = 0
    rows_merged: int = 0
    rows_deleted: int = 0
    #: injected read errors retried during this read (repro.faults)
    io_retries: int = 0
    #: bytes re-transferred by those retries
    retry_bytes: int = 0
    directories: list[str] = field(default_factory=list)

    def merge(self, other: "ReadMetrics") -> None:
        self.bytes_read += other.bytes_read
        self.metadata_bytes += other.metadata_bytes
        self.files_opened += other.files_opened
        self.row_groups_total += other.row_groups_total
        self.row_groups_read += other.row_groups_read
        self.delete_keys += other.delete_keys
        self.rows_merged += other.rows_merged
        self.rows_deleted += other.rows_deleted
        self.io_retries += other.io_retries
        self.retry_bytes += other.retry_bytes
        self.directories.extend(other.directories)


class AcidReader:
    """Reads ACID (and plain) table/partition directories.

    ``reader_factory`` abstracts how file bytes become an ORC reader: the
    default reads straight from the file system; the LLAP I/O elevator
    supplies a caching factory so the chunk cache sits *under* the
    merge-on-read (the cache is an MVCC view, Section 5.1).
    """

    def __init__(self, fs: SimFileSystem, reader_factory=None):
        self.fs = fs
        self.reader_factory = reader_factory

    def _open(self, path: str):
        if self.reader_factory is not None:
            return self.reader_factory.open(path)
        return OrcReader(self.fs.read(path))

    # -- ACID path ------------------------------------------------------------ #
    def read(self, location: str, valid: ValidWriteIdList,
             columns: Sequence[str] | None = None,
             sargs: Sequence[SargPredicate] = (),
             include_row_ids: bool = False,
             ) -> tuple[VectorBatch, ReadMetrics]:
        """Merge-on-read of one ACID directory under a snapshot."""
        metrics = ReadMetrics()
        faults_before = (self.fs.stats.io_retries,
                         self.fs.stats.retry_bytes)
        dir_names = [d.rsplit("/", 1)[-1]
                     for d in self.fs.list_dirs(location)]
        state = select_acid_state(dir_names, valid)
        metrics.directories = state.all_read_dirs()

        deleted = self._load_delete_set(location, state.delete_deltas,
                                        valid, metrics)

        batches: list[VectorBatch] = []
        out_schema: Schema | None = None
        read_dirs: list[tuple[str, bool]] = []
        if state.base is not None:
            # a base only contains committed data, so per-row checks are
            # only needed for snapshots that restrict rows further (e.g.
            # the delta snapshots used by incremental MV rebuild)
            base_check = not valid.range_fully_valid(
                1, state.base.write_id)
            read_dirs.append((state.base.name, base_check))
        for delta in state.insert_deltas:
            # compacted deltas may mix WriteIds; per-row filtering is only
            # needed when some id in the range is invalid for this snapshot
            needs_check = not valid.range_fully_valid(
                delta.min_write_id, delta.max_write_id)
            read_dirs.append((delta.name, needs_check))
        for name, needs_check in read_dirs:
            batch = self._read_data_dir(
                f"{location}/{name}", valid, columns, sargs,
                include_row_ids, deleted, metrics,
                check_row_validity=needs_check)
            if batch is not None:
                out_schema = batch.schema
                batches.append(batch)

        if out_schema is None:
            out_schema = self._projected_schema(location, columns,
                                                include_row_ids)
        result = VectorBatch.concat(out_schema, batches)
        metrics.rows_merged = result.num_rows
        self._capture_fault_stats(metrics, faults_before)
        return result, metrics

    # -- non-ACID path --------------------------------------------------------- #
    def read_plain(self, location: str, schema: Schema,
                   columns: Sequence[str] | None = None,
                   sargs: Sequence[SargPredicate] = (),
                   file_format: str = "orc",
                   ) -> tuple[VectorBatch, ReadMetrics]:
        metrics = ReadMetrics()
        faults_before = (self.fs.stats.io_retries,
                         self.fs.stats.retry_bytes)
        names = list(columns) if columns is not None else schema.names()
        out_schema = schema.select(names)
        if file_format == "text":
            batch, metrics = self._read_plain_text(location, schema,
                                                   names, out_schema,
                                                   metrics)
            self._capture_fault_stats(metrics, faults_before)
            return batch, metrics
        batches = []
        for status in self.fs.list_files(location):
            reader = self._open(status.path)
            metrics.files_opened += 1
            metrics.metadata_bytes += reader.metadata_bytes
            groups = reader.select_row_groups(sargs)
            metrics.row_groups_total += len(reader.row_groups)
            metrics.row_groups_read += len(groups)
            for g in groups:
                batch = reader.read_row_group(g, names)
                metrics.bytes_read += sum(
                    reader.column_chunk_bytes(g, n) for n in names)
                batches.append(batch)
        self._capture_fault_stats(metrics, faults_before)
        return VectorBatch.concat(out_schema, batches), metrics

    def _capture_fault_stats(self, metrics: ReadMetrics,
                             before: tuple[int, int]) -> None:
        """Attribute injected-retry costs accrued during this read."""
        metrics.io_retries = self.fs.stats.io_retries - before[0]
        metrics.retry_bytes = self.fs.stats.retry_bytes - before[1]

    def _read_plain_text(self, location, schema, names, out_schema,
                         metrics):
        """Text files have no indexes: every byte is read, no pruning —
        the contrast that motivated the columnar format ([39])."""
        from ..formats.text import TextReader
        batches = []
        for status in self.fs.list_files(location):
            data = self.fs.read(status.path)
            metrics.files_opened += 1
            metrics.bytes_read += len(data)
            batch = TextReader(schema, data).read_batch()
            indices = [schema.index_of(n) for n in names]
            batches.append(batch.project(indices, out_schema))
        return VectorBatch.concat(out_schema, batches), metrics

    # -- internals ------------------------------------------------------------ #
    def _load_delete_set(self, location: str, delete_deltas, valid,
                         metrics: ReadMetrics) -> set[tuple[int, int, int]]:
        deleted: set[tuple[int, int, int]] = set()
        for delta in delete_deltas:
            path = f"{location}/{delta.name}/{BUCKET_FILE}"
            reader = self._open(path)
            metrics.files_opened += 1
            metrics.metadata_bytes += reader.metadata_bytes
            batch = reader.read_all()
            metrics.bytes_read += self.fs.status(path).length
            wids = batch.column("__writeid__").data
            orig_wids = batch.column("__orig_writeid__").data
            buckets = batch.column("__bucket__").data
            row_ids = batch.column("__rowid__").data
            for i in range(batch.num_rows):
                if valid.is_valid(int(wids[i])):
                    deleted.add((int(orig_wids[i]), int(buckets[i]),
                                 int(row_ids[i])))
        metrics.delete_keys = len(deleted)
        return deleted

    def _read_data_dir(self, directory: str, valid, columns, sargs,
                       include_row_ids: bool,
                       deleted: set[tuple[int, int, int]],
                       metrics: ReadMetrics,
                       check_row_validity: bool) -> VectorBatch | None:
        path = f"{directory}/{BUCKET_FILE}"
        reader = self._open(path)
        metrics.files_opened += 1
        metrics.metadata_bytes += reader.metadata_bytes
        data_names = (list(columns) if columns is not None
                      else [c.name for c in reader.schema
                            if c.name not in META_NAMES])
        read_names = META_NAMES + [n for n in data_names
                                   if n not in META_NAMES]
        groups = reader.select_row_groups(sargs)
        metrics.row_groups_total += len(reader.row_groups)
        metrics.row_groups_read += len(groups)
        batches = []
        for g in groups:
            batch = reader.read_row_group(g, read_names)
            metrics.bytes_read += sum(
                reader.column_chunk_bytes(g, n) for n in read_names)
            batches.append(batch)
        if not batches:
            return None
        merged = VectorBatch.concat(batches[0].schema, batches)

        wids = merged.column("__writeid__").data
        keep = np.ones(merged.num_rows, dtype=bool)
        if check_row_validity:
            for i in range(merged.num_rows):
                if not valid.is_valid(int(wids[i])):
                    keep[i] = False
        if deleted:
            buckets = merged.column("__bucket__").data
            row_ids = merged.column("__rowid__").data
            for i in range(merged.num_rows):
                if keep[i] and (int(wids[i]), int(buckets[i]),
                                int(row_ids[i])) in deleted:
                    keep[i] = False
                    metrics.rows_deleted += 1
        if not keep.all():
            merged = merged.filter(keep)

        out_names = (META_NAMES + data_names) if include_row_ids else data_names
        indices = [merged.schema.index_of(n) for n in out_names]
        return merged.project(indices, merged.schema.select(out_names))

    def _projected_schema(self, location: str, columns,
                          include_row_ids: bool) -> Schema:
        """Schema of an empty result (no readable directories)."""
        # fall back to any file present to learn the table schema
        statuses = self.fs.list_files(location, recursive=True)
        for status in statuses:
            if status.path.endswith(BUCKET_FILE):
                reader = self._open(status.path)
                data_names = (list(columns) if columns is not None
                              else [c.name for c in reader.schema
                                    if c.name not in META_NAMES])
                names = (META_NAMES + data_names if include_row_ids
                         else data_names)
                return reader.schema.select(names)
        # empty table with no files at all: no schema info here
        return Schema([])


def row_ids_from_batch(batch: VectorBatch) -> list[RowId]:
    """Extract :class:`RowId` objects from a batch that includes meta cols."""
    wids = batch.column("__writeid__").data
    buckets = batch.column("__bucket__").data
    rids = batch.column("__rowid__").data
    return [RowId(int(wids[i]), int(buckets[i]), int(rids[i]))
            for i in range(batch.num_rows)]
