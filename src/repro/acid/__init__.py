"""ACID storage layer: base/delta layout, MVCC readers, compaction."""

from .layout import AcidDirectoryState, DeltaDir, parse_acid_dirs, select_acid_state
from .reader import AcidReader, RowId
from .writer import AcidWriter
from .compactor import CompactionInitiator, CompactionWorker, CompactionCleaner

__all__ = [
    "AcidDirectoryState", "DeltaDir", "parse_acid_dirs", "select_acid_state",
    "AcidReader", "RowId", "AcidWriter",
    "CompactionInitiator", "CompactionWorker", "CompactionCleaner",
]
