"""ACID writers.

Every record written by a transaction carries the triple that identifies
it uniquely (Section 3.2): the **WriteId** of the writing transaction, the
**FileId** (bucket number) and a **RowId** within the file.  Insert
transactions create ``delta_W_W`` directories; deletes create
``delete_delta_W_W`` directories whose rows *point at* the unique id of
the deleted record; updates are split into a delete plus an insert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..common.rows import Column, Schema
from ..common.types import BIGINT, INT
from ..errors import HiveError
from ..formats.orc import OrcWriter
from ..fs import SimFileSystem

#: meta columns prepended to every row of an ACID data file.
ACID_META_COLUMNS = (
    Column("__writeid__", BIGINT, nullable=False),
    Column("__bucket__", INT, nullable=False),
    Column("__rowid__", BIGINT, nullable=False),
)

#: schema of delete-delta files: the deleting WriteId plus the pointed-at
#: original record id.
DELETE_SCHEMA = Schema([
    Column("__writeid__", BIGINT, nullable=False),
    Column("__orig_writeid__", BIGINT, nullable=False),
    Column("__bucket__", INT, nullable=False),
    Column("__rowid__", BIGINT, nullable=False),
])

BUCKET_FILE = "bucket_00000"


@dataclass(frozen=True)
class RowId:
    """Unique record identifier within a table (WriteId, FileId, RowId)."""

    write_id: int
    bucket: int
    row_id: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.write_id, self.bucket, self.row_id)


def acid_schema(data_schema: Schema) -> Schema:
    return Schema(list(ACID_META_COLUMNS) + list(data_schema.columns))


class AcidWriter:
    """Writes ACID delta/base directories and plain (non-ACID) files."""

    def __init__(self, fs: SimFileSystem, row_group_size: int = 4096):
        self.fs = fs
        self.row_group_size = row_group_size

    # -- transactional writes ------------------------------------------------ #
    def write_insert_delta(self, location: str, write_id: int,
                           schema: Schema, rows: Sequence[tuple],
                           bloom_columns: Sequence[str] = ()) -> str:
        """Create ``delta_W_W[_S]/bucket_00000`` with fresh RowIds.

        A multi-statement transaction writing the same table repeatedly
        gets one directory per statement (Hive's stmtId); the statement
        id is also stored in the bucket field so the
        (WriteId, FileId, RowId) triple stays unique.
        """
        if write_id < 1:
            raise HiveError("write_id must be >= 1")
        directory, statement_id = self._statement_dir(
            location, f"delta_{write_id}_{write_id}")
        meta_rows = [(write_id, statement_id, i, *row)
                     for i, row in enumerate(rows)]
        return self._write_bucket(directory, acid_schema(schema), meta_rows,
                                  bloom_columns)

    def write_delete_delta(self, location: str, write_id: int,
                           row_ids: Sequence[RowId]) -> str:
        """Create ``delete_delta_W_W[_S]`` with tombstones."""
        directory, _ = self._statement_dir(
            location, f"delete_delta_{write_id}_{write_id}")
        rows = [(write_id, r.write_id, r.bucket, r.row_id)
                # sorted so the reader's merge stays sequential
                for r in sorted(row_ids, key=RowId.as_tuple)]
        return self._write_bucket(directory, DELETE_SCHEMA, rows, ())

    def _statement_dir(self, location: str,
                       base_name: str) -> tuple[str, int]:
        """First unused statement suffix for this (location, range)."""
        directory = f"{location}/{base_name}"
        statement_id = 0
        while self.fs.exists(f"{directory}/{BUCKET_FILE}"):
            statement_id += 1
            directory = f"{location}/{base_name}_{statement_id}"
        return directory, statement_id

    # -- compaction products ------------------------------------------------- #
    def write_merged_delta(self, location: str, min_wid: int, max_wid: int,
                           schema_with_meta: Schema,
                           meta_rows: Sequence[tuple],
                           is_delete: bool = False,
                           bloom_columns: Sequence[str] = ()) -> str:
        prefix = "delete_delta" if is_delete else "delta"
        directory = f"{location}/{prefix}_{min_wid}_{max_wid}"
        return self._write_bucket(directory, schema_with_meta, meta_rows,
                                  bloom_columns)

    def write_base(self, location: str, write_id: int,
                   schema_with_meta: Schema, meta_rows: Sequence[tuple],
                   bloom_columns: Sequence[str] = ()) -> str:
        directory = f"{location}/base_{write_id}"
        return self._write_bucket(directory, schema_with_meta, meta_rows,
                                  bloom_columns)

    # -- non-transactional writes --------------------------------------------- #
    def write_plain(self, location: str, schema: Schema,
                    rows: Sequence[tuple],
                    bloom_columns: Sequence[str] = (),
                    file_seq: int = 0,
                    file_format: str = "orc") -> str:
        """Write a plain data file for a non-ACID table.

        ``file_format`` selects the SerDe: the ORC-like columnar
        container (default) or Hive's delimited text format.
        """
        path = f"{location}/part-{file_seq:05d}"
        if file_format == "text":
            from ..formats.text import TextWriter
            writer = TextWriter(schema)
            writer.write_rows(rows)
            self.fs.create(path, writer.finish())
            return path
        writer = OrcWriter(schema, self.row_group_size,
                           bloom_columns=bloom_columns)
        writer.write_rows(rows)
        self.fs.create(path, writer.finish())
        return path

    # -- internals ------------------------------------------------------------ #
    def _write_bucket(self, directory: str, schema: Schema,
                      rows: Sequence[tuple],
                      bloom_columns: Sequence[str]) -> str:
        path = f"{directory}/{BUCKET_FILE}"
        writer = OrcWriter(schema, self.row_group_size,
                           bloom_columns=bloom_columns)
        writer.write_rows(rows)
        self.fs.create(path, writer.finish())
        return path
