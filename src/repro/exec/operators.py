"""Relational operator execution.

``execute(rel, ctx)`` interprets a logical plan over materialized
:class:`~repro.common.vector.VectorBatch` data.  The Tez-style runtime
(:mod:`repro.runtime.tez`) carves the plan into vertices and calls into
this module for each fragment; scans are delegated to the context, which
routes them through the ACID reader / LLAP elevator / storage handlers.

Every operator records its output cardinality in
``ctx.runtime_stats`` — the runtime statistics that query re-execution
uses (Section 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..common.rows import Column, Schema
from ..common.types import BIGINT, DOUBLE
from ..common.vector import ColumnVector, VectorBatch
from ..errors import ExecutionError, OutOfMemoryError
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from . import expr_eval

#: guard against runaway cross products in nested-loop joins
MAX_CROSS_PRODUCT = 20_000_000

#: beyond this many distinct keys a vertex is treated as skew-free and
#: no per-key histogram is kept (bounds profiler memory)
KEY_HISTOGRAM_MAX_KEYS = 65_536


@dataclass
class ExecutionContext:
    """Everything a fragment needs at run time."""

    #: scan delegate: TableScan -> VectorBatch (wired by the runtime)
    scan_executor: Callable[[rel.TableScan], VectorBatch]
    #: per-operator output cardinalities (digest -> rows), for reopt
    runtime_stats: dict = field(default_factory=dict)
    #: dynamic semijoin filters keyed by reducer id (Section 4.6)
    semijoin_filters: dict = field(default_factory=dict)
    #: simulated available memory per hash join build, in rows; a build
    #: side exceeding it raises OutOfMemoryError (triggers reoptimization)
    hash_join_memory_rows: Optional[int] = None
    #: digests eligible for result reuse (shared work / semijoin sources);
    #: results land in ``memo`` and re-executions are skipped
    memo_digests: frozenset = frozenset()
    memo: dict = field(default_factory=dict)
    #: optional per-operator profile (repro.obs.ExecutionProfile): rows,
    #: executions and wall time per digest, for EXPLAIN ANALYZE
    profile: Optional[object] = None
    #: per-key row distributions observed by shuffling operators
    #: (digest -> {key: rows}); the runtime's skew analysis assigns the
    #: keys to reducer tasks to model per-task duration spread
    key_counts: dict = field(default_factory=dict)

    def record(self, node: rel.RelNode, rows: int) -> None:
        self.runtime_stats[node.digest] = rows

    def record_keys(self, node: rel.RelNode, counts: dict) -> None:
        """Keep the per-key distribution of a shuffling operator."""
        if counts and len(counts) <= KEY_HISTOGRAM_MAX_KEYS:
            self.key_counts[node.digest] = counts


def execute(node: rel.RelNode, ctx: ExecutionContext) -> VectorBatch:
    digest = None
    if ctx.memo_digests:
        digest = node.digest
        if digest in ctx.memo:
            return ctx.memo[digest]
    handler = _DISPATCH.get(type(node))
    if handler is None:
        raise ExecutionError(f"no executor for {type(node).__name__}")
    if ctx.profile is not None:
        t0 = time.perf_counter()
        result = handler(node, ctx)
        rows_in = sum(ctx.runtime_stats.get(child.digest, 0)
                      for child in node.inputs)
        ctx.profile.record(node.digest, result.num_rows,
                           time.perf_counter() - t0,
                           rows_in=rows_in,
                           batches=max(1, len(node.inputs)),
                           operator=type(node).__name__)
    else:
        result = handler(node, ctx)
    ctx.record(node, result.num_rows)
    if digest is not None and digest in ctx.memo_digests:
        ctx.memo[digest] = result
    return result


# --------------------------------------------------------------------------- #
# leaves

def _exec_scan(node: rel.TableScan, ctx: ExecutionContext) -> VectorBatch:
    return ctx.scan_executor(node)


def _exec_values(node: rel.Values, ctx: ExecutionContext) -> VectorBatch:
    return VectorBatch.from_rows(node.schema, node.rows)


# --------------------------------------------------------------------------- #
# unary

def _exec_filter(node: rel.Filter, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    mask = expr_eval.evaluate_predicate(node.condition, child)
    return child.filter(mask)


def _exec_project(node: rel.Project, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    vectors = [expr_eval.evaluate(expr, child) for expr in node.exprs]
    return VectorBatch(node.schema, vectors)


def _exec_limit(node: rel.Limit, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    return child.slice(0, node.count)


def _exec_sort(node: rel.Sort, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    order = sort_indices(child, node.keys)
    if node.fetch is not None:
        order = order[:node.fetch]
    return child.take(order)


def sort_indices(batch: VectorBatch,
                 keys: Sequence[rel.SortKey]) -> np.ndarray:
    """Stable multi-key sort; NULLs sort last regardless of direction."""
    n = batch.num_rows
    if n == 0:
        return np.arange(0)
    indices = list(range(n))
    key_values = []
    for key in keys:
        vector = batch.vectors[key.index]
        key_values.append((vector, key.ascending))

    def sort_key(i: int):
        parts = []
        for vector, ascending in key_values:
            is_null = bool(vector.nulls[i])
            value = None if is_null else vector.data[i]
            if value is not None and isinstance(value, np.generic):
                value = value.item()
            # nulls last: (1, anything); invert for DESC on comparables
            parts.append((1, 0) if is_null else (0, _Directional(
                value, ascending)))
        return tuple(parts)

    indices.sort(key=sort_key)
    return np.asarray(indices, dtype=np.int64)


class _Directional:
    """Wrapper to invert comparison for DESC keys."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_Directional") -> bool:
        if self.ascending:
            return self.value < other.value
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


# --------------------------------------------------------------------------- #
# aggregation

def _exec_aggregate(node: rel.Aggregate, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    if node.grouping_sets is not None:
        return _aggregate_grouping_sets(node, child)
    sizes: dict[tuple, int] = {}
    rows = _aggregate_once(node, child, node.group_keys,
                           sizes_out=sizes)
    ctx.record_keys(node, sizes)
    return VectorBatch.from_rows(node.schema, rows)


def _aggregate_grouping_sets(node: rel.Aggregate,
                             child: VectorBatch) -> VectorBatch:
    all_rows = []
    key_count = len(node.group_keys)
    for gset in node.grouping_sets:
        keys = tuple(node.group_keys[i] for i in gset)
        rows = _aggregate_once(node, child, keys)
        grouping_id = 0
        for i in range(key_count):
            if i not in gset:
                grouping_id |= 1 << (key_count - 1 - i)
        expanded = []
        for row in rows:
            full = [None] * key_count
            for out_pos, key_pos in enumerate(gset):
                full[key_pos] = row[out_pos]
            expanded.append(tuple(full) + tuple(row[len(gset):])
                            + (grouping_id,))
        all_rows.extend(expanded)
    return VectorBatch.from_rows(node.schema, all_rows)


def _aggregate_once(node: rel.Aggregate, child: VectorBatch,
                    group_keys: tuple[int, ...],
                    sizes_out: Optional[dict] = None) -> list[tuple]:
    key_columns = [child.vectors[k] for k in group_keys]
    n = child.num_rows
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    arg_columns = []
    for call in node.agg_calls:
        arg_columns.append(None if call.arg is None
                           else child.vectors[call.arg])

    def new_states():
        return [_new_state(call) for call in node.agg_calls]

    if not group_keys:
        states = new_states()
        groups[()] = states
        order.append(())
        for i in range(n):
            _update_states(node.agg_calls, states, arg_columns, i)
    else:
        for i in range(n):
            key = tuple(
                None if kc.nulls[i] else _plain(kc.data[i])
                for kc in key_columns)
            states = groups.get(key)
            if states is None:
                states = new_states()
                groups[key] = states
                order.append(key)
            if sizes_out is not None:
                sizes_out[key] = sizes_out.get(key, 0) + 1
            _update_states(node.agg_calls, states, arg_columns, i)

    rows = []
    for key in order:
        states = groups[key]
        finals = tuple(_finalize_state(call, state)
                       for call, state in zip(node.agg_calls, states))
        rows.append(key + finals)
    if not group_keys and not rows:
        rows.append(tuple(_finalize_state(call, state) for call, state
                          in zip(node.agg_calls, new_states())))
    return rows


def _new_state(call: rex.AggregateCall):
    if call.distinct:
        return set()
    if call.func == "count":
        return 0
    if call.func in ("sum", "avg"):
        return [0.0, 0]          # sum, count
    if call.func in ("min", "max"):
        return [None]
    if call.func in ("stddev", "variance"):
        return [0.0, 0.0, 0]     # sum, sumsq, count
    raise ExecutionError(f"unknown aggregate {call.func}")


def _update_states(calls, states, arg_columns, i: int) -> None:
    for slot, (call, state, column) in enumerate(
            zip(calls, states, arg_columns)):
        if column is None:       # count(*)
            if call.distinct:
                state.add(i)
            else:
                states[slot] += 1
            continue
        if column.nulls[i]:
            continue
        value = _plain(column.data[i])
        if call.distinct:
            state.add(value)
        elif call.func == "count":
            states[slot] += 1
        elif call.func in ("sum", "avg"):
            state[0] += value
            state[1] += 1
        elif call.func == "min":
            if state[0] is None or value < state[0]:
                state[0] = value
        elif call.func == "max":
            if state[0] is None or value > state[0]:
                state[0] = value
        elif call.func in ("stddev", "variance"):
            state[0] += value
            state[1] += value * value
            state[2] += 1


def _finalize_state(call: rex.AggregateCall, state):
    if call.distinct:
        if call.func == "count":
            return len(state)
        if not state:
            return None
        if call.func == "sum":
            return sum(state)
        if call.func == "avg":
            return sum(state) / len(state)
        if call.func == "min":
            return min(state)
        if call.func == "max":
            return max(state)
        raise ExecutionError(f"unsupported DISTINCT {call.func}")
    if call.func == "count":
        return state
    if call.func == "sum":
        if state[1] == 0:
            return None
        total = state[0]
        return int(total) if call.dtype == BIGINT else total
    if call.func == "avg":
        return None if state[1] == 0 else state[0] / state[1]
    if call.func in ("min", "max"):
        return state[0]
    if call.func in ("stddev", "variance"):
        if state[2] == 0:
            return None
        mean = state[0] / state[2]
        variance = max(0.0, state[1] / state[2] - mean * mean)
        return variance if call.func == "variance" else variance ** 0.5
    raise ExecutionError(call.func)


def _plain(value):
    return value.item() if isinstance(value, np.generic) else value


# --------------------------------------------------------------------------- #
# joins

def _exec_join(node: rel.Join, ctx: ExecutionContext) -> VectorBatch:
    left = execute(node.left, ctx)
    right = execute(node.right, ctx)
    return join_batches(node, left, right, ctx)


def join_batches(node: rel.Join, left: VectorBatch, right: VectorBatch,
                 ctx: ExecutionContext) -> VectorBatch:
    left_width = len(left.schema)
    pairs, residual = rex.split_equi_condition(node.condition, left_width)
    if (ctx.hash_join_memory_rows is not None and pairs
            and right.num_rows > ctx.hash_join_memory_rows):
        raise OutOfMemoryError(
            f"hash join build side has {right.num_rows} rows, memory "
            f"budget is {ctx.hash_join_memory_rows}",
            vertex=node._explain_label())

    li, ri, key_counts = _candidate_pairs(left, right, pairs)
    if key_counts is not None:
        ctx.record_keys(node, key_counts)
    if residual:
        mask = _residual_mask(node, left, right, li, ri, residual)
        li, ri = li[mask], ri[mask]

    kind = node.kind
    if kind == "semi":
        keep = np.unique(li)
        return left.take(keep)
    if kind == "anti":
        matched = np.zeros(left.num_rows, dtype=bool)
        matched[li] = True
        return left.filter(~matched)

    out_schema = node.schema
    if kind == "inner":
        return _combine(out_schema, left, right, li, ri)
    if kind in ("left", "full"):
        matched = np.zeros(left.num_rows, dtype=bool)
        matched[li] = True
        extra_left = np.nonzero(~matched)[0]
        li = np.concatenate([li, extra_left])
        ri = np.concatenate([ri, np.full(len(extra_left), -1,
                                         dtype=np.int64)])
    if kind in ("right", "full"):
        matched_right = np.zeros(right.num_rows, dtype=bool)
        matched_right[ri[ri >= 0]] = True
        extra_right = np.nonzero(~matched_right)[0]
        li = np.concatenate([li, np.full(len(extra_right), -1,
                                         dtype=np.int64)])
        ri = np.concatenate([ri, extra_right])
    return _combine(out_schema, left, right, li, ri)


def _candidate_pairs(left: VectorBatch, right: VectorBatch,
                     pairs: list[tuple[int, int]]
                     ) -> tuple[np.ndarray, np.ndarray, Optional[dict]]:
    """Matching row pairs, plus the per-key distribution of matches.

    The third element maps each equi-join key to the number of joined
    rows it produced — the shuffle distribution a hash-partitioned
    reducer would see, which the runtime's skew analysis consumes.
    ``None`` for cross products (no shuffle key exists).
    """
    if not pairs:
        total = left.num_rows * right.num_rows
        if total > MAX_CROSS_PRODUCT:
            raise ExecutionError(
                f"cross product of {left.num_rows} x {right.num_rows} "
                "rows exceeds the nested-loop limit")
        li = np.repeat(np.arange(left.num_rows), right.num_rows)
        ri = np.tile(np.arange(right.num_rows), left.num_rows)
        return li.astype(np.int64), ri.astype(np.int64), None
    # hash join: build on right
    build: dict[tuple, list[int]] = {}
    right_keys = [right.vectors[r] for _, r in pairs]
    for i in range(right.num_rows):
        if any(kc.nulls[i] for kc in right_keys):
            continue
        key = tuple(_plain(kc.data[i]) for kc in right_keys)
        build.setdefault(key, []).append(i)
    left_keys = [left.vectors[l] for l, _ in pairs]
    li_out: list[int] = []
    ri_out: list[int] = []
    key_counts: dict[tuple, int] = {}
    for i in range(left.num_rows):
        if any(kc.nulls[i] for kc in left_keys):
            continue
        key = tuple(_plain(kc.data[i]) for kc in left_keys)
        matches = build.get(key)
        if matches:
            li_out.extend([i] * len(matches))
            ri_out.extend(matches)
            key_counts[key] = key_counts.get(key, 0) + len(matches)
    return (np.asarray(li_out, dtype=np.int64),
            np.asarray(ri_out, dtype=np.int64), key_counts)


def _residual_mask(node, left, right, li, ri, residual) -> np.ndarray:
    combined_schema = left.schema.concat(right.schema, dedupe=True)
    combined = VectorBatch(
        combined_schema,
        [v.take(li) for v in left.vectors]
        + [v.take(ri) for v in right.vectors])
    condition = rex.make_and(list(residual))
    return expr_eval.evaluate_predicate(condition, combined)


def _combine(out_schema: Schema, left: VectorBatch, right: VectorBatch,
             li: np.ndarray, ri: np.ndarray) -> VectorBatch:
    """Materialize joined rows; index -1 produces NULL-padded sides."""
    vectors: list[ColumnVector] = []
    for v in left.vectors:
        vectors.append(_take_padded(v, li))
    for v in right.vectors:
        vectors.append(_take_padded(v, ri))
    return VectorBatch(out_schema, vectors)


def _take_padded(vector: ColumnVector, indices: np.ndarray) -> ColumnVector:
    if len(indices) == 0:
        return ColumnVector(vector.dtype,
                            np.empty(0, dtype=vector.data.dtype),
                            np.empty(0, dtype=bool))
    safe = np.where(indices < 0, 0, indices)
    data = vector.data[safe]
    nulls = vector.nulls[safe] | (indices < 0)
    if len(vector.data) == 0:
        # all padding
        data = np.zeros(len(indices), dtype=vector.data.dtype) \
            if vector.data.dtype != np.dtype(object) else _empty_obj(
                len(indices))
        nulls = np.ones(len(indices), dtype=bool)
    return ColumnVector(vector.dtype, data, nulls)


def _empty_obj(n: int) -> np.ndarray:
    out = np.empty(n, dtype=object)
    out[:] = ""
    return out


# --------------------------------------------------------------------------- #
# set operations

def _exec_union(node: rel.Union, ctx: ExecutionContext) -> VectorBatch:
    batches = [execute(child, ctx) for child in node.rels]
    return VectorBatch.concat(node.schema, [
        b.with_schema(node.schema) for b in batches])


def _exec_setop(node: rel.SetOp, ctx: ExecutionContext) -> VectorBatch:
    left = execute(node.left, ctx)
    right = execute(node.right, ctx)
    right_rows = set(right.to_rows())
    left_rows = left.to_rows()
    if node.kind == "intersect":
        out, seen = [], set()
        for row in left_rows:
            if row in right_rows and (node.all or row not in seen):
                out.append(row)
                seen.add(row)
    elif node.kind == "except":
        out, seen = [], set()
        for row in left_rows:
            if row not in right_rows and (node.all or row not in seen):
                out.append(row)
                seen.add(row)
    else:
        raise ExecutionError(f"unknown set op {node.kind}")
    return VectorBatch.from_rows(node.schema, out)


# --------------------------------------------------------------------------- #
# window functions

def _exec_window(node: rel.Window, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    n = child.num_rows
    out_vectors = list(child.vectors)
    for call in node.calls:
        out_vectors.append(_window_column(call, child, n))
    return VectorBatch(node.schema, out_vectors)


def _window_column(call: rel.WindowCall, child: VectorBatch,
                   n: int) -> ColumnVector:
    partitions: dict[tuple, list[int]] = {}
    for i in range(n):
        key = tuple(
            None if child.vectors[k].nulls[i]
            else _plain(child.vectors[k].data[i])
            for k in call.partition_keys)
        partitions.setdefault(key, []).append(i)

    np_dtype = call.dtype.numpy_dtype
    data = (np.zeros(n, dtype=np_dtype) if np_dtype != np.dtype(object)
            else _empty_obj(n))
    nulls = np.zeros(n, dtype=bool)

    for rows in partitions.values():
        ordered = rows
        if call.order_keys:
            sub = child.take(np.asarray(rows, dtype=np.int64))
            order = sort_indices(sub, call.order_keys)
            ordered = [rows[j] for j in order]
        if call.func == "row_number":
            for rank, idx in enumerate(ordered, 1):
                data[idx] = rank
        elif call.func in ("rank", "dense_rank"):
            _rank_partition(call, child, ordered, data)
        else:
            _agg_partition(call, child, ordered, data, nulls)
    return ColumnVector(call.dtype, data, nulls)


def _rank_partition(call, child, ordered, data) -> None:
    def order_tuple(i: int):
        return tuple(
            (1,) if child.vectors[k.index].nulls[i]
            else (0, _plain(child.vectors[k.index].data[i]))
            for k in call.order_keys)

    prev = None
    rank = 0
    dense = 0
    for pos, idx in enumerate(ordered, 1):
        current = order_tuple(idx)
        if current != prev:
            rank = pos
            dense += 1
            prev = current
        data[idx] = rank if call.func == "rank" else dense


def _agg_partition(call, child, ordered, data, nulls) -> None:
    """Windowed aggregates: running when ORDER BY present, else whole."""
    column = None if call.arg is None else child.vectors[call.arg]
    if not call.order_keys:
        values = []
        if column is None:
            total_count = len(ordered)
        else:
            values = [_plain(column.data[i]) for i in ordered
                      if not column.nulls[i]]
            total_count = len(values)
        result, is_null = _window_agg_value(call.func, values, total_count)
        for idx in ordered:
            data[idx] = result if not is_null else data[idx]
            nulls[idx] = is_null
        return
    running: list = []
    count = 0
    for idx in ordered:
        if column is None:
            count += 1
        elif not column.nulls[idx]:
            running.append(_plain(column.data[idx]))
            count += 1
        result, is_null = _window_agg_value(call.func, running, count)
        if not is_null:
            data[idx] = result
        nulls[idx] = is_null


def _window_agg_value(func: str, values: list, count: int):
    if func == "count":
        return count, False
    if not values:
        return 0, True
    if func == "sum":
        return sum(values), False
    if func == "avg":
        return sum(values) / len(values), False
    if func == "min":
        return min(values), False
    if func == "max":
        return max(values), False
    raise ExecutionError(f"unsupported window aggregate {func}")


_DISPATCH = {
    rel.TableScan: _exec_scan,
    rel.Values: _exec_values,
    rel.Filter: _exec_filter,
    rel.Project: _exec_project,
    rel.Limit: _exec_limit,
    rel.Sort: _exec_sort,
    rel.Aggregate: _exec_aggregate,
    rel.Join: _exec_join,
    rel.Union: _exec_union,
    rel.SetOp: _exec_setop,
    rel.Window: _exec_window,
}
