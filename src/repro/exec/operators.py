"""Relational operator execution.

``execute(rel, ctx)`` interprets a logical plan over materialized
:class:`~repro.common.vector.VectorBatch` data.  The Tez-style runtime
(:mod:`repro.runtime.tez`) carves the plan into vertices and calls into
this module for each fragment; scans are delegated to the context, which
routes them through the ACID reader / LLAP elevator / storage handlers.

Every operator records its output cardinality in
``ctx.runtime_stats`` — the runtime statistics that query re-execution
uses (Section 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..common.rows import Column, Schema
from ..common.types import BIGINT, DOUBLE
from ..common.vector import ColumnVector, VectorBatch
from ..errors import ExecutionError, OutOfMemoryError
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from . import expr_eval

#: guard against runaway cross products in nested-loop joins
MAX_CROSS_PRODUCT = 20_000_000

#: beyond this many distinct keys a vertex is treated as skew-free and
#: no per-key histogram is kept (bounds profiler memory)
KEY_HISTOGRAM_MAX_KEYS = 65_536


@dataclass
class ExecutionContext:
    """Everything a fragment needs at run time."""

    #: scan delegate: TableScan -> VectorBatch (wired by the runtime)
    scan_executor: Callable[[rel.TableScan], VectorBatch]
    #: per-operator output cardinalities (digest -> rows), for reopt
    runtime_stats: dict = field(default_factory=dict)
    #: dynamic semijoin filters keyed by reducer id (Section 4.6)
    semijoin_filters: dict = field(default_factory=dict)
    #: simulated available memory per hash join build, in rows; a build
    #: side exceeding it raises OutOfMemoryError (triggers reoptimization)
    hash_join_memory_rows: Optional[int] = None
    #: digests eligible for result reuse (shared work / semijoin sources);
    #: results land in ``memo`` and re-executions are skipped
    memo_digests: frozenset = frozenset()
    memo: dict = field(default_factory=dict)
    #: optional per-operator profile (repro.obs.ExecutionProfile): rows,
    #: executions and wall time per digest, for EXPLAIN ANALYZE
    profile: Optional[object] = None
    #: per-key row distributions observed by shuffling operators
    #: (digest -> {key: rows}); the runtime's skew analysis assigns the
    #: keys to reducer tasks to model per-task duration spread
    key_counts: dict = field(default_factory=dict)
    #: statement-scoped expression inputs (virtual statement time, RAND
    #: salt); defaults to the virtual epoch — never the wall clock
    eval_ctx: expr_eval.EvalContext = field(
        default_factory=expr_eval.EvalContext)
    #: compiled-kernel cache (repro.exec.compile.KernelCache); when set,
    #: expressions are lowered once and reused across batches — None
    #: falls back to the per-batch interpreter
    kernels: Optional[object] = None
    #: fuse Filter->Project chains so the selection mask is applied only
    #: to columns the projection reads (hive.vectorized.fusion)
    fuse: bool = True

    def record(self, node: rel.RelNode, rows: int) -> None:
        self.runtime_stats[node.digest] = rows

    def record_keys(self, node: rel.RelNode, counts: dict) -> None:
        """Keep the per-key distribution of a shuffling operator."""
        if counts and len(counts) <= KEY_HISTOGRAM_MAX_KEYS:
            self.key_counts[node.digest] = counts


def execute(node: rel.RelNode, ctx: ExecutionContext) -> VectorBatch:
    digest = None
    if ctx.memo_digests:
        digest = node.digest
        if digest in ctx.memo:
            return ctx.memo[digest]
    handler = _DISPATCH.get(type(node))
    if handler is None:
        raise ExecutionError(f"no executor for {type(node).__name__}")
    if ctx.profile is not None:
        t0 = time.perf_counter()
        result = handler(node, ctx)
        rows_in = sum(ctx.runtime_stats.get(child.digest, 0)
                      for child in node.inputs)
        ctx.profile.record(node.digest, result.num_rows,
                           time.perf_counter() - t0,
                           rows_in=rows_in,
                           batches=max(1, len(node.inputs)),
                           operator=type(node).__name__)
    else:
        result = handler(node, ctx)
    ctx.record(node, result.num_rows)
    if digest is not None and digest in ctx.memo_digests:
        ctx.memo[digest] = result
    return result


def _eval(ctx: ExecutionContext, expr: rex.RexNode,
          batch) -> ColumnVector:
    """Evaluate through the kernel cache when one is wired."""
    if ctx.kernels is not None:
        return ctx.kernels.kernel(expr)(batch, ctx.eval_ctx)
    return expr_eval.evaluate(expr, batch, ctx.eval_ctx)


def _predicate(ctx: ExecutionContext, expr: rex.RexNode,
               batch) -> np.ndarray:
    if ctx.kernels is not None:
        return ctx.kernels.predicate(expr)(batch, ctx.eval_ctx)
    return expr_eval.evaluate_predicate(expr, batch, ctx.eval_ctx)


# --------------------------------------------------------------------------- #
# leaves

def _exec_scan(node: rel.TableScan, ctx: ExecutionContext) -> VectorBatch:
    return ctx.scan_executor(node)


def _exec_values(node: rel.Values, ctx: ExecutionContext) -> VectorBatch:
    return VectorBatch.from_rows(node.schema, node.rows)


# --------------------------------------------------------------------------- #
# unary

def _exec_filter(node: rel.Filter, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    mask = _predicate(ctx, node.condition, child)
    return child.filter(mask)


class _SelectionView:
    """A filtered view of a batch that only materializes needed columns.

    Fused Filter->Project evaluation applies the selection mask to just
    the columns the projection references; the rest stay untouched in
    the source batch (``None`` placeholders keep ordinals aligned).
    Duck-types the two attributes expression kernels read —
    ``vectors`` and ``num_rows`` — deliberately *not* a VectorBatch,
    whose constructor would reject the ragged placeholder columns.
    """

    __slots__ = ("vectors", "num_rows")

    def __init__(self, source: VectorBatch, mask: np.ndarray,
                 refs: set):
        selected = int(np.count_nonzero(mask))
        if selected == source.num_rows:
            self.vectors = source.vectors       # mask selects everything
        else:
            self.vectors = [v.filter(mask) if i in refs else None
                            for i, v in enumerate(source.vectors)]
        self.num_rows = selected


def _exec_project(node: rel.Project, ctx: ExecutionContext) -> VectorBatch:
    child = _fused_filter_input(node, ctx)
    if child is None:
        child = execute(node.input, ctx)
    vectors = [_eval(ctx, expr, child) for expr in node.exprs]
    return VectorBatch(node.schema, vectors)


def _fused_filter_input(node: rel.Project, ctx: ExecutionContext):
    """Evaluate a Filter child as a selection view, not a new batch.

    Returns None when fusion does not apply: disabled, the child is not
    a Filter, or the Filter's output is needed verbatim elsewhere
    (shared-work memoization reuses materialized results by digest).
    The bypassed Filter is still recorded in ``runtime_stats`` and the
    profile — reoptimization and EXPLAIN ANALYZE must see it run.
    """
    child_node = node.input
    if not ctx.fuse or not isinstance(child_node, rel.Filter):
        return None
    if ctx.memo_digests and child_node.digest in ctx.memo_digests:
        return None
    t0 = time.perf_counter() if ctx.profile is not None else 0.0
    source = execute(child_node.input, ctx)
    mask = _predicate(ctx, child_node.condition, source)
    refs: set = set()
    for expr in node.exprs:
        refs |= expr.input_refs()
    view = _SelectionView(source, mask, refs)
    ctx.record(child_node, view.num_rows)
    if ctx.profile is not None:
        ctx.profile.record(
            child_node.digest, view.num_rows,
            time.perf_counter() - t0,
            rows_in=ctx.runtime_stats.get(child_node.input.digest, 0),
            batches=1, operator=type(child_node).__name__)
    return view


def _exec_limit(node: rel.Limit, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    return child.slice(0, node.count)


def _exec_sort(node: rel.Sort, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    order = sort_indices(child, node.keys)
    if node.fetch is not None:
        order = order[:node.fetch]
    return child.take(order)


def sort_indices(batch: VectorBatch,
                 keys: Sequence[rel.SortKey]) -> np.ndarray:
    """Stable multi-key sort; NULLs sort last regardless of direction."""
    n = batch.num_rows
    if n == 0:
        return np.arange(0)
    indices = list(range(n))
    key_values = []
    for key in keys:
        vector = batch.vectors[key.index]
        key_values.append((vector, key.ascending))

    def sort_key(i: int):
        parts = []
        for vector, ascending in key_values:
            is_null = bool(vector.nulls[i])
            value = None if is_null else vector.data[i]
            if value is not None and isinstance(value, np.generic):
                value = value.item()
            # nulls last: (1, anything); invert for DESC on comparables
            parts.append((1, 0) if is_null else (0, _Directional(
                value, ascending)))
        return tuple(parts)

    indices.sort(key=sort_key)
    return np.asarray(indices, dtype=np.int64)


class _Directional:
    """Wrapper to invert comparison for DESC keys."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_Directional") -> bool:
        if self.ascending:
            return self.value < other.value
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


# --------------------------------------------------------------------------- #
# aggregation

def _exec_aggregate(node: rel.Aggregate, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    if node.grouping_sets is not None:
        return _aggregate_grouping_sets(node, child)
    sizes: dict[tuple, int] = {}
    rows = _aggregate_once(node, child, node.group_keys,
                           sizes_out=sizes)
    ctx.record_keys(node, sizes)
    return VectorBatch.from_rows(node.schema, rows)


def _aggregate_grouping_sets(node: rel.Aggregate,
                             child: VectorBatch) -> VectorBatch:
    all_rows = []
    key_count = len(node.group_keys)
    for gset in node.grouping_sets:
        keys = tuple(node.group_keys[i] for i in gset)
        rows = _aggregate_once(node, child, keys)
        grouping_id = 0
        for i in range(key_count):
            if i not in gset:
                grouping_id |= 1 << (key_count - 1 - i)
        expanded = []
        for row in rows:
            full = [None] * key_count
            for out_pos, key_pos in enumerate(gset):
                full[key_pos] = row[out_pos]
            expanded.append(tuple(full) + tuple(row[len(gset):])
                            + (grouping_id,))
        all_rows.extend(expanded)
    return VectorBatch.from_rows(node.schema, all_rows)


def _aggregate_once(node: rel.Aggregate, child: VectorBatch,
                    group_keys: tuple[int, ...],
                    sizes_out: Optional[dict] = None) -> list[tuple]:
    rows = _aggregate_vectorized(node, child, group_keys, sizes_out)
    if rows is not None:
        return rows
    return _aggregate_rowwise(node, child, group_keys, sizes_out)


def _group_codes(vector: ColumnVector) -> Optional[np.ndarray]:
    """Dense int codes for one key column; NULL is its own group.

    Returns None when the column cannot be factorized (unorderable
    mixed-type object data) — the caller falls back to the row loop.
    """
    vals = vector.data
    nulls = vector.nulls
    has_nulls = bool(nulls.any())
    if has_nulls:
        # values under null positions are unspecified garbage; blank
        # them so np.unique never compares them against real values
        vals = vals.copy()
        vals[nulls] = "" if vals.dtype == np.dtype(object) else 0
    try:
        uniq, inv = np.unique(vals, return_inverse=True)
    except TypeError:
        return None
    codes = inv.reshape(-1).astype(np.int64)
    if has_nulls:
        codes[nulls] = len(uniq)
    return codes


def _factorize_keys(child: VectorBatch, group_keys: tuple[int, ...]):
    """Combined group ids in *first-occurrence* order.

    Returns ``(codes, group_count, representatives)`` where
    ``representatives[g]`` is the row index of group ``g``'s first row,
    or None if any key column cannot be factorized.  First-occurrence
    ordering matches the dict-insertion order of the row-at-a-time
    fallback, so both paths emit identical output row order.
    """
    n = child.num_rows
    if not group_keys:
        return np.zeros(n, dtype=np.int64), 1, np.zeros(1, dtype=np.int64)
    code_cols = []
    for k in group_keys:
        codes = _group_codes(child.vectors[k])
        if codes is None:
            return None
        code_cols.append(codes)
    mat = np.stack(code_cols, axis=1)
    _, first_idx, inv = np.unique(mat, axis=0, return_index=True,
                                  return_inverse=True)
    inv = inv.reshape(-1)
    g = len(first_idx)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(g, dtype=np.int64)
    rank[order] = np.arange(g)
    return rank[inv], g, first_idx[order]


def _key_tuple(key_columns, i: int) -> tuple:
    return tuple(None if kc.nulls[i] else _plain(kc.data[i])
                 for kc in key_columns)


def _minmax_init(dtype: np.dtype, for_min: bool):
    if dtype == np.dtype(bool):
        return for_min
    if np.issubdtype(dtype, np.floating):
        return np.inf if for_min else -np.inf
    return np.iinfo(dtype).max if for_min else np.iinfo(dtype).min


def _aggregate_vectorized(node: rel.Aggregate, child: VectorBatch,
                          group_keys: tuple[int, ...],
                          sizes_out: Optional[dict]
                          ) -> Optional[list[tuple]]:
    """Grouped aggregation as batch-level numpy ops.

    ``np.bincount`` with weights accumulates in row order, so float
    sums are bit-identical to the sequential loop it replaces.  Returns
    None (fall back to the row loop) for DISTINCT aggregates, string
    min/max, or keys that will not factorize.
    """
    for call in node.agg_calls:
        if call.distinct:
            return None
        if call.func in ("min", "max") and call.arg is not None \
                and child.vectors[call.arg].data.dtype == np.dtype(object):
            return None
    factorized = _factorize_keys(child, group_keys)
    if factorized is None:
        return None
    codes, g, reps = factorized
    if group_keys and g == 0:
        return []
    key_columns = [child.vectors[k] for k in group_keys]
    keys = [_key_tuple(key_columns, int(r)) for r in reps]
    if sizes_out is not None and group_keys:
        sizes = np.bincount(codes, minlength=g)
        for key, size in zip(keys, sizes):
            sizes_out[key] = int(size)

    columns: list[tuple] = []   # one (finals-per-group,) per agg call
    for call in node.agg_calls:
        column = None if call.arg is None else child.vectors[call.arg]
        if column is None:
            valid_codes, valid_data = codes, None
        else:
            valid = ~column.nulls
            valid_codes = codes[valid]
            valid_data = column.data[valid]
        counts = np.bincount(valid_codes, minlength=g)
        if call.func == "count":
            finals = [int(c) for c in counts]
        elif call.func in ("sum", "avg"):
            weights = valid_data.astype(np.float64, copy=False)
            totals = np.bincount(valid_codes, weights=weights,
                                 minlength=g)
            if call.func == "sum":
                as_int = call.dtype == BIGINT
                finals = [None if counts[j] == 0
                          else (int(totals[j]) if as_int
                                else float(totals[j]))
                          for j in range(g)]
            else:
                finals = [None if counts[j] == 0
                          else float(totals[j]) / int(counts[j])
                          for j in range(g)]
        elif call.func in ("min", "max"):
            for_min = call.func == "min"
            out = np.full(g, _minmax_init(valid_data.dtype, for_min),
                          dtype=valid_data.dtype)
            if for_min:
                np.minimum.at(out, valid_codes, valid_data)
            else:
                np.maximum.at(out, valid_codes, valid_data)
            finals = [None if counts[j] == 0 else _plain(out[j])
                      for j in range(g)]
        elif call.func in ("stddev", "variance"):
            weights = valid_data.astype(np.float64, copy=False)
            totals = np.bincount(valid_codes, weights=weights,
                                 minlength=g)
            sumsq = np.bincount(valid_codes, weights=weights * weights,
                                minlength=g)
            finals = []
            for j in range(g):
                if counts[j] == 0:
                    finals.append(None)
                    continue
                mean = float(totals[j]) / int(counts[j])
                variance = max(0.0, float(sumsq[j]) / int(counts[j])
                               - mean * mean)
                finals.append(variance if call.func == "variance"
                              else variance ** 0.5)
        else:
            return None
        columns.append(tuple(finals))
    return [keys[j] + tuple(col[j] for col in columns)
            for j in range(g)]


def _aggregate_rowwise(node: rel.Aggregate, child: VectorBatch,
                       group_keys: tuple[int, ...],
                       sizes_out: Optional[dict] = None) -> list[tuple]:
    key_columns = [child.vectors[k] for k in group_keys]
    n = child.num_rows
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    arg_columns = []
    for call in node.agg_calls:
        arg_columns.append(None if call.arg is None
                           else child.vectors[call.arg])

    def new_states():
        return [_new_state(call) for call in node.agg_calls]

    if not group_keys:
        states = new_states()
        groups[()] = states
        order.append(())
        for i in range(n):
            _update_states(node.agg_calls, states, arg_columns, i)
    else:
        for i in range(n):
            key = tuple(
                None if kc.nulls[i] else _plain(kc.data[i])
                for kc in key_columns)
            states = groups.get(key)
            if states is None:
                states = new_states()
                groups[key] = states
                order.append(key)
            if sizes_out is not None:
                sizes_out[key] = sizes_out.get(key, 0) + 1
            _update_states(node.agg_calls, states, arg_columns, i)

    rows = []
    for key in order:
        states = groups[key]
        finals = tuple(_finalize_state(call, state)
                       for call, state in zip(node.agg_calls, states))
        rows.append(key + finals)
    if not group_keys and not rows:
        rows.append(tuple(_finalize_state(call, state) for call, state
                          in zip(node.agg_calls, new_states())))
    return rows


def _new_state(call: rex.AggregateCall):
    if call.distinct:
        return set()
    if call.func == "count":
        return 0
    if call.func in ("sum", "avg"):
        return [0.0, 0]          # sum, count
    if call.func in ("min", "max"):
        return [None]
    if call.func in ("stddev", "variance"):
        return [0.0, 0.0, 0]     # sum, sumsq, count
    raise ExecutionError(f"unknown aggregate {call.func}")


def _update_states(calls, states, arg_columns, i: int) -> None:
    for slot, (call, state, column) in enumerate(
            zip(calls, states, arg_columns)):
        if column is None:       # count(*)
            if call.distinct:
                state.add(i)
            else:
                states[slot] += 1
            continue
        if column.nulls[i]:
            continue
        value = _plain(column.data[i])
        if call.distinct:
            state.add(value)
        elif call.func == "count":
            states[slot] += 1
        elif call.func in ("sum", "avg"):
            state[0] += value
            state[1] += 1
        elif call.func == "min":
            if state[0] is None or value < state[0]:
                state[0] = value
        elif call.func == "max":
            if state[0] is None or value > state[0]:
                state[0] = value
        elif call.func in ("stddev", "variance"):
            state[0] += value
            state[1] += value * value
            state[2] += 1


def _finalize_state(call: rex.AggregateCall, state):
    if call.distinct:
        if call.func == "count":
            return len(state)
        if not state:
            return None
        if call.func == "sum":
            return sum(state)
        if call.func == "avg":
            return sum(state) / len(state)
        if call.func == "min":
            return min(state)
        if call.func == "max":
            return max(state)
        raise ExecutionError(f"unsupported DISTINCT {call.func}")
    if call.func == "count":
        return state
    if call.func == "sum":
        if state[1] == 0:
            return None
        total = state[0]
        return int(total) if call.dtype == BIGINT else total
    if call.func == "avg":
        return None if state[1] == 0 else state[0] / state[1]
    if call.func in ("min", "max"):
        return state[0]
    if call.func in ("stddev", "variance"):
        if state[2] == 0:
            return None
        mean = state[0] / state[2]
        variance = max(0.0, state[1] / state[2] - mean * mean)
        return variance if call.func == "variance" else variance ** 0.5
    raise ExecutionError(call.func)


def _plain(value):
    return value.item() if isinstance(value, np.generic) else value


# --------------------------------------------------------------------------- #
# joins

def _exec_join(node: rel.Join, ctx: ExecutionContext) -> VectorBatch:
    left = execute(node.left, ctx)
    right = execute(node.right, ctx)
    return join_batches(node, left, right, ctx)


def join_batches(node: rel.Join, left: VectorBatch, right: VectorBatch,
                 ctx: ExecutionContext) -> VectorBatch:
    left_width = len(left.schema)
    pairs, residual = rex.split_equi_condition(node.condition, left_width)
    if (ctx.hash_join_memory_rows is not None and pairs
            and right.num_rows > ctx.hash_join_memory_rows):
        raise OutOfMemoryError(
            f"hash join build side has {right.num_rows} rows, memory "
            f"budget is {ctx.hash_join_memory_rows}",
            vertex=node._explain_label())

    li, ri, key_counts = _candidate_pairs(left, right, pairs)
    if key_counts is not None:
        ctx.record_keys(node, key_counts)
    if residual:
        mask = _residual_mask(node, left, right, li, ri, residual, ctx)
        li, ri = li[mask], ri[mask]

    kind = node.kind
    if kind == "semi":
        keep = np.unique(li)
        return left.take(keep)
    if kind == "anti":
        matched = np.zeros(left.num_rows, dtype=bool)
        matched[li] = True
        return left.filter(~matched)

    out_schema = node.schema
    if kind == "inner":
        return _combine(out_schema, left, right, li, ri)
    if kind in ("left", "full"):
        matched = np.zeros(left.num_rows, dtype=bool)
        matched[li] = True
        extra_left = np.nonzero(~matched)[0]
        li = np.concatenate([li, extra_left])
        ri = np.concatenate([ri, np.full(len(extra_left), -1,
                                         dtype=np.int64)])
    if kind in ("right", "full"):
        matched_right = np.zeros(right.num_rows, dtype=bool)
        matched_right[ri[ri >= 0]] = True
        extra_right = np.nonzero(~matched_right)[0]
        li = np.concatenate([li, np.full(len(extra_right), -1,
                                         dtype=np.int64)])
        ri = np.concatenate([ri, extra_right])
    return _combine(out_schema, left, right, li, ri)


def _candidate_pairs(left: VectorBatch, right: VectorBatch,
                     pairs: list[tuple[int, int]]
                     ) -> tuple[np.ndarray, np.ndarray, Optional[dict]]:
    """Matching row pairs, plus the per-key distribution of matches.

    The third element maps each equi-join key to the number of joined
    rows it produced — the shuffle distribution a hash-partitioned
    reducer would see, which the runtime's skew analysis consumes.
    ``None`` for cross products (no shuffle key exists).
    """
    if not pairs:
        total = left.num_rows * right.num_rows
        if total > MAX_CROSS_PRODUCT:
            raise ExecutionError(
                f"cross product of {left.num_rows} x {right.num_rows} "
                "rows exceeds the nested-loop limit")
        li = np.repeat(np.arange(left.num_rows), right.num_rows)
        ri = np.tile(np.arange(right.num_rows), left.num_rows)
        return li.astype(np.int64), ri.astype(np.int64), None
    # hash join: build on right
    build: dict[tuple, list[int]] = {}
    right_keys = [right.vectors[r] for _, r in pairs]
    for i in range(right.num_rows):
        if any(kc.nulls[i] for kc in right_keys):
            continue
        key = tuple(_plain(kc.data[i]) for kc in right_keys)
        build.setdefault(key, []).append(i)
    left_keys = [left.vectors[l] for l, _ in pairs]
    li_out: list[int] = []
    ri_out: list[int] = []
    key_counts: dict[tuple, int] = {}
    for i in range(left.num_rows):
        if any(kc.nulls[i] for kc in left_keys):
            continue
        key = tuple(_plain(kc.data[i]) for kc in left_keys)
        matches = build.get(key)
        if matches:
            li_out.extend([i] * len(matches))
            ri_out.extend(matches)
            key_counts[key] = key_counts.get(key, 0) + len(matches)
    return (np.asarray(li_out, dtype=np.int64),
            np.asarray(ri_out, dtype=np.int64), key_counts)


def _residual_mask(node, left, right, li, ri, residual,
                   ctx: ExecutionContext) -> np.ndarray:
    combined_schema = left.schema.concat(right.schema, dedupe=True)
    combined = VectorBatch(
        combined_schema,
        [v.take(li) for v in left.vectors]
        + [v.take(ri) for v in right.vectors])
    condition = rex.make_and(list(residual))
    return _predicate(ctx, condition, combined)


def _combine(out_schema: Schema, left: VectorBatch, right: VectorBatch,
             li: np.ndarray, ri: np.ndarray) -> VectorBatch:
    """Materialize joined rows; index -1 produces NULL-padded sides."""
    vectors: list[ColumnVector] = []
    for v in left.vectors:
        vectors.append(_take_padded(v, li))
    for v in right.vectors:
        vectors.append(_take_padded(v, ri))
    return VectorBatch(out_schema, vectors)


def _take_padded(vector: ColumnVector, indices: np.ndarray) -> ColumnVector:
    if len(indices) == 0:
        return ColumnVector(vector.dtype,
                            np.empty(0, dtype=vector.data.dtype),
                            np.empty(0, dtype=bool))
    safe = np.where(indices < 0, 0, indices)
    data = vector.data[safe]
    nulls = vector.nulls[safe] | (indices < 0)
    if len(vector.data) == 0:
        # all padding
        data = np.zeros(len(indices), dtype=vector.data.dtype) \
            if vector.data.dtype != np.dtype(object) else _empty_obj(
                len(indices))
        nulls = np.ones(len(indices), dtype=bool)
    return ColumnVector(vector.dtype, data, nulls)


def _empty_obj(n: int) -> np.ndarray:
    out = np.empty(n, dtype=object)
    out[:] = ""
    return out


# --------------------------------------------------------------------------- #
# set operations

def _exec_union(node: rel.Union, ctx: ExecutionContext) -> VectorBatch:
    batches = [execute(child, ctx) for child in node.rels]
    return VectorBatch.concat(node.schema, [
        b.with_schema(node.schema) for b in batches])


def _exec_setop(node: rel.SetOp, ctx: ExecutionContext) -> VectorBatch:
    left = execute(node.left, ctx)
    right = execute(node.right, ctx)
    right_rows = set(right.to_rows())
    left_rows = left.to_rows()
    if node.kind == "intersect":
        out, seen = [], set()
        for row in left_rows:
            if row in right_rows and (node.all or row not in seen):
                out.append(row)
                seen.add(row)
    elif node.kind == "except":
        out, seen = [], set()
        for row in left_rows:
            if row not in right_rows and (node.all or row not in seen):
                out.append(row)
                seen.add(row)
    else:
        raise ExecutionError(f"unknown set op {node.kind}")
    return VectorBatch.from_rows(node.schema, out)


# --------------------------------------------------------------------------- #
# window functions

def _exec_window(node: rel.Window, ctx: ExecutionContext) -> VectorBatch:
    child = execute(node.input, ctx)
    n = child.num_rows
    out_vectors = list(child.vectors)
    for call in node.calls:
        out_vectors.append(_window_column(call, child, n))
    return VectorBatch(node.schema, out_vectors)


def _partition_rows(child: VectorBatch,
                    partition_keys) -> list[list[int]]:
    """Row indices of each window partition (ascending within one).

    Factorized: combined key codes + one stable argsort + np.split,
    instead of a per-row dict of tuples.  The per-row fallback only
    runs for unfactorizable (mixed-type object) key columns.  Partition
    *iteration* order differs between the two paths, which is
    immaterial — window results are written back per absolute row
    index.
    """
    n = child.num_rows
    if not partition_keys:
        return [list(range(n))]
    factorized = _factorize_keys(child, tuple(partition_keys))
    if factorized is not None:
        codes, g, _ = factorized
        if g <= 1:
            return [list(range(n))] if n else []
        order = np.argsort(codes, kind="stable")
        cuts = np.flatnonzero(np.diff(codes[order])) + 1
        return [seg.tolist() for seg in np.split(order, cuts)]
    partitions: dict[tuple, list[int]] = {}
    for i in range(n):
        key = tuple(
            None if child.vectors[k].nulls[i]
            else _plain(child.vectors[k].data[i])
            for k in partition_keys)
        partitions.setdefault(key, []).append(i)
    return list(partitions.values())


def _window_column(call: rel.WindowCall, child: VectorBatch,
                   n: int) -> ColumnVector:
    partitions = _partition_rows(child, call.partition_keys)
    np_dtype = call.dtype.numpy_dtype
    data = (np.zeros(n, dtype=np_dtype) if np_dtype != np.dtype(object)
            else _empty_obj(n))
    nulls = np.zeros(n, dtype=bool)

    for rows in partitions:
        ordered = rows
        if call.order_keys:
            sub = child.take(np.asarray(rows, dtype=np.int64))
            order = sort_indices(sub, call.order_keys)
            ordered = [rows[j] for j in order]
        if call.func == "row_number":
            for rank, idx in enumerate(ordered, 1):
                data[idx] = rank
        elif call.func in ("rank", "dense_rank"):
            _rank_partition(call, child, ordered, data)
        else:
            _agg_partition(call, child, ordered, data, nulls)
    return ColumnVector(call.dtype, data, nulls)


def _rank_partition(call, child, ordered, data) -> None:
    def order_tuple(i: int):
        return tuple(
            (1,) if child.vectors[k.index].nulls[i]
            else (0, _plain(child.vectors[k.index].data[i]))
            for k in call.order_keys)

    prev = None
    rank = 0
    dense = 0
    for pos, idx in enumerate(ordered, 1):
        current = order_tuple(idx)
        if current != prev:
            rank = pos
            dense += 1
            prev = current
        data[idx] = rank if call.func == "rank" else dense


def _agg_partition(call, child, ordered, data, nulls) -> None:
    """Windowed aggregates: running when ORDER BY present, else whole."""
    column = None if call.arg is None else child.vectors[call.arg]
    if not call.order_keys:
        values = []
        if column is None:
            total_count = len(ordered)
        else:
            values = [_plain(column.data[i]) for i in ordered
                      if not column.nulls[i]]
            total_count = len(values)
        result, is_null = _window_agg_value(call.func, values, total_count)
        for idx in ordered:
            data[idx] = result if not is_null else data[idx]
            nulls[idx] = is_null
        return
    running: list = []
    count = 0
    for idx in ordered:
        if column is None:
            count += 1
        elif not column.nulls[idx]:
            running.append(_plain(column.data[idx]))
            count += 1
        result, is_null = _window_agg_value(call.func, running, count)
        if not is_null:
            data[idx] = result
        nulls[idx] = is_null


def _window_agg_value(func: str, values: list, count: int):
    if func == "count":
        return count, False
    if not values:
        return 0, True
    if func == "sum":
        return sum(values), False
    if func == "avg":
        return sum(values) / len(values), False
    if func == "min":
        return min(values), False
    if func == "max":
        return max(values), False
    raise ExecutionError(f"unsupported window aggregate {func}")


_DISPATCH = {
    rel.TableScan: _exec_scan,
    rel.Values: _exec_values,
    rel.Filter: _exec_filter,
    rel.Project: _exec_project,
    rel.Limit: _exec_limit,
    rel.Sort: _exec_sort,
    rel.Aggregate: _exec_aggregate,
    rel.Join: _exec_join,
    rel.Union: _exec_union,
    rel.SetOp: _exec_setop,
    rel.Window: _exec_window,
}
