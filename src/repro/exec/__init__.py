"""Physical planning and vectorized execution."""
