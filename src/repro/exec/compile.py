"""Expression kernel compiler: lower a Rex tree once, run it per batch.

The interpreter in :mod:`repro.exec.expr_eval` re-walks the expression
tree for every batch — isinstance checks, dict dispatch, per-row Python
loops for string functions.  That is fine for a reference
implementation and fatal for a hot path ([39] credits batch-at-a-time
kernels for Hive's vectorized runtime wins).  This module lowers a
:class:`~repro.plan.rexnodes.RexNode` **once** into a chain of fused
closures:

* dispatch happens at *compile* time — the produced kernel is a plain
  Python closure calling straight into numpy, no AST in sight;
* dtype decisions (comparison alignment, cast direction, branch
  coercions) are resolved from the static Rex types at compile time;
* literal-only, context-independent subtrees are constant-folded into
  a single broadcast;
* the per-row loops of the interpreter (UPPER/LOWER/LENGTH/TRIM/
  SUBSTR/CONCAT, string CAST) become object-array ufuncs
  (``np.frompyfunc``) or direct array ops;
* ``RAND``/``CURRENT_DATE``/``CURRENT_TIMESTAMP`` read the
  :class:`~repro.exec.expr_eval.EvalContext` exactly like the
  interpreter, so compiled plans stay deterministic under replay.

Compiled kernels are memoized in a :class:`KernelCache` keyed by the
expression's *typed digest* (digest + input-ref types — two plans may
share a digest over differently-typed inputs).  The serving layer
hangs one cache off every compiled-plan-cache entry, so repeated
fingerprints pay compilation once.

Semantics contract: a kernel must be *bit-identical* to the
interpreter on every input (values and null masks; data under null
positions is unspecified in both).  tests/test_expr_compile.py pins
this with randomized parity runs.
"""

from __future__ import annotations

import itertools
import operator as _op

import numpy as np

from ..common import sync
from ..common.rows import Column, Schema
from ..common.types import (BOOLEAN, DATE, DOUBLE, INT, TIMESTAMP,
                            DataType)
from ..common.vector import ColumnVector, VectorBatch
from ..errors import ExecutionError
from ..plan.rexnodes import RexCall, RexInputRef, RexLiteral, RexNode
from . import expr_eval
from .expr_eval import (CONTEXT_DEPENDENT_OPS, EvalContext, _broadcast,
                        _like_to_regex, add_months_array, extract_unit,
                        rand_base, rand_vector)

#: default LRU bound of a KernelCache (per plan-cache entry / per query)
DEFAULT_KERNEL_CACHE_CAPACITY = 256

_OBJECT = np.dtype(object)

# shared object-array ufuncs (allocated once, reused by every kernel)
_UF_STR = np.frompyfunc(str, 1, 1)
_UF_UPPER = np.frompyfunc(lambda s: str(s).upper(), 1, 1)
_UF_LOWER = np.frompyfunc(lambda s: str(s).lower(), 1, 1)
_UF_TRIM = np.frompyfunc(lambda s: str(s).strip(), 1, 1)
_UF_LEN = np.frompyfunc(lambda s: len(str(s)), 1, 1)


# --------------------------------------------------------------------------- #
# public entry points

def compile_expr(expr: RexNode):
    """Lower ``expr`` to a kernel: ``fn(batch, ctx) -> ColumnVector``."""
    return _compile(expr)


def compile_predicate(expr: RexNode):
    """Lower ``expr`` to a mask kernel: ``fn(batch, ctx) -> bool array``
    (NULL treated as false, like ``evaluate_predicate``)."""
    kernel = _compile(expr)

    def mask_kernel(batch, ctx) -> np.ndarray:
        result = kernel(batch, ctx)
        mask = result.data.astype(bool, copy=True)
        mask[result.nulls] = False
        return mask
    return mask_kernel


def typed_digest(expr: RexNode) -> str:
    """Cache key: the digest is blind to input-ref *types*, so fold
    them in — two plans over differently-typed inputs must not share a
    kernel."""
    refs: dict[int, str] = {}
    _collect_ref_types(expr, refs)
    sig = ",".join(f"${i}:{refs[i]}" for i in sorted(refs))
    return f"{expr.digest}|{sig}"


def _collect_ref_types(expr: RexNode, acc: dict) -> None:
    if isinstance(expr, RexInputRef):
        acc[expr.index] = str(expr.dtype)
    elif isinstance(expr, RexCall):
        for operand in expr.operands:
            _collect_ref_types(operand, acc)


class KernelCache:
    """Thread-safe LRU of compiled kernels, keyed by typed digest.

    One instance hangs off each compiled-plan-cache entry (so the
    serving layer amortizes compilation across repeated fingerprints)
    and the runtime creates an ephemeral one per ad-hoc query (so a
    multi-batch scan compiles each expression once, not per batch).
    """

    def __init__(self, capacity: int = DEFAULT_KERNEL_CACHE_CAPACITY):
        self.capacity = capacity
        self.compiled = 0
        self.hits = 0
        self._lock = sync.new_lock('KernelCache._lock')
        self._kernels: dict[str, object] = {}
        self._masks: dict[str, object] = {}
        self._ticks: dict[str, int] = {}
        self._clock = itertools.count(1)

    def kernel(self, expr: RexNode):
        return self._get(False, expr, compile_expr)

    def predicate(self, expr: RexNode):
        return self._get(True, expr, compile_predicate)

    def _get(self, as_mask: bool, expr: RexNode, compiler):
        key = typed_digest(expr)
        with self._lock:
            table = self._masks if as_mask else self._kernels
            fn = table.get(key)
            if fn is not None:
                self.hits += 1
                self._ticks[key] = next(self._clock)
                return fn
        # compile outside the lock — pure and idempotent, so a
        # concurrent duplicate compile is wasted work, never a race
        fn = compiler(expr)
        with self._lock:
            table = self._masks if as_mask else self._kernels
            table[key] = fn
            self._ticks[key] = next(self._clock)
            self.compiled += 1
            while (len(self._kernels) + len(self._masks)
                   > self.capacity):
                lru = min(self._ticks, key=self._ticks.get)
                self._kernels.pop(lru, None)
                self._masks.pop(lru, None)
                del self._ticks[lru]
        return fn

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels) + len(self._masks)


# --------------------------------------------------------------------------- #
# compilation core

_DUMMY_SCHEMA = Schema([Column("__d__", INT)])


def _compile(expr: RexNode):
    if isinstance(expr, RexInputRef):
        index = expr.index

        def ref_kernel(batch, ctx):
            return batch.vectors[index]
        return ref_kernel

    if isinstance(expr, RexLiteral):
        return _literal_kernel(expr.value, expr.dtype)

    if not isinstance(expr, RexCall):
        raise ExecutionError(f"cannot compile {expr!r}")

    folded = _try_fold(expr)
    if folded is not None:
        return folded

    compiler = _COMPILERS.get(expr.op)
    if compiler is None:
        return _interpret_kernel(expr)
    kids = [_compile(o) for o in expr.operands]
    return compiler(expr, kids)


def _literal_kernel(value, dtype: DataType):
    def kernel(batch, ctx):
        return _broadcast(value, dtype, batch.num_rows)
    return kernel


def _interpret_kernel(expr: RexCall):
    """Fallback for rare ops: defer the subtree to the interpreter."""
    def kernel(batch, ctx):
        return expr_eval.evaluate(expr, batch, ctx)
    return kernel


def _has_context_op(expr: RexNode) -> bool:
    if isinstance(expr, RexCall):
        if expr.op in CONTEXT_DEPENDENT_OPS:
            return True
        return any(_has_context_op(o) for o in expr.operands)
    return False


def _try_fold(expr: RexCall):
    """Constant-fold a literal-only, context-independent subtree.

    Deeper than the optimizer's literal folding: any subtree with no
    input refs folds, not just single calls over literal operands.
    RAND/CURRENT_* never fold — their value belongs to the statement,
    not the plan.
    """
    if expr.input_refs() or _has_context_op(expr):
        return None
    try:
        batch = VectorBatch.from_rows(_DUMMY_SCHEMA, [(0,)])
        result = expr_eval.evaluate(expr, batch)
        return _literal_kernel(result.value(0), expr.dtype)
    except Exception:
        return None


# --------------------------------------------------------------------------- #
# arithmetic / comparison / boolean

_ARITH_FNS = {"+": _op.add, "-": _op.sub, "*": _op.mul}


def _compile_arith(expr: RexCall, kids):
    op = expr.op
    out_dtype = expr.dtype.numpy_dtype
    a_k, b_k = kids
    if op in _ARITH_FNS:
        fn = _ARITH_FNS[op]

        def kernel(batch, ctx):
            left, right = a_k(batch, ctx), b_k(batch, ctx)
            with np.errstate(all="ignore"):
                data = fn(left.data, right.data)
            return ColumnVector(expr.dtype,
                                data.astype(out_dtype, copy=False),
                                left.nulls | right.nulls)
        return kernel
    if op == "/":
        def kernel(batch, ctx):
            left, right = a_k(batch, ctx), b_k(batch, ctx)
            a = left.data.astype(np.float64)
            b = right.data.astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                data = np.divide(a, b)
            nulls = left.nulls | right.nulls | (b == 0)
            return ColumnVector(expr.dtype,
                                data.astype(out_dtype, copy=False),
                                nulls)
        return kernel
    # % / MOD — Java sign-of-dividend semantics (np.fmod)
    def kernel(batch, ctx):
        left, right = a_k(batch, ctx), b_k(batch, ctx)
        b = right.data
        safe_b = np.where(b == 0, 1, b)
        with np.errstate(all="ignore"):
            data = np.fmod(left.data, safe_b)
        nulls = left.nulls | right.nulls | (b == 0)
        return ColumnVector(expr.dtype,
                            data.astype(out_dtype, copy=False), nulls)
    return kernel


def _compile_negate(expr: RexCall, kids):
    a_k, = kids

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        return ColumnVector(expr.dtype, -operand.data,
                            operand.nulls.copy())
    return kernel


_COMPARE_FNS = {"=": _op.eq, "<>": _op.ne, "<": _op.lt, "<=": _op.le,
                ">": _op.gt, ">=": _op.ge}


def _compile_compare(expr: RexCall, kids):
    fn = _COMPARE_FNS[expr.op]
    a_k, b_k = kids
    lt = expr.operands[0].dtype.numpy_dtype
    rt = expr.operands[1].dtype.numpy_dtype
    # alignment decided at compile time from the static types
    if lt == _OBJECT or rt == _OBJECT:
        def align(a, b):
            return a.astype(object), b.astype(object)
    elif lt != rt:
        common = np.result_type(lt, rt)

        def align(a, b):
            return a.astype(common), b.astype(common)
    else:
        def align(a, b):
            return a, b

    def kernel(batch, ctx):
        left, right = a_k(batch, ctx), b_k(batch, ctx)
        a, b = align(left.data, right.data)
        data = fn(a, b)
        return ColumnVector(BOOLEAN, np.asarray(data, dtype=bool),
                            left.nulls | right.nulls)
    return kernel


def _compile_and(expr: RexCall, kids):
    a_k, b_k = kids

    def kernel(batch, ctx):
        left, right = a_k(batch, ctx), b_k(batch, ctx)
        lv = left.data.astype(bool) & ~left.nulls
        rv = right.data.astype(bool) & ~right.nulls
        lf = ~left.data.astype(bool) & ~left.nulls
        rf = ~right.data.astype(bool) & ~right.nulls
        data = lv & rv
        return ColumnVector(BOOLEAN, data, ~(data | lf | rf))
    return kernel


def _compile_or(expr: RexCall, kids):
    a_k, b_k = kids

    def kernel(batch, ctx):
        left, right = a_k(batch, ctx), b_k(batch, ctx)
        lv = left.data.astype(bool) & ~left.nulls
        rv = right.data.astype(bool) & ~right.nulls
        data = lv | rv
        return ColumnVector(BOOLEAN, data,
                            ~data & (left.nulls | right.nulls))
    return kernel


def _compile_not(expr: RexCall, kids):
    a_k, = kids

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        return ColumnVector(BOOLEAN, ~operand.data.astype(bool),
                            operand.nulls.copy())
    return kernel


def _compile_is_null(expr: RexCall, kids):
    a_k, = kids
    negate = expr.op == "IS_NOT_NULL"

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        data = ~operand.nulls if negate else operand.nulls.copy()
        return ColumnVector(BOOLEAN, data,
                            np.zeros(len(operand), dtype=bool))
    return kernel


# --------------------------------------------------------------------------- #
# membership / pattern

def _compile_in(expr: RexCall, kids):
    operand_dtype = expr.operands[0].dtype
    values = []
    for v in expr.operands[1:]:
        if not isinstance(v, RexLiteral):
            return _interpret_kernel(expr)
        values.append(operand_dtype.to_storage(v.value))
    a_k = kids[0]
    if operand_dtype.numpy_dtype == _OBJECT:
        value_set = set(values)

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            data = np.fromiter(
                (x in value_set for x in operand.data),
                dtype=bool, count=len(operand))
            return ColumnVector(BOOLEAN, data, operand.nulls.copy())
        return kernel
    value_array = np.array(values)

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        data = np.isin(operand.data, value_array)
        return ColumnVector(BOOLEAN, data, operand.nulls.copy())
    return kernel


def _compile_like(expr: RexCall, kids):
    pattern = expr.operands[1]
    if not isinstance(pattern, RexLiteral):
        return _interpret_kernel(expr)
    regex = _like_to_regex(str(pattern.value))
    matcher = np.frompyfunc(lambda x: bool(regex.match(str(x))), 1, 1)
    a_k = kids[0]

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        data = matcher(operand.data).astype(bool)
        return ColumnVector(BOOLEAN, data, operand.nulls.copy())
    return kernel


# --------------------------------------------------------------------------- #
# conditionals — branch coercion plans are chosen at compile time

def _cast_plan(src: DataType, target: DataType):
    """Compile-time ``_cast_array``: vector -> data array of target's
    numpy representation."""
    if src.numpy_dtype == target.numpy_dtype:
        return lambda v: v.data
    if target.numpy_dtype == _OBJECT:
        return lambda v: _UF_STR(v.data)
    np_target = target.numpy_dtype
    return lambda v: v.data.astype(np_target)


def _compile_case(expr: RexCall, kids):
    target = expr.dtype
    operands = expr.operands
    pairs, default = operands[:-1], operands[-1]
    branches = []         # (mask kernel, value kernel, cast plan)
    for i in range(0, len(pairs), 2):
        branches.append((compile_predicate(pairs[i]), kids[i + 1],
                         _cast_plan(pairs[i + 1].dtype, target)))
    default_kernel = kids[-1]
    default_plan = _cast_plan(default.dtype, target)

    def kernel(batch, ctx):
        n = batch.num_rows
        result = _broadcast(None, target, n)
        data = result.data.copy()
        nulls = np.ones(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        for mask_k, value_k, plan in branches:
            cond = mask_k(batch, ctx)
            take = cond & ~decided
            if take.any():
                value = value_k(batch, ctx)
                value_data = plan(value)
                data[take] = value_data[take]
                nulls[take] = value.nulls[take]
            decided |= cond
        rest = ~decided
        if rest.any():
            value = default_kernel(batch, ctx)
            value_data = default_plan(value)
            data[rest] = value_data[rest]
            nulls[rest] = value.nulls[rest]
        return ColumnVector(target, data, nulls)
    return kernel


def _compile_if(expr: RexCall, kids):
    target = expr.dtype
    cond_k = compile_predicate(expr.operands[0])
    then_k, else_k = kids[1], kids[2]
    then_plan = _cast_plan(expr.operands[1].dtype, target)
    else_plan = _cast_plan(expr.operands[2].dtype, target)

    def kernel(batch, ctx):
        cond = cond_k(batch, ctx)
        then_v = then_k(batch, ctx)
        else_v = else_k(batch, ctx)
        data = np.where(cond, then_plan(then_v), else_plan(else_v))
        nulls = np.where(cond, then_v.nulls, else_v.nulls)
        return ColumnVector(target, data, nulls)
    return kernel


def _compile_coalesce(expr: RexCall, kids):
    target = expr.dtype
    plans = [_cast_plan(o.dtype, target) for o in expr.operands]
    np_dtype = target.numpy_dtype
    is_object = np_dtype == _OBJECT

    def kernel(batch, ctx):
        n = batch.num_rows
        if is_object:
            out = np.empty(n, dtype=object)
            out[:] = ""
        else:
            out = np.zeros(n, dtype=np_dtype)
        nulls = np.ones(n, dtype=bool)
        for kid, plan in zip(kids, plans):
            arg = kid(batch, ctx)
            take = nulls & ~arg.nulls
            if take.any():
                out[take] = plan(arg)[take]
                nulls[take] = False
        return ColumnVector(target, out, nulls)
    return kernel


def _compile_nullif(expr: RexCall, kids):
    a_k, b_k = kids
    plan = _cast_plan(expr.operands[0].dtype, expr.dtype)

    def kernel(batch, ctx):
        a, b = a_k(batch, ctx), b_k(batch, ctx)
        equal = (a.data == b.data) & ~a.nulls & ~b.nulls
        return ColumnVector(expr.dtype, plan(a), a.nulls | equal)
    return kernel


# --------------------------------------------------------------------------- #
# cast — direction resolved at compile time, string paths vectorized

def _compile_cast(expr: RexCall, kids):
    src = expr.operands[0].dtype
    target = expr.dtype
    a_k, = kids
    src_family = src._family()
    dst_family = target._family()
    if src_family == dst_family:
        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            return ColumnVector(target, operand.data,
                                operand.nulls.copy())
        return kernel
    if dst_family == "STRING":
        from_storage = src.from_storage

        def render(v):
            # garbage under null positions may not decode (e.g. a wild
            # TIMESTAMP millis value); those slots are overwritten below
            try:
                return str(from_storage(v))
            except (ValueError, OverflowError, OSError):
                return ""
        to_str = np.frompyfunc(render, 1, 1)

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            nulls = operand.nulls.copy()
            out = to_str(operand.data)
            out[nulls] = ""
            return ColumnVector(target, out, nulls)
        return kernel
    if src_family == "STRING":
        to_storage = target.to_storage

        def convert(v):
            try:
                return to_storage(v)
            except (ValueError, TypeError):
                return None
        conv = np.frompyfunc(convert, 1, 1)
        is_none = np.frompyfunc(lambda x: x is None, 1, 1)
        np_target = target.numpy_dtype

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            raw = conv(operand.data)
            failed = is_none(raw).astype(bool)
            raw[failed] = 0
            return ColumnVector(target, raw.astype(np_target),
                                operand.nulls | failed)
        return kernel
    np_target = target.numpy_dtype

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        return ColumnVector(target, operand.data.astype(np_target),
                            operand.nulls.copy())
    return kernel


# --------------------------------------------------------------------------- #
# temporal

def _compile_extract(expr: RexCall, kids):
    unit = expr.op.split("_", 1)[1]
    a_k, = kids

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        return ColumnVector(INT, extract_unit(unit, operand),
                            operand.nulls.copy())
    return kernel


def _compile_extract_alias(unit: str):
    def compiler(expr: RexCall, kids):
        a_k, = kids

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            return ColumnVector(INT, extract_unit(unit, operand),
                                operand.nulls.copy())
        return kernel
    return compiler


def _compile_date_add_days(expr: RexCall, kids):
    a_k, b_k = kids

    def kernel(batch, ctx):
        operand, amount = a_k(batch, ctx), b_k(batch, ctx)
        data = operand.data + amount.data.astype(operand.data.dtype)
        return ColumnVector(operand.dtype, data,
                            operand.nulls | amount.nulls)
    return kernel


def _compile_date_add_months(expr: RexCall, kids):
    a_k, b_k = kids

    def kernel(batch, ctx):
        operand, amount = a_k(batch, ctx), b_k(batch, ctx)
        return ColumnVector(operand.dtype,
                            add_months_array(operand, amount),
                            operand.nulls | amount.nulls)
    return kernel


# --------------------------------------------------------------------------- #
# context-dependent

def _compile_rand(expr: RexCall, kids):
    # a literal seed is hoisted at compile time; the row offset and the
    # per-query salt stay runtime inputs (EvalContext)
    seed = expr.operands[0] if expr.operands else None
    fixed_base = (int(seed.value)
                  if isinstance(seed, RexLiteral)
                  and seed.value is not None else None)

    def kernel(batch, ctx):
        base = fixed_base if fixed_base is not None \
            else rand_base(expr, ctx)
        data = rand_vector(batch.num_rows, base, ctx.row_offset)
        return ColumnVector(DOUBLE, data,
                            np.zeros(batch.num_rows, dtype=bool))
    return kernel


def _compile_current_date(expr: RexCall, kids):
    def kernel(batch, ctx):
        return _broadcast(ctx.statement_date(), DATE, batch.num_rows)
    return kernel


def _compile_current_timestamp(expr: RexCall, kids):
    def kernel(batch, ctx):
        return _broadcast(ctx.statement_timestamp(), TIMESTAMP,
                          batch.num_rows)
    return kernel


# --------------------------------------------------------------------------- #
# string / scalar functions — the interpreter's per-row loops, fused

def _compile_string_ufunc(ufunc):
    def compiler(expr: RexCall, kids):
        a_k, = kids

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            nulls = operand.nulls.copy()
            out = ufunc(operand.data)
            out[nulls] = ""
            return ColumnVector(expr.dtype, out, nulls)
        return kernel
    return compiler


def _compile_length(expr: RexCall, kids):
    a_k, = kids
    np_dtype = expr.dtype.numpy_dtype

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        out = _UF_LEN(operand.data).astype(np_dtype)
        out[operand.nulls] = 0
        return ColumnVector(expr.dtype, out, operand.nulls.copy())
    return kernel


def _compile_substr(expr: RexCall, kids):
    for o in expr.operands[1:]:
        if not isinstance(o, RexLiteral):
            return _interpret_kernel(expr)
    start = int(expr.operands[1].value) - 1
    if len(expr.operands) > 2:
        stop = start + int(expr.operands[2].value)
        slicer = np.frompyfunc(lambda s: str(s)[start:stop], 1, 1)
    else:
        slicer = np.frompyfunc(lambda s: str(s)[start:], 1, 1)
    a_k = kids[0]

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        nulls = operand.nulls.copy()
        out = slicer(operand.data)
        out[nulls] = ""
        return ColumnVector(expr.dtype, out, nulls)
    return kernel


def _compile_concat(expr: RexCall, kids):
    # per-argument string conversion chosen at compile time: STRING
    # operands pass through, everything else goes through str() once
    converters = [(lambda v: v.data)
                  if o.dtype.numpy_dtype == _OBJECT
                  else (lambda v: _UF_STR(v.data))
                  for o in expr.operands]

    def kernel(batch, ctx):
        args = [kid(batch, ctx) for kid in kids]
        nulls = args[0].nulls.copy()
        for a in args[1:]:
            nulls |= a.nulls
        pieces = [conv(a) for conv, a in zip(converters, args)]
        out = pieces[0].astype(object, copy=True)
        for piece in pieces[1:]:
            out = out + piece          # elementwise str concat
        out[nulls] = ""
        return ColumnVector(expr.dtype, out, nulls)
    return kernel


def _compile_unary_math(np_fn, as_float: bool):
    def compiler(expr: RexCall, kids):
        a_k, = kids
        out_dtype = expr.dtype.numpy_dtype

        def kernel(batch, ctx):
            operand = a_k(batch, ctx)
            data = operand.data
            if as_float:
                data = data.astype(np.float64)
            with np.errstate(all="ignore"):
                data = np_fn(data)
            return ColumnVector(expr.dtype,
                                data.astype(out_dtype, copy=False),
                                operand.nulls.copy())
        return kernel
    return compiler


def _compile_power(expr: RexCall, kids):
    # numpy's *scalar* power path (what the interpreter hits row by
    # row) and its array ufunc round the last bit differently for some
    # inputs (3.85**2 → ...02 vs ...00) — keep the scalar computation,
    # batched through frompyfunc, so compiled output stays bit-equal
    a_k, b_k = kids
    out_dtype = expr.dtype.numpy_dtype
    pow_uf = np.frompyfunc(
        lambda x, y: float(np.power(x, y)), 2, 1)

    def kernel(batch, ctx):
        a = a_k(batch, ctx)
        b = b_k(batch, ctx)
        with np.errstate(all="ignore"):
            data = pow_uf(a.data, b.data).astype(out_dtype)
        return ColumnVector(expr.dtype, data, a.nulls | b.nulls)
    return kernel


def _compile_round(expr: RexCall, kids):
    # python round() is decimal-correct where np.round's
    # scale-round-unscale can be off by one ulp for decimals > 0 —
    # keep the exact semantics, fused into one ufunc pass
    if len(expr.operands) > 1:
        if not isinstance(expr.operands[1], RexLiteral):
            return _interpret_kernel(expr)
        decimals = int(expr.operands[1].value)
    else:
        decimals = 0
    rounder = np.frompyfunc(lambda x: round(float(x), decimals), 1, 1)
    a_k = kids[0]
    out_dtype = expr.dtype.numpy_dtype

    def kernel(batch, ctx):
        operand = a_k(batch, ctx)
        data = rounder(operand.data).astype(out_dtype)
        return ColumnVector(expr.dtype, data, operand.nulls.copy())
    return kernel


def _compile_minmax(reduce_fn):
    def compiler(expr: RexCall, kids):
        out_np = expr.dtype.numpy_dtype
        is_object = out_np == _OBJECT

        def kernel(batch, ctx):
            args = [kid(batch, ctx) for kid in kids]
            nulls = args[0].nulls.copy()
            for a in args[1:]:
                nulls |= a.nulls
            with np.errstate(all="ignore"):
                data = reduce_fn([a.data for a in args])
            if is_object:
                data = data.astype(object, copy=True)
                data[nulls] = ""
            else:
                data = data.astype(out_np, copy=False)
            return ColumnVector(expr.dtype, data, nulls)
        return kernel
    return compiler


_COMPILERS = {
    "+": _compile_arith, "-": _compile_arith, "*": _compile_arith,
    "/": _compile_arith, "%": _compile_arith, "MOD": _compile_arith,
    "NEGATE": _compile_negate,
    "=": _compile_compare, "<>": _compile_compare,
    "<": _compile_compare, "<=": _compile_compare,
    ">": _compile_compare, ">=": _compile_compare,
    "AND": _compile_and, "OR": _compile_or, "NOT": _compile_not,
    "IS_NULL": _compile_is_null, "IS_NOT_NULL": _compile_is_null,
    "IN": _compile_in, "LIKE": _compile_like,
    "CASE": _compile_case, "CAST": _compile_cast,
    "EXTRACT_YEAR": _compile_extract, "EXTRACT_MONTH": _compile_extract,
    "EXTRACT_DAY": _compile_extract,
    "EXTRACT_QUARTER": _compile_extract,
    "EXTRACT_WEEK": _compile_extract, "EXTRACT_HOUR": _compile_extract,
    "EXTRACT_MINUTE": _compile_extract,
    "EXTRACT_SECOND": _compile_extract,
    "DATE_ADD_DAYS": _compile_date_add_days,
    "DATE_ADD_MONTHS": _compile_date_add_months,
    "CONCAT": _compile_concat, "COALESCE": _compile_coalesce,
    "IF": _compile_if, "NULLIF": _compile_nullif,
    "YEAR": _compile_extract_alias("YEAR"),
    "MONTH": _compile_extract_alias("MONTH"),
    "DAY": _compile_extract_alias("DAY"),
    "QUARTER": _compile_extract_alias("QUARTER"),
    "UPPER": _compile_string_ufunc(_UF_UPPER),
    "LOWER": _compile_string_ufunc(_UF_LOWER),
    "TRIM": _compile_string_ufunc(_UF_TRIM),
    "LENGTH": _compile_length,
    "SUBSTR": _compile_substr, "SUBSTRING": _compile_substr,
    "ABS": _compile_unary_math(np.abs, as_float=False),
    "FLOOR": _compile_unary_math(np.floor, as_float=False),
    "CEIL": _compile_unary_math(np.ceil, as_float=False),
    "SQRT": _compile_unary_math(np.sqrt, as_float=True),
    "LN": _compile_unary_math(np.log, as_float=True),
    "EXP": _compile_unary_math(np.exp, as_float=True),
    "POWER": _compile_power,
    "ROUND": _compile_round,
    "GREATEST": _compile_minmax(np.maximum.reduce),
    "LEAST": _compile_minmax(np.minimum.reduce),
    "RAND": _compile_rand,
    "CURRENT_DATE": _compile_current_date,
    "CURRENT_TIMESTAMP": _compile_current_timestamp,
    # HASH intentionally absent: python hash() of a scalar tuple has no
    # vectorized equivalent — it falls back to the interpreter
}
