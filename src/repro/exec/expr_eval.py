"""Vectorized Rex evaluation.

Evaluates a :class:`~repro.plan.rexnodes.RexNode` over a
:class:`~repro.common.vector.VectorBatch`, producing a
:class:`~repro.common.vector.ColumnVector`.  Operations are numpy
array-at-a-time — this is the "vectorized operators" half of Hive's
runtime improvements ([39], Section 5); the row-at-a-time fallback used
by the legacy profile lives in the cost model, not here (both profiles
compute identical results; they are *charged* differently).

This module is the reference *interpreter*: it re-walks the expression
tree on every batch.  The hot path uses :mod:`repro.exec.compile`, which
lowers a tree once into a fused closure chain; the parity suite
(tests/test_expr_compile.py) pins compiled kernels to the semantics
defined here.

NULL semantics: three-valued logic for comparisons and AND/OR; nulls
propagate through arithmetic and functions; predicates treat NULL as
false at filter time.

Determinism: expressions never read the wall clock or unseeded process
randomness.  ``CURRENT_DATE``/``CURRENT_TIMESTAMP`` resolve against the
:class:`EvalContext`'s *virtual* statement time (pinned once per
statement from the session clock) and ``RAND`` is a pure function of
(seed-or-query-id, absolute row index), so repeated runs — including
seeded fault replays — are bit-identical.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass

import numpy as np

from ..common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT, STRING,
                            TIMESTAMP, DataType)
from ..common.vector import ColumnVector, VectorBatch
from ..errors import ExecutionError
from ..plan.rexnodes import RexCall, RexInputRef, RexLiteral, RexNode

_EPOCH = datetime.date(1970, 1, 1)
_EPOCH_DT = datetime.datetime(1970, 1, 1)

#: operators whose value depends on the evaluation context rather than
#: the input batch alone — never constant-folded, never compiled to a
#: literal (the optimizer and repro.exec.compile both consult this)
CONTEXT_DEPENDENT_OPS = frozenset({
    "RAND", "CURRENT_DATE", "CURRENT_TIMESTAMP",
})


@dataclass
class EvalContext:
    """Statement-scoped inputs for context-dependent expressions.

    Everything non-deterministic an expression may observe comes from
    here, pinned at statement start on the session's *virtual* clock —
    never the wall clock — so a statement sees one consistent
    ``CURRENT_TIMESTAMP`` and repeated runs reproduce bit-identically.
    """

    #: virtual statement time, seconds since the virtual epoch
    now_s: float = 0.0
    #: query id of the statement being evaluated (salts unseeded RAND)
    query_id: int = 0
    #: absolute row index of the batch's first row (RAND stream offset)
    row_offset: int = 0

    def statement_date(self) -> datetime.date:
        return _EPOCH + datetime.timedelta(days=int(self.now_s // 86400.0))

    def statement_timestamp(self) -> datetime.datetime:
        ms = int(round(self.now_s * 1000.0))
        return _EPOCH_DT + datetime.timedelta(milliseconds=ms)


#: fallback context: the virtual epoch (deterministic, not wall time)
DEFAULT_CONTEXT = EvalContext()


def evaluate(expr: RexNode, batch: VectorBatch,
             ctx: EvalContext | None = None) -> ColumnVector:
    """Evaluate ``expr`` against every row of ``batch``."""
    if ctx is None:
        ctx = DEFAULT_CONTEXT
    if isinstance(expr, RexInputRef):
        return batch.vectors[expr.index]
    if isinstance(expr, RexLiteral):
        return _broadcast(expr.value, expr.dtype, batch.num_rows)
    if isinstance(expr, RexCall):
        return _call(expr, batch, ctx)
    raise ExecutionError(f"cannot evaluate {expr!r}")


def evaluate_predicate(expr: RexNode, batch: VectorBatch,
                       ctx: EvalContext | None = None) -> np.ndarray:
    """Boolean mask with NULL treated as false."""
    result = evaluate(expr, batch, ctx)
    mask = result.data.astype(bool, copy=True)
    mask[result.nulls] = False
    return mask


# --------------------------------------------------------------------------- #

def _broadcast(value, dtype: DataType, n: int) -> ColumnVector:
    storage = dtype.to_storage(value)
    np_dtype = dtype.numpy_dtype
    if value is None:
        data = np.zeros(n, dtype=np_dtype if np_dtype != np.dtype(object)
                        else object)
        if np_dtype == np.dtype(object):
            data[:] = ""
        return ColumnVector(dtype, data, np.ones(n, dtype=bool))
    if np_dtype == np.dtype(object):
        data = np.empty(n, dtype=object)
        data[:] = storage
    else:
        data = np.full(n, storage, dtype=np_dtype)
    return ColumnVector(dtype, data, np.zeros(n, dtype=bool))


def _call(expr: RexCall, batch: VectorBatch,
          ctx: EvalContext) -> ColumnVector:
    op = expr.op
    handler = _HANDLERS.get(op)
    if handler is not None:
        return handler(expr, batch, ctx)
    raise ExecutionError(f"no evaluator for operator {op!r}")


# -- arithmetic ---------------------------------------------------------------- #

def _arith(expr: RexCall, batch: VectorBatch,
           ctx: EvalContext) -> ColumnVector:
    left = evaluate(expr.operands[0], batch, ctx)
    right = evaluate(expr.operands[1], batch, ctx)
    nulls = left.nulls | right.nulls
    a = left.data.astype(np.float64) if expr.op == "/" else left.data
    b = right.data.astype(np.float64) if expr.op == "/" else right.data
    out_dtype = expr.dtype.numpy_dtype
    with np.errstate(divide="ignore", invalid="ignore"):
        if expr.op == "+":
            data = a + b
        elif expr.op == "-":
            data = a - b
        elif expr.op == "*":
            data = a * b
        elif expr.op == "/":
            data = np.divide(a, b)
            div_zero = (b == 0)
            nulls = nulls | div_zero
        elif expr.op in ("%", "MOD"):
            safe_b = np.where(b == 0, 1, b)
            # Hive follows Java: the result takes the *dividend*'s sign
            # (C fmod), not numpy's floored modulo which follows the
            # divisor — -7 % 3 must be -1, not 2
            data = np.fmod(a, safe_b)
            nulls = nulls | (b == 0)
        else:  # pragma: no cover
            raise ExecutionError(expr.op)
    return ColumnVector(expr.dtype, data.astype(out_dtype, copy=False),
                        nulls)


def _negate(expr: RexCall, batch: VectorBatch,
            ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    return ColumnVector(expr.dtype, -operand.data, operand.nulls.copy())


# -- comparison ---------------------------------------------------------------- #

def _compare(expr: RexCall, batch: VectorBatch,
             ctx: EvalContext) -> ColumnVector:
    left = evaluate(expr.operands[0], batch, ctx)
    right = evaluate(expr.operands[1], batch, ctx)
    nulls = left.nulls | right.nulls
    a, b = _align_for_compare(left, right)
    op = expr.op
    if op == "=":
        data = a == b
    elif op == "<>":
        data = a != b
    elif op == "<":
        data = a < b
    elif op == "<=":
        data = a <= b
    elif op == ">":
        data = a > b
    elif op == ">=":
        data = a >= b
    else:  # pragma: no cover
        raise ExecutionError(op)
    return ColumnVector(BOOLEAN, np.asarray(data, dtype=bool), nulls)


def _align_for_compare(left: ColumnVector, right: ColumnVector):
    """Give both sides comparable numpy representations."""
    a, b = left.data, right.data
    if a.dtype == np.dtype(object) or b.dtype == np.dtype(object):
        return a.astype(object), b.astype(object)
    if a.dtype != b.dtype:
        common = np.result_type(a.dtype, b.dtype)
        return a.astype(common), b.astype(common)
    return a, b


# -- boolean logic (three-valued) --------------------------------------------------- #

def _and(expr: RexCall, batch: VectorBatch,
         ctx: EvalContext) -> ColumnVector:
    left = evaluate(expr.operands[0], batch, ctx)
    right = evaluate(expr.operands[1], batch, ctx)
    lv = left.data.astype(bool) & ~left.nulls
    rv = right.data.astype(bool) & ~right.nulls
    lf = ~left.data.astype(bool) & ~left.nulls
    rf = ~right.data.astype(bool) & ~right.nulls
    data = lv & rv
    # false AND anything = false; otherwise null if either side null
    nulls = ~(data | lf | rf)
    return ColumnVector(BOOLEAN, data, nulls)


def _or(expr: RexCall, batch: VectorBatch,
        ctx: EvalContext) -> ColumnVector:
    left = evaluate(expr.operands[0], batch, ctx)
    right = evaluate(expr.operands[1], batch, ctx)
    lv = left.data.astype(bool) & ~left.nulls
    rv = right.data.astype(bool) & ~right.nulls
    data = lv | rv
    nulls = ~data & (left.nulls | right.nulls)
    return ColumnVector(BOOLEAN, data, nulls)


def _not(expr: RexCall, batch: VectorBatch,
         ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    return ColumnVector(BOOLEAN, ~operand.data.astype(bool),
                        operand.nulls.copy())


def _is_null(expr: RexCall, batch: VectorBatch,
             ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    data = operand.nulls.copy()
    if expr.op == "IS_NOT_NULL":
        data = ~data
    return ColumnVector(BOOLEAN, data,
                        np.zeros(len(operand), dtype=bool))


# -- membership / pattern ------------------------------------------------------------ #

def _in(expr: RexCall, batch: VectorBatch,
        ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    values = []
    for v in expr.operands[1:]:
        if isinstance(v, RexLiteral):
            values.append(operand.dtype.to_storage(v.value))
        else:
            raise ExecutionError("IN list values must be literals")
    if operand.data.dtype == np.dtype(object):
        value_set = set(values)
        data = np.fromiter((x in value_set for x in operand.data),
                           dtype=bool, count=len(operand))
    else:
        data = np.isin(operand.data, np.array(values))
    return ColumnVector(BOOLEAN, data, operand.nulls.copy())


def _like(expr: RexCall, batch: VectorBatch,
          ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    pattern = expr.operands[1]
    if not isinstance(pattern, RexLiteral):
        raise ExecutionError("LIKE pattern must be a literal")
    regex = _like_to_regex(str(pattern.value))
    data = np.fromiter(
        (bool(regex.match(str(x))) for x in operand.data),
        dtype=bool, count=len(operand))
    return ColumnVector(BOOLEAN, data, operand.nulls.copy())


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


# -- conditional ---------------------------------------------------------------- #

def _case(expr: RexCall, batch: VectorBatch,
          ctx: EvalContext) -> ColumnVector:
    n = batch.num_rows
    result = _broadcast(None, expr.dtype, n)
    data = result.data.copy()
    nulls = np.ones(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    operands = expr.operands
    pairs, default = operands[:-1], operands[-1]
    for i in range(0, len(pairs), 2):
        cond = evaluate_predicate(pairs[i], batch, ctx)
        take = cond & ~decided
        if take.any():
            value = evaluate(pairs[i + 1], batch, ctx)
            value_data = _cast_array(value, expr.dtype)
            data[take] = value_data[take]
            nulls[take] = value.nulls[take]
        decided |= cond
    rest = ~decided
    if rest.any():
        value = evaluate(default, batch, ctx)
        value_data = _cast_array(value, expr.dtype)
        data[rest] = value_data[rest]
        nulls[rest] = value.nulls[rest]
    return ColumnVector(expr.dtype, data, nulls)


def _cast_array(vector: ColumnVector, target: DataType) -> np.ndarray:
    if vector.dtype.numpy_dtype == target.numpy_dtype:
        return vector.data
    if target.numpy_dtype == np.dtype(object):
        out = np.empty(len(vector), dtype=object)
        for i, v in enumerate(vector.data):
            out[i] = str(v)
        return out
    return vector.data.astype(target.numpy_dtype)


# -- cast ---------------------------------------------------------------------- #

def _cast(expr: RexCall, batch: VectorBatch,
          ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    target = expr.dtype
    nulls = operand.nulls.copy()
    src_family = operand.dtype._family()
    dst_family = target._family()
    if src_family == dst_family:
        return ColumnVector(target, operand.data, nulls)
    if dst_family == "STRING":
        out = np.empty(len(operand), dtype=object)
        for i in range(len(operand)):
            out[i] = "" if nulls[i] else str(
                operand.dtype.from_storage(operand.data[i]))
        return ColumnVector(target, out, nulls)
    if src_family == "STRING":
        out = np.zeros(len(operand), dtype=target.numpy_dtype)
        for i in range(len(operand)):
            if nulls[i]:
                continue
            try:
                out[i] = target.to_storage(operand.data[i])
            except (ValueError, TypeError):
                nulls[i] = True
        return ColumnVector(target, out, nulls)
    # numeric / temporal conversions
    data = operand.data.astype(target.numpy_dtype)
    return ColumnVector(target, data, nulls)


# -- temporal ---------------------------------------------------------------------- #

def _dates_of(operand: ColumnVector) -> np.ndarray:
    """Convert a DATE (days) or TIMESTAMP (millis) vector to datetime64[D]."""
    if operand.dtype._family() == "TIMESTAMP":
        return operand.data.astype("datetime64[ms]").astype("datetime64[D]")
    return operand.data.astype(np.int64).astype("datetime64[D]")


def iso_week(days: np.ndarray) -> np.ndarray:
    """ISO-8601 week of year, vectorized.

    Weeks run Monday-Sunday and week 1 is the week containing the
    year's first Thursday, so a date's week number is determined by the
    Thursday of its own week — matching ``date.isocalendar()`` (and
    Hive's ``weekofyear``) including the years with a week 53.
    """
    d = days.astype("datetime64[D]").astype(np.int64)  # epoch is a Thu
    dow = (d + 3) % 7                    # 0=Mon .. 6=Sun
    thursday = d + 3 - dow               # the Thursday of d's ISO week
    year_start = (thursday.astype("datetime64[D]")
                  .astype("datetime64[Y]").astype("datetime64[D]")
                  .astype(np.int64))
    return (thursday - year_start) // 7 + 1


def extract_unit(unit: str, operand: ColumnVector) -> np.ndarray:
    """The EXTRACT computation shared by interpreter and compiler."""
    days = _dates_of(operand)
    years = days.astype("datetime64[Y]")
    if unit == "YEAR":
        data = years.astype(int) + 1970
    elif unit == "MONTH":
        months = days.astype("datetime64[M]")
        data = (months - years.astype("datetime64[M]")).astype(int) + 1
    elif unit == "DAY":
        months = days.astype("datetime64[M]")
        data = (days - months.astype("datetime64[D]")).astype(int) + 1
    elif unit == "QUARTER":
        months = days.astype("datetime64[M]")
        month_num = (months - years.astype("datetime64[M]")).astype(int)
        data = month_num // 3 + 1
    elif unit == "WEEK":
        data = iso_week(days)
    elif unit in ("HOUR", "MINUTE", "SECOND"):
        if operand.dtype._family() != "TIMESTAMP":
            data = np.zeros(len(operand), dtype=np.int64)
        else:
            ms = operand.data.astype(np.int64)
            seconds = ms // 1000
            if unit == "HOUR":
                data = (seconds // 3600) % 24
            elif unit == "MINUTE":
                data = (seconds // 60) % 60
            else:
                data = seconds % 60
    else:  # pragma: no cover
        raise ExecutionError(unit)
    return data.astype(np.int64)


def _extract(expr: RexCall, batch: VectorBatch,
             ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    unit = expr.op.split("_", 1)[1]
    return ColumnVector(INT, extract_unit(unit, operand),
                        operand.nulls.copy())


def _date_add_days(expr: RexCall, batch: VectorBatch,
                   ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    amount = evaluate(expr.operands[1], batch, ctx)
    data = operand.data + amount.data.astype(operand.data.dtype)
    return ColumnVector(operand.dtype, data,
                        operand.nulls | amount.nulls)


def add_months_array(operand: ColumnVector,
                     amount: ColumnVector) -> np.ndarray:
    """DATE_ADD_MONTHS payload shared by interpreter and compiler."""
    out = np.zeros(len(operand), dtype=operand.data.dtype)
    for i in range(len(operand)):
        if operand.nulls[i] or amount.nulls[i]:
            continue
        base = _EPOCH + datetime.timedelta(days=int(operand.data[i]))
        total = base.year * 12 + (base.month - 1) + int(amount.data[i])
        year, month = divmod(total, 12)
        day = min(base.day, _days_in_month(year, month + 1))
        out[i] = (datetime.date(year, month + 1, day) - _EPOCH).days
    return out


def _date_add_months(expr: RexCall, batch: VectorBatch,
                     ctx: EvalContext) -> ColumnVector:
    operand = evaluate(expr.operands[0], batch, ctx)
    amount = evaluate(expr.operands[1], batch, ctx)
    return ColumnVector(operand.dtype, add_months_array(operand, amount),
                        operand.nulls | amount.nulls)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1)
            - datetime.date(year, month, 1)).days


# -- context-dependent (virtual clock / seeded randomness) ---------------------- #

def _current_date(expr: RexCall, batch: VectorBatch,
                  ctx: EvalContext) -> ColumnVector:
    return _broadcast(ctx.statement_date(), DATE, batch.num_rows)


def _current_timestamp(expr: RexCall, batch: VectorBatch,
                       ctx: EvalContext) -> ColumnVector:
    return _broadcast(ctx.statement_timestamp(), TIMESTAMP,
                      batch.num_rows)


def rand_vector(n: int, base: int, offset: int) -> np.ndarray:
    """Deterministic uniforms in [0, 1): splitmix64 of (base, row).

    A pure function of its arguments — no process RNG state — so a
    seeded fault replay that re-executes the same query over the same
    rows reproduces bit-identical samples.
    """
    idx = np.arange(offset, offset + n, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (idx + np.uint64(base & 0xFFFFFFFFFFFFFFFF)) \
            * np.uint64(0x9E3779B97F4A7C15)
        z ^= z >> np.uint64(30)
        z *= np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return (z >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def rand_base(expr: RexCall, ctx: EvalContext) -> int:
    """RAND's stream identity: explicit seed, else per-query salt."""
    if expr.operands:
        seed = expr.operands[0]
        if isinstance(seed, RexLiteral) and seed.value is not None:
            return int(seed.value)
    # unseeded: deterministic per query, distinct across queries
    return (int(ctx.query_id) * 0x5851F42D4C957F2D) & 0xFFFFFFFFFFFFFFFF


def _rand(expr: RexCall, batch: VectorBatch,
          ctx: EvalContext) -> ColumnVector:
    data = rand_vector(batch.num_rows, rand_base(expr, ctx),
                       ctx.row_offset)
    return ColumnVector(DOUBLE, data,
                        np.zeros(batch.num_rows, dtype=bool))


# -- string / scalar functions ----------------------------------------------------- #

def _rowwise(fn):
    def evaluator(expr: RexCall, batch: VectorBatch,
                  ctx: EvalContext) -> ColumnVector:
        args = [evaluate(o, batch, ctx) for o in expr.operands]
        n = batch.num_rows
        nulls = np.zeros(n, dtype=bool)
        for a in args:
            nulls |= a.nulls
        np_dtype = expr.dtype.numpy_dtype
        if np_dtype == np.dtype(object):
            out = np.empty(n, dtype=object)
            out[:] = ""
        else:
            out = np.zeros(n, dtype=np_dtype)
        for i in range(n):
            if nulls[i]:
                continue
            out[i] = fn(*[a.data[i] for a in args])
        return ColumnVector(expr.dtype, out, nulls)
    return evaluator


def _concat(expr: RexCall, batch: VectorBatch,
            ctx: EvalContext) -> ColumnVector:
    args = [evaluate(o, batch, ctx) for o in expr.operands]
    n = batch.num_rows
    nulls = np.zeros(n, dtype=bool)
    for a in args:
        nulls |= a.nulls
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = "" if nulls[i] else "".join(str(a.data[i]) for a in args)
    return ColumnVector(STRING, out, nulls)


def _coalesce(expr: RexCall, batch: VectorBatch,
              ctx: EvalContext) -> ColumnVector:
    args = [evaluate(o, batch, ctx) for o in expr.operands]
    n = batch.num_rows
    np_dtype = expr.dtype.numpy_dtype
    if np_dtype == np.dtype(object):
        out = np.empty(n, dtype=object)
        out[:] = ""
    else:
        out = np.zeros(n, dtype=np_dtype)
    nulls = np.ones(n, dtype=bool)
    for arg in args:
        take = nulls & ~arg.nulls
        if take.any():
            out[take] = _cast_array(arg, expr.dtype)[take]
            nulls[take] = False
    return ColumnVector(expr.dtype, out, nulls)


def _if(expr: RexCall, batch: VectorBatch,
        ctx: EvalContext) -> ColumnVector:
    cond = evaluate_predicate(expr.operands[0], batch, ctx)
    then_v = evaluate(expr.operands[1], batch, ctx)
    else_v = evaluate(expr.operands[2], batch, ctx)
    data = np.where(cond, _cast_array(then_v, expr.dtype),
                    _cast_array(else_v, expr.dtype))
    nulls = np.where(cond, then_v.nulls, else_v.nulls)
    return ColumnVector(expr.dtype, data, nulls)


def _nullif(expr: RexCall, batch: VectorBatch,
            ctx: EvalContext) -> ColumnVector:
    a = evaluate(expr.operands[0], batch, ctx)
    b = evaluate(expr.operands[1], batch, ctx)
    equal = (a.data == b.data) & ~a.nulls & ~b.nulls
    # result is typed by the *expression*, not the left operand — the
    # analyzer may have widened it
    return ColumnVector(expr.dtype, _cast_array(a, expr.dtype),
                        a.nulls | equal)


def _substr(*args):
    text = str(args[0])
    start = int(args[1]) - 1
    if len(args) > 2:
        return text[start:start + int(args[2])]
    return text[start:]


def _year_fn(expr: RexCall, batch: VectorBatch,
             ctx: EvalContext) -> ColumnVector:
    return _extract(RexCall("EXTRACT_YEAR", expr.operands, INT),
                    batch, ctx)


def _month_fn(expr: RexCall, batch: VectorBatch,
              ctx: EvalContext) -> ColumnVector:
    return _extract(RexCall("EXTRACT_MONTH", expr.operands, INT),
                    batch, ctx)


def _day_fn(expr: RexCall, batch: VectorBatch,
            ctx: EvalContext) -> ColumnVector:
    return _extract(RexCall("EXTRACT_DAY", expr.operands, INT),
                    batch, ctx)


def _quarter_fn(expr: RexCall, batch: VectorBatch,
                ctx: EvalContext) -> ColumnVector:
    return _extract(RexCall("EXTRACT_QUARTER", expr.operands, INT),
                    batch, ctx)


_HANDLERS = {
    "+": _arith, "-": _arith, "*": _arith, "/": _arith, "%": _arith,
    "MOD": _arith,
    "NEGATE": _negate,
    "=": _compare, "<>": _compare, "<": _compare, "<=": _compare,
    ">": _compare, ">=": _compare,
    "AND": _and, "OR": _or, "NOT": _not,
    "IS_NULL": _is_null, "IS_NOT_NULL": _is_null,
    "IN": _in, "LIKE": _like,
    "CASE": _case, "CAST": _cast,
    "EXTRACT_YEAR": _extract, "EXTRACT_MONTH": _extract,
    "EXTRACT_DAY": _extract, "EXTRACT_QUARTER": _extract,
    "EXTRACT_WEEK": _extract, "EXTRACT_HOUR": _extract,
    "EXTRACT_MINUTE": _extract, "EXTRACT_SECOND": _extract,
    "DATE_ADD_DAYS": _date_add_days, "DATE_ADD_MONTHS": _date_add_months,
    "CONCAT": _concat, "COALESCE": _coalesce, "IF": _if,
    "NULLIF": _nullif,
    "YEAR": _year_fn, "MONTH": _month_fn, "DAY": _day_fn,
    "QUARTER": _quarter_fn,
    "UPPER": _rowwise(lambda s: str(s).upper()),
    "LOWER": _rowwise(lambda s: str(s).lower()),
    "LENGTH": _rowwise(lambda s: len(str(s))),
    "TRIM": _rowwise(lambda s: str(s).strip()),
    "SUBSTR": _rowwise(_substr),
    "SUBSTRING": _rowwise(_substr),
    "ABS": _rowwise(abs),
    "ROUND": _rowwise(lambda x, *d: round(float(x), int(d[0]) if d else 0)),
    "FLOOR": _rowwise(lambda x: int(np.floor(x))),
    "CEIL": _rowwise(lambda x: int(np.ceil(x))),
    "SQRT": _rowwise(lambda x: float(np.sqrt(x))),
    "LN": _rowwise(lambda x: float(np.log(x))),
    "EXP": _rowwise(lambda x: float(np.exp(x))),
    "POWER": _rowwise(lambda x, y: float(np.power(x, y))),
    "GREATEST": _rowwise(lambda *xs: max(xs)),
    "LEAST": _rowwise(lambda *xs: min(xs)),
    "HASH": _rowwise(lambda *xs: hash(xs) & 0x7FFFFFFFFFFFFFFF),
    "RAND": _rand,
    "CURRENT_DATE": _current_date,
    "CURRENT_TIMESTAMP": _current_timestamp,
}
