"""Materialized-view advisor (§9 roadmap: "one of the most requested

features is the implementation of an advisor or recommender", citing
Agrawal et al. and DB2's Design Advisor).

The advisor watches a workload of SELECT statements, clusters them by
*join signature* (the set of tables plus the equi-join conditions
connecting them), and for each frequently recurring signature emits a
``CREATE MATERIALIZED VIEW`` statement that the rewriting engine
(Section 4.4) can answer every clustered query from:

* the view's **group keys** are the union of the queries' grouping
  columns and filter columns (so residual predicates stay expressible
  over the view output),
* the view's **aggregates** are the union of the mergeable aggregate
  calls (sum/count/min/max — the roll-up-safe set),
* the **benefit score** compares the rows the workload currently scans
  against the estimated view size (group-key NDV product from HMS
  statistics).

Usage::

    advisor = MaterializedViewAdvisor(server)
    for sql in workload:
        advisor.record(sql)
    for rec in advisor.recommend(top_k=2):
        session.execute(rec.create_statement)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from .errors import HiveError
from .sql import ast_nodes as ast
from .sql.functions import AGGREGATE_FUNCTIONS
from .sql.parser import parse_statement

_MERGEABLE = {"sum", "count", "min", "max"}


@dataclass
class _QueryProfile:
    tables: frozenset[str]
    join_conditions: frozenset[str]
    group_exprs: tuple[str, ...]
    filter_columns: tuple[str, ...]
    aggregates: tuple[tuple[str, Optional[str]], ...]   # (func, arg text)


@dataclass
class ViewRecommendation:
    """One proposed materialized view."""

    name: str
    create_statement: str
    tables: tuple[str, ...]
    supporting_queries: int
    #: rows the workload scans per execution without the view
    scanned_rows_per_query: float
    #: estimated materialized view cardinality
    estimated_view_rows: float
    benefit_score: float

    def __repr__(self) -> str:
        return (f"ViewRecommendation({self.name}: "
                f"{self.supporting_queries} queries, "
                f"benefit={self.benefit_score:,.0f})")


class MaterializedViewAdvisor:
    """Collects a workload and proposes views."""

    def __init__(self, server, min_support: int = 2):
        self.server = server
        self.min_support = min_support
        self._profiles: list[_QueryProfile] = []
        self._skipped = 0

    # -- workload capture ---------------------------------------------------- #
    def record(self, sql: str) -> bool:
        """Profile one statement; returns False if it is out of scope

        (non-SELECT, subqueries, outer joins, ...)."""
        try:
            statement = parse_statement(sql, self.server.conf)
        except HiveError:
            self._skipped += 1
            return False
        if not isinstance(statement, ast.SelectStatement):
            self._skipped += 1
            return False
        profile = self._profile(statement.query)
        if profile is None:
            self._skipped += 1
            return False
        self._profiles.append(profile)
        return True

    def _profile(self, query: ast.Query) -> Optional[_QueryProfile]:
        if query.ctes or not isinstance(query.body, ast.QuerySpec):
            return None
        spec = query.body
        tables: list[str] = []
        join_conditions: list[str] = []
        for ref in spec.from_refs:
            flat = self._flatten_ref(ref, tables, join_conditions)
            if not flat:
                return None
        if not tables or len(set(tables)) != len(tables):
            return None
        filter_columns: list[str] = []
        if spec.where is not None:
            for conjunct in _split_and(spec.where):
                if self._is_equi_join(conjunct):
                    join_conditions.append(conjunct.unparse().lower())
                else:
                    for node in ast.walk_expr(conjunct):
                        if isinstance(node, ast.ColumnRef):
                            filter_columns.append(node.name.lower())
        aggregates: list[tuple[str, Optional[str]]] = []
        for item in spec.select_items:
            if isinstance(item.expr, ast.Star):
                return None
            for node in ast.walk_expr(item.expr):
                if isinstance(node, ast.FuncCall) and node.window is None \
                        and node.name in AGGREGATE_FUNCTIONS:
                    if node.name not in _MERGEABLE or node.distinct:
                        return None
                    arg = (node.args[0].unparse().lower()
                           if node.args else None)
                    aggregates.append((node.name, arg))
        group_exprs = tuple(e.unparse().lower() for e in spec.group_by)
        if spec.grouping_sets is not None:
            return None
        return _QueryProfile(
            tables=frozenset(t.lower() for t in tables),
            join_conditions=frozenset(join_conditions),
            group_exprs=group_exprs,
            filter_columns=tuple(sorted(set(filter_columns))),
            aggregates=tuple(sorted(set(aggregates),
                                    key=lambda a: (a[0], a[1] or ""))))

    def _flatten_ref(self, ref: ast.TableRef, tables: list,
                     join_conditions: list) -> bool:
        if isinstance(ref, ast.NamedTable):
            if ref.alias is not None and ref.alias.lower() != \
                    ref.name.split(".")[-1].lower():
                return False   # aliases would break textual signatures
            tables.append(ref.name)
            return True
        if isinstance(ref, ast.JoinRef) and ref.kind == "inner":
            if not self._flatten_ref(ref.left, tables, join_conditions):
                return False
            if not self._flatten_ref(ref.right, tables, join_conditions):
                return False
            if ref.condition is not None:
                for conjunct in _split_and(ref.condition):
                    if not self._is_equi_join(conjunct):
                        return False
                    join_conditions.append(conjunct.unparse().lower())
            return True
        return False

    @staticmethod
    def _is_equi_join(conjunct: ast.Expr) -> bool:
        return (isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef))

    # -- recommendation ---------------------------------------------------------- #
    def recommend(self, top_k: int = 3) -> list[ViewRecommendation]:
        """Cluster the workload and emit the highest-benefit views."""
        clusters: dict[tuple, list[_QueryProfile]] = defaultdict(list)
        for profile in self._profiles:
            clusters[(profile.tables,
                      profile.join_conditions)].append(profile)
        recommendations: list[ViewRecommendation] = []
        sequence = 0
        for (tables, joins), profiles in clusters.items():
            if len(profiles) < self.min_support:
                continue
            keys: list[str] = []
            for profile in profiles:
                for expr in profile.group_exprs:
                    if expr not in keys:
                        keys.append(expr)
                for column in profile.filter_columns:
                    if column not in keys:
                        keys.append(column)
            aggregates: list[tuple[str, Optional[str]]] = []
            for profile in profiles:
                for call in profile.aggregates:
                    if call not in aggregates:
                        aggregates.append(call)
            if not aggregates and not keys:
                continue
            sequence += 1
            name = f"mv_advisor_{sequence}"
            sql = self._render(name, tables, joins, keys, aggregates)
            scanned = self._scanned_rows(tables)
            view_rows = self._estimate_view_rows(tables, keys)
            benefit = (len(profiles)
                       * max(0.0, scanned - view_rows))
            recommendations.append(ViewRecommendation(
                name=name, create_statement=sql,
                tables=tuple(sorted(tables)),
                supporting_queries=len(profiles),
                scanned_rows_per_query=scanned,
                estimated_view_rows=view_rows,
                benefit_score=benefit))
        recommendations.sort(key=lambda r: -r.benefit_score)
        return recommendations[:top_k]

    def _render(self, name: str, tables: frozenset[str],
                joins: frozenset[str], keys: list[str],
                aggregates: list[tuple[str, Optional[str]]]) -> str:
        select_parts = list(keys)
        for i, (func, arg) in enumerate(aggregates):
            rendered_arg = "*" if arg is None else arg
            select_parts.append(
                f"{func.upper()}({rendered_arg}) AS agg_{i}")
        from_clause = ", ".join(sorted(tables))
        where_clause = (" WHERE " + " AND ".join(sorted(joins))
                        if joins else "")
        group_clause = (" GROUP BY " + ", ".join(keys)
                        if keys and aggregates else "")
        return (f"CREATE MATERIALIZED VIEW {name} AS SELECT "
                f"{', '.join(select_parts)} FROM {from_clause}"
                f"{where_clause}{group_clause}")

    def _scanned_rows(self, tables: frozenset[str]) -> float:
        total = 0.0
        for name in tables:
            try:
                table = self.server.hms.get_table(name)
            except HiveError:
                continue
            total += self.server.hms.get_statistics(table).row_count
        return total

    def _estimate_view_rows(self, tables: frozenset[str],
                            keys: list[str]) -> float:
        """NDV product of the key columns, capped by the fact size."""
        if not keys:
            return 1.0
        product = 1.0
        largest = 1.0
        for name in tables:
            try:
                table = self.server.hms.get_table(name)
            except HiveError:
                continue
            stats = self.server.hms.get_statistics(table)
            largest = max(largest, float(stats.row_count))
            for key in keys:
                column = stats.column(key)
                if column is not None:
                    product *= max(1.0, column.ndv)
        return min(product, largest)

    @property
    def workload_size(self) -> int:
        return len(self._profiles)


def _split_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]
