"""Benchmark substrate: TPC-DS-like and SSB generators, harness."""

from .harness import BenchmarkRun, load_rows, run_query_set
from .tpcds import TPCDS_QUERIES, TpcdsScale, create_tpcds_warehouse
from .ssb import SSB_QUERIES, SsbScale, create_ssb_warehouse

__all__ = ["BenchmarkRun", "load_rows", "run_query_set",
           "TPCDS_QUERIES", "TpcdsScale", "create_tpcds_warehouse",
           "SSB_QUERIES", "SsbScale", "create_ssb_warehouse"]
