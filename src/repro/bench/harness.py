"""Benchmark harness: bulk loading, query-set runs, report rendering.

Used by the ``benchmarks/`` suite to regenerate every table and figure of
the paper's Section 7.  Latencies are the runtime's *virtual* seconds
(see DESIGN.md on the cost-model substitution); "warm cache" repetitions
follow the paper ("the average over three runs with warm cache").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import HiveError
from ..obs.export import BENCH_COLLECTOR, breakdown_of
from ..server import HiveServer2, Session
from .tpcds import BenchQuery


def load_rows(server: HiveServer2, table_name: str,
              rows: Sequence[tuple]) -> int:
    """Bulk-load rows through the transactional write path."""
    from ..server.dml import TableWriter
    table = server.hms.get_table(table_name)
    writer = TableWriter(server.hms, server.conf)
    result = writer.insert_rows(table, rows)
    server.run_compaction()
    return result.rows_affected


@dataclass
class QueryTiming:
    name: str
    seconds: Optional[float]        # None = query failed / unsupported
    rows: int = 0
    error: str = ""
    from_cache: bool = False

    @property
    def succeeded(self) -> bool:
        return self.seconds is not None


@dataclass
class BenchmarkRun:
    """Timings for one (profile, query set) execution."""

    label: str
    timings: list[QueryTiming] = field(default_factory=list)

    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings if t.succeeded)

    def succeeded_count(self) -> int:
        return sum(1 for t in self.timings if t.succeeded)

    def timing(self, name: str) -> QueryTiming:
        for t in self.timings:
            if t.name == name:
                return t
        raise KeyError(name)


def run_query_set(session: Session,
                  queries: Sequence[BenchQuery | tuple[str, str]],
                  label: str, warm_runs: int = 1,
                  use_cache: bool = False) -> BenchmarkRun:
    """Run every query ``1 + warm_runs`` times, keeping the last timing.

    The first execution warms the LLAP cache (the paper reports warm-
    cache numbers); result-cache hits are excluded unless ``use_cache``
    (otherwise every repetition would be a trivial cache fetch).
    """
    run = BenchmarkRun(label=label)
    for query in queries:
        if isinstance(query, BenchQuery):
            name, sql = query.name, query.sql
        else:
            name, sql = query
        if not use_cache:
            session.conf.results_cache_enabled = False
        try:
            result = None
            for _ in range(1 + warm_runs):
                result = session.execute(sql)
            run.timings.append(QueryTiming(
                name, result.metrics.total_s if result.metrics else 0.0,
                rows=len(result.rows), from_cache=result.from_cache))
            BENCH_COLLECTOR.record(
                label, name,
                seconds=result.metrics.total_s if result.metrics else 0.0,
                rows=len(result.rows), from_cache=result.from_cache,
                wall_s=(result.trace.root.wall_s
                        if result.trace is not None else None),
                breakdown=breakdown_of(result.metrics))
        except HiveError as error:
            run.timings.append(QueryTiming(name, None,
                                           error=type(error).__name__))
            BENCH_COLLECTOR.record(label, name, seconds=None,
                                   error=type(error).__name__)
    return run


# --------------------------------------------------------------------------- #
# report rendering (the rows/series the paper's artifacts show)

def render_comparison(runs: Sequence[BenchmarkRun],
                      title: str) -> str:
    """Per-query response-time table across runs (Figure 7 / 8 style)."""
    names: list[str] = []
    for run in runs:
        for timing in run.timings:
            if timing.name not in names:
                names.append(timing.name)
    width = max(len(n) for n in names) + 2
    header = "query".ljust(width) + "".join(
        run.label.rjust(16) for run in runs) + "   speedup".rjust(10)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name in names:
        cells = []
        values = []
        for run in runs:
            try:
                timing = run.timing(name)
            except KeyError:
                timing = QueryTiming(name, None, error="missing")
            if timing.succeeded:
                cells.append(f"{timing.seconds:14.3f}s")
                values.append(timing.seconds)
            else:
                cells.append(f"{'FAIL(' + timing.error + ')':>15}")
                values.append(None)
        if len(values) >= 2 and values[0] and values[-1]:
            speedup = f"{values[0] / values[-1]:8.1f}x"
        else:
            speedup = "      --"
        lines.append(name.ljust(width) + "".join(cells) + speedup)
    lines.append("-" * len(header))
    totals = "TOTAL".ljust(width) + "".join(
        f"{run.total_seconds():14.3f}s" for run in runs)
    if len(runs) >= 2 and runs[-1].total_seconds() > 0:
        totals += (f"{runs[0].total_seconds() / runs[-1].total_seconds():8.1f}x")
    lines.append(totals)
    counts = "queries ok".ljust(width) + "".join(
        f"{run.succeeded_count():15d}" for run in runs)
    lines.append(counts)
    return "\n".join(lines)


def geometric_mean_speedup(baseline: BenchmarkRun,
                           improved: BenchmarkRun) -> float:
    """Geo-mean of per-query speedups over commonly-succeeding queries."""
    import math
    ratios = []
    for timing in baseline.timings:
        if not timing.succeeded:
            continue
        try:
            other = improved.timing(timing.name)
        except KeyError:
            continue
        if other.succeeded and other.seconds > 0:
            ratios.append(timing.seconds / other.seconds)
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def average_speedup(baseline: BenchmarkRun,
                    improved: BenchmarkRun) -> float:
    ratios = []
    for timing in baseline.timings:
        if not timing.succeeded:
            continue
        try:
            other = improved.timing(timing.name)
        except KeyError:
            continue
        if other.succeeded and other.seconds > 0:
            ratios.append(timing.seconds / other.seconds)
    return sum(ratios) / len(ratios) if ratios else 1.0


def max_speedup(baseline: BenchmarkRun,
                improved: BenchmarkRun) -> tuple[str, float]:
    best = ("", 0.0)
    for timing in baseline.timings:
        if not timing.succeeded:
            continue
        try:
            other = improved.timing(timing.name)
        except KeyError:
            continue
        if other.succeeded and other.seconds > 0:
            ratio = timing.seconds / other.seconds
            if ratio > best[1]:
                best = (timing.name, ratio)
    return best
