"""Star-Schema Benchmark (Section 7.3 / Figure 8).

SSB (O'Neil et al., TPCTC 2009) derives from TPC-H: one ``lineorder``
fact table, four dimensions (date, customer, supplier, part) and 13
queries in four flights that "join, aggregate, and place fairly tight
dimensional filters over different sets of tables".

The paper's experiment denormalizes the whole schema into one
materialized view, stores it natively and then in Druid, and lets the
rewriting engine answer all 13 queries from the view.  This module
provides the generator, the 13 queries, and the denormalization DDL.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Optional

from ..server import HiveServer2, Session

REGIONS = ["AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"]
NATIONS = {
    "AMERICA": ["UNITED STATES", "CANADA", "BRAZIL", "ARGENTINA", "PERU"],
    "ASIA": ["CHINA", "JAPAN", "INDIA", "INDONESIA", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "RUSSIA", "ROMANIA", "UNITED KINGDOM"],
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}
MFGRS = [f"MFGR#{i}" for i in range(1, 6)]


@dataclass
class SsbScale:
    years: int = 4                # 1992..1995-ish window
    customers: int = 300
    suppliers: int = 100
    parts: int = 250
    lineorders: int = 15_000
    seed: int = 11

    @classmethod
    def tiny(cls) -> "SsbScale":
        return cls(years=2, customers=50, suppliers=20, parts=40,
                   lineorders=1_200)


SSB_DDL = [
    """CREATE TABLE ssb_date (
         d_datekey INT, d_date DATE, d_year INT, d_yearmonthnum INT,
         d_yearmonth STRING, d_weeknuminyear INT,
         PRIMARY KEY (d_datekey) DISABLE NOVALIDATE)""",
    """CREATE TABLE ssb_customer (
         c_custkey INT, c_city STRING, c_nation STRING, c_region STRING,
         PRIMARY KEY (c_custkey) DISABLE NOVALIDATE)""",
    """CREATE TABLE ssb_supplier (
         s_suppkey INT, s_city STRING, s_nation STRING, s_region STRING,
         PRIMARY KEY (s_suppkey) DISABLE NOVALIDATE)""",
    """CREATE TABLE ssb_part (
         p_partkey INT, p_mfgr STRING, p_category STRING,
         p_brand1 STRING,
         PRIMARY KEY (p_partkey) DISABLE NOVALIDATE)""",
    """CREATE TABLE lineorder (
         lo_orderkey INT, lo_custkey INT, lo_partkey INT,
         lo_suppkey INT, lo_orderdate INT, lo_quantity INT,
         lo_extendedprice DOUBLE, lo_discount DOUBLE,
         lo_revenue DOUBLE, lo_supplycost DOUBLE,
         FOREIGN KEY (lo_orderdate) REFERENCES ssb_date (d_datekey)
             DISABLE,
         FOREIGN KEY (lo_custkey) REFERENCES ssb_customer (c_custkey)
             DISABLE,
         FOREIGN KEY (lo_suppkey) REFERENCES ssb_supplier (s_suppkey)
             DISABLE,
         FOREIGN KEY (lo_partkey) REFERENCES ssb_part (p_partkey)
             DISABLE)""",
]

#: the denormalized materialized view of the paper's Figure 8 experiment:
#: every dimension attribute the 13 queries filter or group on, the fact
#: measures, and the derived discount revenue used by flight 1.
SSB_FLAT_MV_SELECT = """
    SELECT d_date, d_year, d_yearmonthnum, d_yearmonth, d_weeknuminyear,
           c_city, c_nation, c_region,
           s_city, s_nation, s_region,
           p_mfgr, p_category, p_brand1,
           lo_quantity, lo_discount, lo_revenue, lo_supplycost,
           lo_extendedprice * lo_discount AS lo_discount_revenue,
           lo_revenue - lo_supplycost AS lo_profit
    FROM lineorder, ssb_date, ssb_customer, ssb_supplier, ssb_part
    WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
      AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey
"""


def generate_ssb_data(scale: SsbScale) -> dict[str, list[tuple]]:
    rng = random.Random(scale.seed)
    data: dict[str, list[tuple]] = {}

    dates = []
    base = datetime.date(1992, 1, 1)
    day_count = scale.years * 365
    for i in range(0, day_count, 1):
        day = base + datetime.timedelta(days=i)
        datekey = day.year * 10000 + day.month * 100 + day.day
        dates.append((datekey, day, day.year,
                      day.year * 100 + day.month,
                      day.strftime("%b%Y"), day.isocalendar()[1]))
    data["ssb_date"] = dates

    def geo():
        region = rng.choice(REGIONS)
        nation = rng.choice(NATIONS[region])
        city = f"{nation[:9]}{rng.randint(0, 9)}"
        return city, nation, region

    data["ssb_customer"] = []
    for key in range(scale.customers):
        city, nation, region = geo()
        data["ssb_customer"].append((key, city, nation, region))
    data["ssb_supplier"] = []
    for key in range(scale.suppliers):
        city, nation, region = geo()
        data["ssb_supplier"].append((key, city, nation, region))

    data["ssb_part"] = []
    for key in range(scale.parts):
        mfgr = rng.choice(MFGRS)
        category = f"{mfgr}{rng.randint(1, 5)}"
        brand = f"{category}{rng.randint(1, 8)}"
        data["ssb_part"].append((key, mfgr, category, brand))

    lineorders = []
    for order in range(scale.lineorders):
        datekey = dates[rng.randint(0, len(dates) - 1)][0]
        quantity = rng.randint(1, 50)
        price = round(rng.uniform(100.0, 10000.0), 2)
        discount = float(rng.randint(0, 10))
        revenue = round(price * (1 - discount / 100.0), 2)
        lineorders.append((
            order, rng.randint(0, scale.customers - 1),
            rng.randint(0, scale.parts - 1),
            rng.randint(0, scale.suppliers - 1),
            datekey, quantity, price, discount, revenue,
            round(price * 0.6, 2)))
    data["lineorder"] = lineorders
    return data


def create_ssb_warehouse(server: HiveServer2,
                         scale: Optional[SsbScale] = None,
                         session: Optional[Session] = None) -> Session:
    from .harness import load_rows
    scale = scale or SsbScale()
    session = session or server.connect()
    for ddl in SSB_DDL:
        session.execute(ddl)
    data = generate_ssb_data(scale)
    for table_name, rows in data.items():
        load_rows(server, table_name, rows)
    return session


# --------------------------------------------------------------------------- #
# the 13 SSB queries (flights 1-4)

SSB_QUERIES: list[tuple[str, str]] = [
    ("q1.1", """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ssb_date
        WHERE lo_orderdate = d_datekey AND d_year = 1993
          AND lo_discount >= 1 AND lo_discount <= 3
          AND lo_quantity < 25"""),
    ("q1.2", """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ssb_date
        WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401
          AND lo_discount >= 4 AND lo_discount <= 6
          AND lo_quantity >= 26 AND lo_quantity <= 35"""),
    ("q1.3", """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ssb_date
        WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6
          AND d_year = 1994 AND lo_discount >= 5 AND lo_discount <= 7
          AND lo_quantity >= 26 AND lo_quantity <= 35"""),
    ("q2.1", """
        SELECT SUM(lo_revenue) revenue, d_year, p_brand1
        FROM lineorder, ssb_date, ssb_part, ssb_supplier
        WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12'
          AND s_region = 'AMERICA'
        GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"""),
    ("q2.2", """
        SELECT SUM(lo_revenue) revenue, d_year, p_brand1
        FROM lineorder, ssb_date, ssb_part, ssb_supplier
        WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_brand1 IN ('MFGR#121', 'MFGR#122', 'MFGR#123')
          AND s_region = 'ASIA'
        GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"""),
    ("q2.3", """
        SELECT SUM(lo_revenue) revenue, d_year, p_brand1
        FROM lineorder, ssb_date, ssb_part, ssb_supplier
        WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#224'
          AND s_region = 'EUROPE'
        GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"""),
    ("q3.1", """
        SELECT c_nation, s_nation, d_year, SUM(lo_revenue) revenue
        FROM lineorder, ssb_customer, ssb_supplier, ssb_date
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey AND c_region = 'ASIA'
          AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_nation, s_nation, d_year
        ORDER BY d_year, revenue DESC"""),
    ("q3.2", """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) revenue
        FROM lineorder, ssb_customer, ssb_supplier, ssb_date
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
          AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year, revenue DESC"""),
    ("q3.3", """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) revenue
        FROM lineorder, ssb_customer, ssb_supplier, ssb_date
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_nation = 'CHINA' AND s_nation = 'CHINA'
          AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year, revenue DESC"""),
    ("q3.4", """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) revenue
        FROM lineorder, ssb_customer, ssb_supplier, ssb_date
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_nation = 'JAPAN' AND s_nation = 'JAPAN'
          AND d_yearmonth = 'Mar1994'
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year, revenue DESC"""),
    ("q4.1", """
        SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) profit
        FROM lineorder, ssb_date, ssb_customer, ssb_supplier, ssb_part
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA' AND s_region = 'AMERICA'
          AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, c_nation ORDER BY d_year, c_nation"""),
    ("q4.2", """
        SELECT d_year, s_nation, p_category,
               SUM(lo_revenue - lo_supplycost) profit
        FROM lineorder, ssb_date, ssb_customer, ssb_supplier, ssb_part
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA' AND s_region = 'AMERICA'
          AND d_year >= 1994 AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, s_nation, p_category
        ORDER BY d_year, s_nation, p_category"""),
    ("q4.3", """
        SELECT d_year, s_city, p_brand1,
               SUM(lo_revenue - lo_supplycost) profit
        FROM lineorder, ssb_date, ssb_customer, ssb_supplier, ssb_part
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
          AND s_nation = 'UNITED STATES' AND d_year >= 1994
          AND p_category = 'MFGR#14'
        GROUP BY d_year, s_city, p_brand1
        ORDER BY d_year, s_city, p_brand1"""),
]
