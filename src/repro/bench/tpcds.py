"""TPC-DS-like star-schema workload (Section 7.1 / Figure 7, Table 1).

The paper runs the 99 official TPC-DS queries on 10 TB; this module
generates the same *kind* of database — a ``store_sales`` fact table
partitioned by day, a ``store_returns`` fact, and the date/item/customer/
store/time/household dimensions — at laptop scale, plus a query set that
covers the SQL feature classes the paper calls out:

* half of the queries use features Hive v1.2 lacked (INTERSECT/EXCEPT,
  interval notation, ORDER BY on unselected columns, GROUPING
  SETS/ROLLUP, correlated subqueries with non-equi conditions), so the
  legacy profile can run only a subset — the Figure 7 effect,
* ``q_shared_scan_88`` repeats one expensive subexpression eight times
  (the paper's q88 callout for the shared-work optimizer),
* ``q_badorder_58`` is written in a deliberately bad syntactic join
  order, which only the cost-based reorderer fixes (q58's 45x),
* several star joins with selective dimension filters exercise dynamic
  semijoin reduction and partition pruning.

Every query is annotated with the feature class it represents.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Optional

from ..server import HiveServer2, Session

_BASE_DATE = datetime.date(2018, 1, 1)

CATEGORIES = ["Sports", "Books", "Music", "Home", "Electronics",
              "Jewelry", "Shoes", "Toys"]
BRANDS = [f"brand_{i}" for i in range(25)]
STATES = ["CA", "NY", "TX", "WA", "IL", "GA", "OH", "FL"]
COUNTRIES = ["US", "DE", "FR", "JP", "BR", "IN"]


@dataclass
class TpcdsScale:
    """Row counts for the generated database."""

    days: int = 60
    items: int = 300
    customers: int = 1000
    stores: int = 12
    households: int = 50
    time_slots: int = 48          # half-hour buckets
    store_sales: int = 20_000
    store_returns: int = 2_000
    seed: int = 7

    @classmethod
    def tiny(cls) -> "TpcdsScale":
        return cls(days=12, items=40, customers=60, stores=4,
                   households=10, time_slots=12, store_sales=1_500,
                   store_returns=200)


# --------------------------------------------------------------------------- #
# DDL

TPCDS_DDL = [
    """CREATE TABLE date_dim (
         d_date_sk INT, d_date DATE, d_year INT, d_moy INT, d_dom INT,
         d_qoy INT, d_day_name STRING,
         PRIMARY KEY (d_date_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE item (
         i_item_sk INT, i_item_id STRING, i_category STRING,
         i_brand STRING, i_current_price DOUBLE,
         PRIMARY KEY (i_item_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE customer (
         c_customer_sk INT, c_customer_id STRING, c_first_name STRING,
         c_last_name STRING, c_birth_country STRING,
         c_preferred_cust_flag STRING,
         PRIMARY KEY (c_customer_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE store (
         s_store_sk INT, s_store_id STRING, s_state STRING,
         s_city STRING,
         PRIMARY KEY (s_store_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE household_demographics (
         hd_demo_sk INT, hd_dep_count INT, hd_income_band INT,
         PRIMARY KEY (hd_demo_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE time_dim (
         t_time_sk INT, t_hour INT, t_minute INT,
         PRIMARY KEY (t_time_sk) DISABLE NOVALIDATE)""",
    """CREATE TABLE store_sales (
         ss_sold_time_sk INT, ss_item_sk INT, ss_customer_sk INT,
         ss_store_sk INT, ss_hdemo_sk INT, ss_ticket_number INT,
         ss_quantity INT, ss_list_price DOUBLE, ss_sales_price DOUBLE,
         ss_ext_sales_price DOUBLE, ss_net_profit DOUBLE,
         FOREIGN KEY (ss_item_sk) REFERENCES item (i_item_sk) DISABLE,
         FOREIGN KEY (ss_customer_sk) REFERENCES customer (c_customer_sk)
             DISABLE,
         FOREIGN KEY (ss_store_sk) REFERENCES store (s_store_sk) DISABLE)
       PARTITIONED BY (ss_sold_date_sk INT)
       TBLPROPERTIES ('orc.bloom.filter.columns'='ss_item_sk')""",
    """CREATE TABLE store_returns (
         sr_item_sk INT, sr_customer_sk INT, sr_ticket_number INT,
         sr_return_amt DOUBLE, sr_returned_date_sk INT)""",
]


# --------------------------------------------------------------------------- #
# data generation

def generate_tpcds_data(scale: TpcdsScale) -> dict[str, list[tuple]]:
    rng = random.Random(scale.seed)
    data: dict[str, list[tuple]] = {}

    data["date_dim"] = []
    for sk in range(scale.days):
        day = _BASE_DATE + datetime.timedelta(days=sk)
        data["date_dim"].append(
            (sk, day, day.year, day.month, day.day,
             (day.month - 1) // 3 + 1, day.strftime("%A")))

    data["item"] = [
        (sk, f"ITEM{sk:06d}", rng.choice(CATEGORIES), rng.choice(BRANDS),
         round(rng.uniform(1.0, 300.0), 2))
        for sk in range(scale.items)]

    data["customer"] = [
        (sk, f"CUST{sk:07d}", f"first{sk % 97}", f"last{sk % 131}",
         rng.choice(COUNTRIES), rng.choice(["Y", "N"]))
        for sk in range(scale.customers)]

    data["store"] = [
        (sk, f"STORE{sk:03d}", rng.choice(STATES), f"city{sk % 7}")
        for sk in range(scale.stores)]

    data["household_demographics"] = [
        (sk, rng.randint(0, 9), rng.randint(1, 20))
        for sk in range(scale.households)]

    data["time_dim"] = [
        (sk, (sk * 24) // scale.time_slots, (sk * 30) % 60)
        for sk in range(scale.time_slots)]

    sales = []
    for ticket in range(scale.store_sales):
        date_sk = rng.randint(0, scale.days - 1)
        quantity = rng.randint(1, 20)
        list_price = round(rng.uniform(1.0, 300.0), 2)
        sales_price = round(list_price * rng.uniform(0.4, 1.0), 2)
        sales.append((
            rng.randint(0, scale.time_slots - 1),
            rng.randint(0, scale.items - 1),
            rng.randint(0, scale.customers - 1),
            rng.randint(0, scale.stores - 1),
            rng.randint(0, scale.households - 1),
            ticket, quantity, list_price, sales_price,
            round(sales_price * quantity, 2),
            round((sales_price - list_price * 0.5) * quantity, 2),
            date_sk,                      # dynamic partition column
        ))
    data["store_sales"] = sales

    returns = []
    for i in range(scale.store_returns):
        source = sales[rng.randint(0, len(sales) - 1)]
        returns.append((
            source[1], source[2], source[5],
            round(source[8] * rng.uniform(0.1, 1.0), 2),
            min(scale.days - 1, source[11] + rng.randint(1, 10))))
    data["store_returns"] = returns
    return data


def create_tpcds_warehouse(server: HiveServer2,
                           scale: Optional[TpcdsScale] = None,
                           session: Optional[Session] = None) -> Session:
    """Create tables, load data, and compute statistics."""
    from .harness import load_rows
    scale = scale or TpcdsScale()
    session = session or server.connect()
    for ddl in TPCDS_DDL:
        session.execute(ddl)
    data = generate_tpcds_data(scale)
    for table_name, rows in data.items():
        load_rows(server, table_name, rows)
    return session


# --------------------------------------------------------------------------- #
# the query set

@dataclass(frozen=True)
class BenchQuery:
    name: str
    sql: str
    feature: str
    #: queries using SQL the legacy profile lacks (the Figure 7 effect)
    requires_v3: bool = False


TPCDS_QUERIES: list[BenchQuery] = [
    # -- plain star joins / aggregation (run on both profiles) ------------- #
    BenchQuery("q03_brand_by_year", """
        SELECT d_year, i_brand, SUM(ss_ext_sales_price) sum_agg
        FROM store_sales, date_dim, item
        WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
          AND i_category = 'Sports' AND d_moy = 1
        GROUP BY d_year, i_brand
        ORDER BY d_year, sum_agg DESC LIMIT 100""", "star-join"),
    BenchQuery("q07_customer_avg", """
        SELECT i_item_id, AVG(ss_quantity) agg1,
               AVG(ss_list_price) agg2, AVG(ss_sales_price) agg3
        FROM store_sales, item
        WHERE ss_item_sk = i_item_sk AND i_category IN ('Books', 'Music')
        GROUP BY i_item_id ORDER BY i_item_id LIMIT 100""", "star-join"),
    BenchQuery("q19_brand_store", """
        SELECT i_brand, s_state, SUM(ss_ext_sales_price) ext_price
        FROM store_sales, item, store, date_dim
        WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk
          AND ss_sold_date_sk = d_date_sk AND d_moy = 2
          AND i_category = 'Electronics'
        GROUP BY i_brand, s_state
        ORDER BY ext_price DESC, i_brand LIMIT 100""", "star-join"),
    BenchQuery("q42_month_category", """
        SELECT d_year, d_moy, i_category, SUM(ss_ext_sales_price) s
        FROM store_sales, date_dim, item
        WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
          AND d_moy = 1
        GROUP BY d_year, d_moy, i_category
        ORDER BY s DESC LIMIT 100""", "star-join"),
    BenchQuery("q52_brand_daily", """
        SELECT d_dom, i_brand, SUM(ss_ext_sales_price) ext_price
        FROM store_sales, date_dim, item
        WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
          AND i_category = 'Jewelry' AND d_moy = 1
        GROUP BY d_dom, i_brand ORDER BY d_dom, ext_price DESC
        LIMIT 100""", "star-join"),
    BenchQuery("q55_brand_month", """
        SELECT i_brand, SUM(ss_ext_sales_price) ext_price
        FROM store_sales, item, date_dim
        WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
          AND d_moy = 2 AND i_category = 'Home'
        GROUP BY i_brand ORDER BY ext_price DESC LIMIT 100""",
               "semijoin-reduction"),
    BenchQuery("q43_store_weekday", """
        SELECT s_store_id, d_day_name, SUM(ss_sales_price) s
        FROM store_sales, date_dim, store
        WHERE ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk
          AND s_state IN ('CA', 'NY')
        GROUP BY s_store_id, d_day_name
        ORDER BY s_store_id LIMIT 100""", "star-join"),
    BenchQuery("q68_customer_city", """
        SELECT c_last_name, c_first_name, s_city,
               SUM(ss_ext_sales_price) extended_price
        FROM store_sales, store, customer
        WHERE ss_store_sk = s_store_sk
          AND ss_customer_sk = c_customer_sk AND s_state = 'TX'
        GROUP BY c_last_name, c_first_name, s_city
        ORDER BY c_last_name, c_first_name LIMIT 100""", "star-join"),
    BenchQuery("q96_counting", """
        SELECT COUNT(*) cnt
        FROM store_sales, household_demographics, time_dim
        WHERE ss_sold_time_sk = t_time_sk
          AND ss_hdemo_sk = hd_demo_sk
          AND t_hour = 8 AND hd_dep_count = 5""", "star-join"),
    BenchQuery("q98_category_share", """
        SELECT i_item_id, i_category, SUM(ss_ext_sales_price) itemrevenue
        FROM store_sales, item, date_dim
        WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
          AND i_category IN ('Sports', 'Books', 'Home') AND d_moy <= 2
        GROUP BY i_item_id, i_category
        ORDER BY i_category, itemrevenue DESC LIMIT 100""", "star-join"),
    BenchQuery("q_returns_ratio", """
        SELECT i_category, SUM(sr_return_amt) returns_amt
        FROM store_returns, item
        WHERE sr_item_sk = i_item_sk
        GROUP BY i_category ORDER BY returns_amt DESC""", "fact-join"),
    BenchQuery("q_semijoin_star", """
        SELECT ss_customer_sk, SUM(ss_sales_price) AS sum_sales
        FROM store_sales, store_returns, item
        WHERE ss_item_sk = sr_item_sk
          AND ss_ticket_number = sr_ticket_number
          AND ss_item_sk = i_item_sk AND i_category = 'Sports'
        GROUP BY ss_customer_sk
        ORDER BY sum_sales DESC LIMIT 100""", "semijoin-reduction"),
    # written in a deliberately bad syntactic order: date_dim only joins
    # store_returns, so a rule-based left-deep plan cross-products the
    # fact with date_dim before any join key applies — the kind of plan
    # behind the paper's 45x q58 speedup, fixed only by the CBO
    BenchQuery("q_badorder_58", """
        SELECT i_brand, SUM(sr_return_amt) returned
        FROM store_sales, date_dim, store_returns, item
        WHERE ss_item_sk = sr_item_sk
          AND ss_ticket_number = sr_ticket_number
          AND sr_returned_date_sk = d_date_sk AND d_moy = 1
          AND d_dom <= 6
          AND sr_item_sk = i_item_sk AND i_category = 'Music'
        GROUP BY i_brand ORDER BY returned DESC LIMIT 50""",
               "join-reordering"),
    BenchQuery("q_shared_scan_88", """
        SELECT h8.cnt, h9.cnt, h10.cnt, h11.cnt,
               h12.cnt, h13.cnt, h14.cnt, h15.cnt
        FROM
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 8) h8,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 9) h9,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 10) h10,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 11) h11,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 12) h12,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 13) h13,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 14) h14,
          (SELECT COUNT(*) cnt FROM store_sales, household_demographics,
             time_dim WHERE ss_sold_time_sk = t_time_sk
             AND ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 3
             AND t_hour = 15) h15""", "shared-work"),
    BenchQuery("q_in_subquery", """
        SELECT c_last_name, COUNT(*) cnt FROM customer
        WHERE c_customer_sk IN (
            SELECT ss_customer_sk FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk AND d_moy = 1)
        GROUP BY c_last_name ORDER BY cnt DESC, c_last_name
        LIMIT 20""", "subquery"),
    BenchQuery("q_correlated_scalar", """
        SELECT i_category, i_brand,
           (SELECT MAX(ss_sales_price) FROM store_sales
            WHERE ss_item_sk = i_item_sk) max_price
        FROM item WHERE i_current_price > 250
        ORDER BY i_category, i_brand LIMIT 50""", "subquery"),
    BenchQuery("q_window_rank", """
        SELECT i_category, total, RANK() OVER (ORDER BY total DESC) rnk
        FROM (SELECT i_category, SUM(ss_ext_sales_price) total
              FROM store_sales, item WHERE ss_item_sk = i_item_sk
              GROUP BY i_category) t
        ORDER BY rnk""", "window"),
    BenchQuery("q_union_all", """
        SELECT 'sales' channel, SUM(ss_ext_sales_price) amount
        FROM store_sales
        UNION ALL
        SELECT 'returns' channel, SUM(sr_return_amt) amount
        FROM store_returns""", "union"),
    BenchQuery("q_count_distinct", """
        SELECT d_year, COUNT(DISTINCT ss_customer_sk) customers
        FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk
        GROUP BY d_year ORDER BY d_year""", "distinct-agg"),
    # -- queries needing v3-only SQL features (fail on hive-1.2) ------------ #
    BenchQuery("q_intersect_14", """
        SELECT ss_item_sk FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_moy = 1
        INTERSECT
        SELECT sr_item_sk FROM store_returns""",
               "set-operations", requires_v3=True),
    BenchQuery("q_except_87", """
        SELECT c_customer_sk FROM customer
        EXCEPT
        SELECT ss_customer_sk FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_moy = 2""",
               "set-operations", requires_v3=True),
    BenchQuery("q_intersect_38", """
        SELECT COUNT(*) cnt FROM (
          SELECT ss_customer_sk FROM store_sales, date_dim
          WHERE ss_sold_date_sk = d_date_sk AND d_moy = 1
          INTERSECT
          SELECT sr_customer_sk FROM store_returns) hot
        """, "set-operations", requires_v3=True),
    BenchQuery("q_interval_16", """
        SELECT COUNT(*) orders FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk
          AND d_date BETWEEN DATE '2018-01-10'
              AND DATE '2018-01-10' + INTERVAL '30' DAY""",
               "interval-notation", requires_v3=True),
    BenchQuery("q_interval_32", """
        SELECT SUM(ss_ext_sales_price) excess
        FROM store_sales, item, date_dim
        WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
          AND d_date > DATE '2018-02-15' - INTERVAL '14' DAY
          AND i_category = 'Toys'""",
               "interval-notation", requires_v3=True),
    BenchQuery("q_orderby_unselected", """
        SELECT i_item_id, i_brand FROM item
        WHERE i_current_price > 100
        ORDER BY i_current_price DESC LIMIT 20""",
               "order-by-unselected", requires_v3=True),
    BenchQuery("q_orderby_unselected_2", """
        SELECT s_store_id FROM store WHERE s_state = 'CA'
        ORDER BY s_city LIMIT 10""",
               "order-by-unselected", requires_v3=True),
    BenchQuery("q_grouping_sets_27", """
        SELECT d_year, d_moy, SUM(ss_sales_price) s
        FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk
        GROUP BY GROUPING SETS ((d_year, d_moy), (d_year), ())
        ORDER BY d_year, d_moy LIMIT 200""",
               "grouping-sets", requires_v3=True),
    BenchQuery("q_rollup_67", """
        SELECT i_category, i_brand, SUM(ss_ext_sales_price) s
        FROM store_sales, item WHERE ss_item_sk = i_item_sk
        GROUP BY ROLLUP (i_category, i_brand)
        ORDER BY i_category, i_brand LIMIT 200""",
               "grouping-sets", requires_v3=True),
    BenchQuery("q_nonequi_exists", """
        SELECT i_item_id FROM item
        WHERE i_current_price > 290 AND EXISTS (
          SELECT 1 FROM store_sales
          WHERE ss_item_sk = i_item_sk
            AND ss_sales_price > i_current_price * 0.9)
        ORDER BY i_item_id""",
               "non-equi-correlation", requires_v3=True),
    BenchQuery("q_nonequi_notexists", """
        SELECT COUNT(*) loyal FROM customer
        WHERE NOT EXISTS (
          SELECT 1 FROM store_sales
          WHERE ss_customer_sk = c_customer_sk
            AND ss_net_profit < c_customer_sk * -0.01)""",
               "non-equi-correlation", requires_v3=True),
    BenchQuery("q_mixed_features", """
        SELECT d_year, d_moy, SUM(ss_sales_price) s
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk
          AND d_date > DATE '2018-01-05' - INTERVAL '2' DAY
        GROUP BY GROUPING SETS ((d_year, d_moy), ())
        ORDER BY d_year, d_moy LIMIT 100""",
               "grouping-sets", requires_v3=True),
]


def legacy_supported_queries() -> list[BenchQuery]:
    return [q for q in TPCDS_QUERIES if not q.requires_v3]
