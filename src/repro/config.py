"""Warehouse configuration (the analogue of HiveConf).

A :class:`HiveConf` instance carries every tunable used across the stack:
optimizer feature flags, runtime/LLAP switches, ACID thresholds, and the
cost-model constants the cluster simulator charges for IO, network and
container start-up.

Two factory profiles reproduce the versions compared in the paper's
Figure 7:

* :func:`HiveConf.v3_profile` — Hive 3.1: CBO, shared-work optimization,
  dynamic semijoin reduction, vectorization, LLAP, result cache, full SQL.
* :func:`HiveConf.legacy_profile` — Hive 1.2: rule-based only, no LLAP, no
  vectorized execution, restricted SQL surface.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError

#: accepted spellings of the ``check_plan`` mode, mapped to canon
_CHECK_PLAN_MODES = {
    "off": "off", "false": "off", "0": "off", "no": "off",
    "on": "on", "true": "on", "1": "on", "yes": "on",
    "paranoid": "paranoid",
}


def _default_check_plan() -> str:
    """Default plan-check mode; the HIVE_CHECK_PLAN environment variable
    lets a whole test run opt in (CI runs one pass with paranoid)."""
    return os.environ.get("HIVE_CHECK_PLAN", "off")


def _default_faults_seed() -> int:
    """Fault-injection seed; HIVE_FAULTS_SEED lets a whole test run opt
    in (the CI ``faults`` job replays the tier-1 suite under injection)."""
    return int(os.environ.get("HIVE_FAULTS_SEED", "0"))


def _default_faults_rate() -> float:
    """Default task-failure / IO-error rate, from HIVE_FAULTS_RATE."""
    return float(os.environ.get("HIVE_FAULTS_RATE", "0"))


@dataclass
class CostModelConf:
    """Constants for the simulated-time cost model.

    All times are in (virtual) seconds; throughputs in bytes per second.
    Values are calibrated so that relative effects match the paper's
    cluster (10 nodes, 10 GbE, 2 x 6TB disks): the absolute scale is
    arbitrary, the ratios are what the experiments measure.
    """

    #: time to allocate and launch a YARN container (Section 5, bottleneck
    #: for low-latency queries when LLAP is disabled).  Containers for a
    #: query's DAG are allocated once, up front.
    container_startup_s: float = 2.5
    #: scheduling overhead to dispatch a fragment to an LLAP executor.
    llap_dispatch_s: float = 0.02
    #: disk scan throughput per node.
    disk_bytes_per_s: float = 200e6
    #: LLAP in-memory cache read throughput per node.
    cache_bytes_per_s: float = 4e9
    #: network shuffle throughput per node (10 GbE shared).
    network_bytes_per_s: float = 1.0e9
    #: per-row CPU cost for row-at-a-time (non-vectorized) operators.
    row_cpu_s: float = 1.0e-6
    #: per-row CPU cost under vectorized execution.
    vector_cpu_s: float = 2.5e-7
    #: multiplier applied to CPU work on cold JIT (fresh container); LLAP
    #: daemons are long-lived so their code is always warm.
    jit_cold_multiplier: float = 1.3
    #: fixed per-query compile/submit overhead in HS2.
    compile_overhead_s: float = 0.15
    #: compile/submit overhead when the serving layer's compiled plan
    #: cache hits: the statement skips parse/analyze/optimize and only
    #: pays the handle lookup + DAG submission.
    plan_cache_hit_compile_s: float = 0.01
    #: per-vertex task setup cost inside an already-running container.
    task_setup_s: float = 0.05
    #: per-file open cost (namenode round trip + footer read) — what
    #: makes uncompacted delta pile-ups expensive (Section 3.2).
    file_open_s: float = 0.05
    #: per-row cost of the merge-on-read anti-join against delete
    #: deltas; deliberately row-at-a-time (not vectorizable), matching
    #: the Section 8 discussion of the first ACID design's penalty.
    merge_row_s: float = 4.0e-7
    #: virtual dataset magnification: every byte and row the runtime
    #: observes is charged as ``data_scale`` of them.  Benchmarks use
    #: this to model the paper's 10 TB runs with laptop-sized inputs —
    #: the relative effects (startup vs IO vs CPU) then match large-
    #: scale behaviour (see DESIGN.md, substitutions).
    data_scale: float = 1.0


@dataclass
class HiveConf:
    """Complete configuration for one warehouse instance or session."""

    # ------------------------------------------------------------------ #
    # identification
    name: str = "hive-3.1"

    # ------------------------------------------------------------------ #
    # SQL surface (Figure 7: legacy Hive 1.2 lacked these)
    support_setops: bool = True           # INTERSECT / EXCEPT
    support_correlated_subqueries: bool = True
    support_nonequi_correlation: bool = True
    support_interval_notation: bool = True
    support_order_by_unselected: bool = True
    support_grouping_sets: bool = True
    support_window_functions: bool = True

    # ------------------------------------------------------------------ #
    # optimizer (Section 4)
    cbo_enabled: bool = True              # Calcite-style cost-based stages
    join_reordering: bool = True
    filter_pushdown: bool = True
    project_pruning: bool = True
    constant_folding: bool = True
    partition_pruning: bool = True
    shared_work_optimization: bool = True  # Section 4.5
    semijoin_reduction: bool = True        # Section 4.6
    semijoin_bloom_fpp: float = 0.05
    mv_rewriting: bool = True              # Section 4.4
    federation_pushdown: bool = True       # Section 6.2
    #: plan-invariant validation (repro.lint.plan_check):
    #: "off" | "on" (validate after every optimizer stage) |
    #: "paranoid" (validate after every individual rule too)
    check_plan: str = field(default_factory=_default_check_plan)
    #: escalates ``check_plan`` to paranoid regardless of its value
    check_plan_paranoid: bool = False

    # ------------------------------------------------------------------ #
    # re-optimization (Section 4.2): "overlay" | "reoptimize" | "off"
    reexecution_strategy: str = "reoptimize"
    max_reexecutions: int = 1
    #: config overrides applied on every re-execution (overlay strategy)
    reexecution_overlay: dict = field(default_factory=dict)
    #: feed runtime statistics persisted in HMS back into the optimizer
    #: on every compilation (§9 roadmap).  Off by default: observed
    #: cardinalities go stale when data changes, so opting in is a
    #: workload decision (the paper cites LEO / Oracle adaptive stats).
    runtime_stats_feedback: bool = False
    #: simulated per-query memory budget for hash-join build sides, in
    #: rows; None = unlimited.  Exceeding it raises OutOfMemoryError,
    #: which triggers re-execution.
    hash_join_memory_rows: Optional[int] = None

    # ------------------------------------------------------------------ #
    # result cache (Section 4.3)
    results_cache_enabled: bool = True
    results_cache_max_entries: int = 64
    results_cache_wait_pending: bool = True

    # ------------------------------------------------------------------ #
    # serving layer (repro.service — the HiveServer2 front door).
    # All knobs are SET-able under their hive.server2.* aliases.
    #: virtual seconds a pooled session may sit idle before the
    #: housekeeper tick expires it (hive.server2.session.ttl.s)
    server2_session_ttl_s: float = 600.0
    #: open-session quota per tenant (hive.server2.tenant.max.sessions)
    server2_max_sessions_per_tenant: int = 64
    #: wall-clock seconds a submission may wait in the admission queue
    #: before it is rejected (hive.server2.admission.queue.timeout.s)
    server2_queue_timeout_s: float = 30.0
    #: run-slot limit for pools with no active WM resource plan, and
    #: for the implicit "default" pool (hive.server2.default.parallelism)
    server2_default_parallelism: int = 8
    #: compiled plan cache: repeated statements skip parse/analyze/
    #: optimize (hive.server2.plan.cache.enabled)
    plan_cache_enabled: bool = True
    #: LRU bound on compiled plans (hive.server2.plan.cache.max.entries)
    plan_cache_max_entries: int = 256

    # ------------------------------------------------------------------ #
    # runtime (Section 5)
    vectorized_execution: bool = True
    #: lower expressions once per plan into fused numpy kernels
    #: (hive.vectorized.compile.enabled); off = per-batch interpreter
    vectorized_compile: bool = True
    #: fuse Filter->Project so the selection mask is applied only to
    #: projected columns (hive.vectorized.fusion.enabled)
    vectorized_fusion: bool = True
    llap_enabled: bool = True
    llap_cache_enabled: bool = True
    llap_io_threads: int = 4
    llap_executors_per_daemon: int = 8
    llap_cache_capacity_bytes: int = 512 << 20
    container_reuse: bool = False          # Tez container reuse w/o LLAP

    # ------------------------------------------------------------------ #
    # observability (repro.obs)
    #: ring-buffer capacity of the in-memory query log; evicted entries
    #: spill to the overflow store so ``sys.query_log`` stays complete
    obs_query_log_capacity: int = 1000
    #: a vertex is flagged a straggler when its modeled
    #: max-task/median-task duration ratio reaches this factor
    straggler_skew_threshold: float = 2.0
    #: monitor endpoint port; > 0 starts the HTTP server at that port
    #: on warehouse construction, 0 leaves it to an explicit
    #: ``obs.start_http()`` call (which binds an ephemeral port)
    monitor_http_port: int = 0
    #: virtual seconds between cluster-state timeseries samples
    #: (<= 0 disables interval sampling; ``/metrics`` scrapes still
    #: record scrape-time samples)
    monitor_sample_interval_s: float = 5.0
    #: ring-buffer capacity per timeseries label-series
    monitor_timeseries_capacity: int = 512
    #: lock sanitizer long-hold threshold in wall seconds
    #: (``hive.lint.sanitize.longhold.s``): a sanitized lock held
    #: longer than this is reported in ``sys.lint_findings``.  Only
    #: consulted when the process runs under ``HIVE_SANITIZE=1``.
    lint_sanitize_longhold_s: float = 5.0
    #: query store (fingerprint-level workload history; sys.query_store)
    qstore_enabled: bool = True
    #: max fingerprints retained (LRU on last virtual use)
    qstore_capacity: int = 512
    #: virtual seconds per latency window; samples from completed
    #: windows form the per-fingerprint regression baseline
    qstore_window_s: float = 300.0
    #: regression fires when current-window p95 exceeds baseline p95
    #: by more than this factor
    qstore_regression_threshold: float = 1.5
    #: minimum samples required on both sides before comparing
    qstore_regression_min_samples: int = 5
    #: bound on deduplicated findings in sys.query_store_events
    qstore_max_events: int = 512
    #: column-level lineage extraction (``hive.lineage.enabled``);
    #: when off, post-exec hooks skip the plan walk
    lineage_enabled: bool = True
    #: max statement fingerprints retained in the lineage graph
    #: (``hive.lineage.capacity``, LRU on last record)
    lineage_capacity: int = 512
    #: ring-buffer capacity of the per-tenant audit log
    #: (``hive.audit.capacity``); evicted records spill to the
    #: overflow store so ``sys.audit_log`` stays complete
    audit_capacity: int = 1000
    #: wall-clock budget per execution hook (``hive.hook.timeout.s``);
    #: a hook exceeding it is quarantined for subsequent statements
    hook_timeout_s: float = 1.0

    # ------------------------------------------------------------------ #
    # ACID (Section 3.2)
    acid_enabled: bool = True
    compaction_delta_threshold: int = 10   # minor compaction trigger
    compaction_delta_pct_threshold: float = 0.1  # major trigger: delta/base rows
    txn_lock_timeout_s: float = 5.0
    #: virtual seconds without a heartbeat before AcidHouseKeeper aborts
    #: an open transaction and releases its locks
    txn_timeout_s: float = 300.0
    #: bound on how long a caller waits on a pending results-cache entry
    #: before presuming the elected computer dead and computing itself
    results_cache_pending_timeout_s: float = 30.0

    # ------------------------------------------------------------------ #
    # fault injection & recovery (repro.faults; §3.2/§4 failure paths).
    # Rates are probabilities in [0, 1]; decisions are deterministic in
    # ``faults_seed`` so injected runs are reproducible.
    faults_seed: int = field(default_factory=_default_faults_seed)
    faults_task_fail_rate: float = field(default_factory=_default_faults_rate)
    faults_io_error_rate: float = field(default_factory=_default_faults_rate)
    faults_node_fail_rate: float = 0.0
    faults_slow_node_rate: float = 0.0
    faults_slow_node_multiplier: float = 4.0
    faults_lock_stall_rate: float = 0.0
    #: bounded task attempts (1 initial + up to N-1 retries); the final
    #: attempt always succeeds (blacklisting), so faults cost time only
    task_max_attempts: int = 4
    #: base for the exponential retry backoff charged into virtual time
    task_retry_backoff_s: float = 0.1
    #: launch a backup attempt for injected stragglers (Tez speculation);
    #: acts only on fault-injected slowness, never on data skew, so it is
    #: a no-op in fault-free runs
    speculative_execution: bool = True

    # ------------------------------------------------------------------ #
    # cluster shape (matches the paper's testbed by default)
    num_nodes: int = 10
    cores_per_node: int = 8

    cost: CostModelConf = field(default_factory=CostModelConf)

    # ------------------------------------------------------------------ #
    def copy(self, **overrides) -> "HiveConf":
        """Return a copy with ``overrides`` applied (unknown keys raise)."""
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ConfigError(f"unknown configuration keys: {sorted(unknown)}")
        clone = dataclasses.replace(self, cost=dataclasses.replace(self.cost))
        for key, value in overrides.items():
            setattr(clone, key, value)
        clone.validate()
        return clone

    @property
    def plan_check_mode(self) -> str:
        """Canonical plan-check mode: "off" | "on" | "paranoid"."""
        mode = _CHECK_PLAN_MODES.get(str(self.check_plan).lower())
        if mode is None:
            raise ConfigError(
                f"invalid check_plan value {self.check_plan!r}: expected "
                "one of off/on/paranoid (or true/false synonyms)")
        if self.check_plan_paranoid:
            return "paranoid"
        return mode

    def validate(self) -> None:
        if self.reexecution_strategy not in ("overlay", "reoptimize", "off"):
            raise ConfigError(
                f"invalid reexecution_strategy {self.reexecution_strategy!r}")
        self.plan_check_mode   # raises ConfigError on a bad check_plan
        if not isinstance(self.check_plan_paranoid, bool):
            raise ConfigError(
                "check_plan_paranoid must be a boolean, got "
                f"{self.check_plan_paranoid!r}")
        if not 0.0 < self.semijoin_bloom_fpp < 1.0:
            raise ConfigError("semijoin_bloom_fpp must be in (0, 1)")
        if self.num_nodes < 1 or self.cores_per_node < 1:
            raise ConfigError("cluster must have >= 1 node and >= 1 core")
        if self.max_reexecutions < 0:
            raise ConfigError("max_reexecutions must be >= 0")
        if self.obs_query_log_capacity < 1:
            raise ConfigError("obs_query_log_capacity must be >= 1")
        if self.straggler_skew_threshold <= 1.0:
            raise ConfigError(
                "straggler_skew_threshold must be > 1.0 (ratio of max "
                "to median task duration)")
        if not 0 <= self.monitor_http_port <= 65535:
            raise ConfigError(
                "monitor_http_port must be in [0, 65535]")
        if self.monitor_timeseries_capacity < 2:
            raise ConfigError(
                "monitor_timeseries_capacity must be >= 2 (rate() "
                "needs two samples)")
        if self.lint_sanitize_longhold_s <= 0:
            raise ConfigError(
                "lint_sanitize_longhold_s must be > 0 (wall seconds)")
        if self.qstore_capacity < 1:
            raise ConfigError("qstore_capacity must be >= 1")
        if self.qstore_window_s <= 0.0:
            raise ConfigError(
                "qstore_window_s must be > 0 (virtual seconds)")
        if self.qstore_regression_threshold <= 1.0:
            raise ConfigError(
                "qstore_regression_threshold must be > 1.0 (a ratio "
                "of current to baseline p95)")
        if self.qstore_regression_min_samples < 1:
            raise ConfigError(
                "qstore_regression_min_samples must be >= 1")
        if self.qstore_max_events < 1:
            raise ConfigError("qstore_max_events must be >= 1")
        if self.lineage_capacity < 1:
            raise ConfigError("lineage_capacity must be >= 1")
        if self.audit_capacity < 1:
            raise ConfigError("audit_capacity must be >= 1")
        if self.hook_timeout_s <= 0.0:
            raise ConfigError(
                "hook_timeout_s must be > 0 (wall seconds)")
        for rate_name in ("faults_task_fail_rate", "faults_io_error_rate",
                          "faults_node_fail_rate", "faults_slow_node_rate",
                          "faults_lock_stall_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"{rate_name} must be in [0, 1], got {rate!r}")
        if self.faults_slow_node_multiplier < 1.0:
            raise ConfigError("faults_slow_node_multiplier must be >= 1.0")
        if self.task_max_attempts < 1:
            raise ConfigError("task_max_attempts must be >= 1")
        if self.task_retry_backoff_s < 0.0:
            raise ConfigError("task_retry_backoff_s must be >= 0")
        if self.txn_timeout_s <= 0.0:
            raise ConfigError("txn_timeout_s must be > 0")
        if self.results_cache_pending_timeout_s <= 0.0:
            raise ConfigError("results_cache_pending_timeout_s must be > 0")
        if self.server2_session_ttl_s <= 0.0:
            raise ConfigError("server2_session_ttl_s must be > 0")
        if self.server2_max_sessions_per_tenant < 1:
            raise ConfigError(
                "server2_max_sessions_per_tenant must be >= 1")
        if self.server2_queue_timeout_s <= 0.0:
            raise ConfigError("server2_queue_timeout_s must be > 0")
        if self.server2_default_parallelism < 1:
            raise ConfigError("server2_default_parallelism must be >= 1")
        if self.plan_cache_max_entries < 1:
            raise ConfigError("plan_cache_max_entries must be >= 1")

    # ------------------------------------------------------------------ #
    @classmethod
    def v3_profile(cls) -> "HiveConf":
        """Hive 3.1 with LLAP — the fully featured system."""
        return cls(name="hive-3.1-llap")

    @classmethod
    def v3_container_profile(cls) -> "HiveConf":
        """Hive 3.1 running on plain Tez containers (Table 1 baseline)."""
        return cls(name="hive-3.1-container", llap_enabled=False,
                   llap_cache_enabled=False)

    @classmethod
    def legacy_profile(cls) -> "HiveConf":
        """Hive 1.2 on Tez 0.5 — the Figure 7 baseline.

        Rule-based optimizer only, row-at-a-time execution, fresh
        containers for every query, restricted SQL support.
        """
        return cls(
            name="hive-1.2",
            support_setops=False,
            support_correlated_subqueries=True,
            support_nonequi_correlation=False,
            support_interval_notation=False,
            support_order_by_unselected=False,
            support_grouping_sets=False,
            support_window_functions=True,
            cbo_enabled=False,
            join_reordering=False,
            shared_work_optimization=False,
            semijoin_reduction=False,
            mv_rewriting=False,
            federation_pushdown=False,
            reexecution_strategy="off",
            results_cache_enabled=False,
            plan_cache_enabled=False,
            vectorized_execution=False,
            llap_enabled=False,
            llap_cache_enabled=False,
            acid_enabled=False,
        )
