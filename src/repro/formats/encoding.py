"""Binary encoding primitives for the columnar file format.

Little-endian, length-prefixed framing.  These helpers keep the file
format byte-accurate (real serialization round-trips through ``bytes``)
without pulling in pickle, so file sizes honestly reflect encoding
choices — the optimizer's IO cost model depends on them.
"""

from __future__ import annotations

import struct

from ..errors import HiveError


class CorruptFileError(HiveError):
    """Framing or magic-number validation failed."""


class ByteWriter:
    """Append-only binary buffer."""

    def __init__(self):
        self._parts: list[bytes] = []
        self._size = 0

    def write_bytes(self, data: bytes) -> None:
        self._parts.append(data)
        self._size += len(data)

    def write_u8(self, value: int) -> None:
        self.write_bytes(struct.pack("<B", value))

    def write_i32(self, value: int) -> None:
        self.write_bytes(struct.pack("<i", value))

    def write_i64(self, value: int) -> None:
        self.write_bytes(struct.pack("<q", value))

    def write_f64(self, value: float) -> None:
        self.write_bytes(struct.pack("<d", value))

    def write_blob(self, data: bytes) -> None:
        """Length-prefixed byte string."""
        self.write_i32(len(data))
        self.write_bytes(data)

    def write_str(self, text: str) -> None:
        self.write_blob(text.encode("utf-8"))

    def size(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ByteReader:
    """Sequential binary reader with bounds checking."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    def read_bytes(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CorruptFileError(
                f"attempted to read {n} bytes past end of buffer")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def read_u8(self) -> int:
        return struct.unpack("<B", self.read_bytes(1))[0]

    def read_i32(self) -> int:
        return struct.unpack("<i", self.read_bytes(4))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self.read_bytes(8))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self.read_bytes(8))[0]

    def read_blob(self) -> bytes:
        n = self.read_i32()
        if n < 0:
            raise CorruptFileError(f"negative blob length {n}")
        return self.read_bytes(n)

    def read_str(self) -> str:
        return self.read_blob().decode("utf-8")

    def tell(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos
