"""Delimited text file format.

Hive's original storage format and still the interchange default.  Used
here by the legacy profile's ETL examples and as the simplest SerDe for
the storage-handler interface.  ``\\N`` marks NULL, fields are separated
by ``\\x01`` by default (Hive's historical ctrl-A delimiter).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..common.rows import Schema
from ..common.vector import VectorBatch
from ..errors import HiveError

NULL_TOKEN = "\\N"
DEFAULT_DELIMITER = "\x01"


class TextWriter:
    """Serializes rows to delimited text."""

    def __init__(self, schema: Schema, delimiter: str = DEFAULT_DELIMITER):
        self.schema = schema
        self.delimiter = delimiter
        self._lines: list[str] = []

    def write_rows(self, rows: Iterable[Sequence]) -> None:
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise HiveError(
                    f"row has {len(row)} fields, schema has {width}")
            fields = [NULL_TOKEN if v is None else str(v) for v in row]
            for f in fields:
                if self.delimiter in f:
                    raise HiveError("field value contains the delimiter")
            self._lines.append(self.delimiter.join(fields))

    def write_batch(self, batch: VectorBatch) -> None:
        self.write_rows(batch.to_rows())

    def finish(self) -> bytes:
        return ("\n".join(self._lines) + ("\n" if self._lines else "")
                ).encode("utf-8")


class TextReader:
    """Deserializes delimited text back into typed rows."""

    def __init__(self, schema: Schema, data: bytes,
                 delimiter: str = DEFAULT_DELIMITER):
        self.schema = schema
        self.delimiter = delimiter
        self._text = data.decode("utf-8")

    def read_rows(self) -> list[tuple]:
        rows = []
        types = self.schema.types()
        for line_no, line in enumerate(self._text.splitlines(), 1):
            parts = line.split(self.delimiter)
            if len(parts) != len(types):
                raise HiveError(
                    f"line {line_no}: expected {len(types)} fields, "
                    f"got {len(parts)}")
            row = []
            for raw, dtype in zip(parts, types):
                if raw == NULL_TOKEN:
                    row.append(None)
                else:
                    row.append(_parse(raw, dtype))
            rows.append(tuple(row))
        return rows

    def read_batch(self) -> VectorBatch:
        return VectorBatch.from_rows(self.schema, self.read_rows())


def _parse(raw: str, dtype):
    family = dtype._family()
    if family in ("INT", "BIGINT"):
        return int(raw)
    if family in ("DOUBLE", "DECIMAL"):
        return float(raw)
    if family == "BOOLEAN":
        return raw.lower() in ("true", "1", "t")
    if family == "DATE":
        import datetime
        return datetime.date.fromisoformat(raw)
    if family == "TIMESTAMP":
        import datetime
        return datetime.datetime.fromisoformat(raw)
    return raw
