"""ORC-like columnar file format.

A faithful miniature of the ORC design the paper relies on (Sections 3.2
and 5.1):

* data is split into **row groups** (default 4096 rows) stored column-wise,
* every column stream is run-length encoded (:mod:`repro.common.rle`),
* the footer records, per row group and column, the byte range of the
  stream plus **min/max statistics** and an optional **Bloom filter**,
* readers evaluate *sargable* predicates against the footer to skip entire
  row groups without touching their bytes — the file-format half of the
  I/O-elevator pushdown and of dynamic semijoin reduction.

Layout::

    [column streams, row group by row group]
    [footer]
    [footer length : i64][magic "PORC"]

The footer is cheap to read relative to the data (LLAP caches it
separately as "metadata"), so ``OrcReader`` can be constructed from the
tail of the file only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..common import rle
from ..common.bloom import BloomFilter
from ..common.rows import Column, Schema
from ..common.types import DataType, type_from_name
from ..common.vector import ColumnVector, VectorBatch
from ..errors import HiveError
from .encoding import ByteReader, ByteWriter, CorruptFileError

MAGIC = b"PORC"
DEFAULT_ROW_GROUP_SIZE = 4096

# canonical literal-stream dtypes per type family
_STREAM_DTYPES = {
    "BOOLEAN": np.dtype(np.uint8),
    "INT": np.dtype(np.int64),
    "BIGINT": np.dtype(np.int64),
    "DOUBLE": np.dtype(np.float64),
    "DECIMAL": np.dtype(np.float64),
    "DATE": np.dtype(np.int32),
    "TIMESTAMP": np.dtype(np.int64),
}


# --------------------------------------------------------------------------- #
# sargable predicates

@dataclass(frozen=True)
class SargPredicate:
    """A pushed-down predicate the reader can evaluate on footer stats.

    ``op`` is one of ``= < <= > >= in between``; ``value`` is the literal
    (a tuple for ``in``/``between``).  Values must already be in storage
    representation (e.g. DATE as days since epoch).
    """

    column: str
    op: str
    value: object

    def matches_range(self, lo, hi, null_count: int, num_rows: int) -> bool:
        """Can any row in a group with stats [lo, hi] satisfy this?"""
        if lo is None or hi is None:
            # all-null group: only IS NULL could match, which is not sargable
            return null_count > 0 and num_rows == null_count and False or (
                lo is not None)
        if self.op == "=":
            return lo <= self.value <= hi
        if self.op == "<":
            return lo < self.value
        if self.op == "<=":
            return lo <= self.value
        if self.op == ">":
            return hi > self.value
        if self.op == ">=":
            return hi >= self.value
        if self.op == "in":
            return any(lo <= v <= hi for v in self.value)
        if self.op == "between":
            low, high = self.value
            return not (hi < low or lo > high)
        raise HiveError(f"unknown sarg op {self.op!r}")


# --------------------------------------------------------------------------- #
# footer metadata

@dataclass
class ColumnStats:
    """Per-column, per-row-group statistics."""

    min_value: object = None
    max_value: object = None
    null_count: int = 0

    def update(self, value) -> None:
        if value is None:
            self.null_count += 1
            return
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value


@dataclass
class ColumnChunkMeta:
    """Location + stats of one column stream within one row group."""

    offset: int
    length: int
    stats: ColumnStats
    bloom: BloomFilter | None = None


@dataclass
class RowGroupMeta:
    num_rows: int
    columns: list[ColumnChunkMeta] = field(default_factory=list)

    def byte_range(self) -> tuple[int, int]:
        start = min(c.offset for c in self.columns)
        end = max(c.offset + c.length for c in self.columns)
        return start, end - start


# --------------------------------------------------------------------------- #
# value stream codecs

def _family(dtype: DataType) -> str:
    return dtype._family()


def _encode_stream(writer: ByteWriter, dtype: DataType,
                   vector: ColumnVector) -> None:
    """RLE-encode nulls and values of one column chunk."""
    family = _family(dtype)
    null_runs = rle.encode(vector.nulls.astype(np.uint8))
    _write_runs(writer, null_runs, "BOOLEAN")
    if family == "STRING":
        # normalize nulls to "" so runs compress
        data = vector.data.copy()
        data[vector.nulls] = ""
        value_runs = rle.encode(data)
    else:
        data = vector.data.astype(_STREAM_DTYPES[family], copy=True)
        if vector.nulls.any():
            data[vector.nulls] = 0
        value_runs = rle.encode(data)
    _write_runs(writer, value_runs, family)


def _decode_stream(reader: ByteReader, dtype: DataType,
                   num_rows: int) -> ColumnVector:
    family = _family(dtype)
    null_runs = _read_runs(reader, "BOOLEAN")
    nulls = rle.decode(null_runs, np.dtype(np.uint8)).astype(bool)
    value_runs = _read_runs(reader, family)
    if family == "STRING":
        data = rle.decode(value_runs, np.dtype(object))
    else:
        data = rle.decode(value_runs, _STREAM_DTYPES[family])
        data = data.astype(dtype.numpy_dtype, copy=False)
    if len(data) != num_rows or len(nulls) != num_rows:
        raise CorruptFileError("column stream length mismatch")
    return ColumnVector(dtype, data, nulls)


def _write_value(writer: ByteWriter, family: str, value) -> None:
    if family == "STRING":
        writer.write_str(str(value))
    elif family in ("DOUBLE", "DECIMAL"):
        writer.write_f64(float(value))
    elif family == "BOOLEAN":
        writer.write_u8(int(value))
    else:
        writer.write_i64(int(value))


def _read_value(reader: ByteReader, family: str):
    if family == "STRING":
        return reader.read_str()
    if family in ("DOUBLE", "DECIMAL"):
        return reader.read_f64()
    if family == "BOOLEAN":
        return reader.read_u8()
    return reader.read_i64()


def _write_runs(writer: ByteWriter, runs: list, family: str) -> None:
    writer.write_i32(len(runs))
    for run in runs:
        if isinstance(run, rle.RepeatRun):
            writer.write_u8(0)
            writer.write_i32(run.count)
            _write_value(writer, family, run.value)
        else:
            writer.write_u8(1)
            writer.write_i32(len(run.values))
            if family == "STRING":
                for v in run.values:
                    writer.write_str(str(v))
            else:
                stream_dtype = (_STREAM_DTYPES["BOOLEAN"] if family == "BOOLEAN"
                                else _STREAM_DTYPES[family])
                writer.write_bytes(
                    np.ascontiguousarray(
                        run.values.astype(stream_dtype)).tobytes())


def _read_runs(reader: ByteReader, family: str) -> list:
    count = reader.read_i32()
    runs = []
    for _ in range(count):
        tag = reader.read_u8()
        if tag == 0:
            run_len = reader.read_i32()
            runs.append(rle.RepeatRun(run_len, _read_value(reader, family)))
        elif tag == 1:
            run_len = reader.read_i32()
            if family == "STRING":
                values = np.empty(run_len, dtype=object)
                for i in range(run_len):
                    values[i] = reader.read_str()
            else:
                stream_dtype = (_STREAM_DTYPES["BOOLEAN"] if family == "BOOLEAN"
                                else _STREAM_DTYPES[family])
                raw = reader.read_bytes(run_len * stream_dtype.itemsize)
                values = np.frombuffer(raw, dtype=stream_dtype).copy()
            runs.append(rle.LiteralRun(values))
        else:
            raise CorruptFileError(f"bad run tag {tag}")
    return runs


def _write_bloom(writer: ByteWriter, bloom: BloomFilter | None) -> None:
    if bloom is None:
        writer.write_u8(0)
        return
    writer.write_u8(1)
    writer.write_i64(bloom.expected_items)
    writer.write_f64(bloom.fpp)
    writer.write_i64(bloom.num_bits)
    writer.write_i32(bloom.num_hashes)
    writer.write_i64(bloom.count)
    writer.write_blob(bloom.bits.tobytes())


def _read_bloom(reader: ByteReader) -> BloomFilter | None:
    if reader.read_u8() == 0:
        return None
    expected = reader.read_i64()
    fpp = reader.read_f64()
    bloom = BloomFilter(expected, fpp)
    bloom.num_bits = reader.read_i64()
    bloom.num_hashes = reader.read_i32()
    bloom.count = reader.read_i64()
    bloom.bits = np.frombuffer(reader.read_blob(), dtype=np.uint8).copy()
    return bloom


def _write_stats(writer: ByteWriter, family: str, stats: ColumnStats) -> None:
    writer.write_i64(stats.null_count)
    if stats.min_value is None:
        writer.write_u8(0)
    else:
        writer.write_u8(1)
        _write_value(writer, family, stats.min_value)
        _write_value(writer, family, stats.max_value)


def _read_stats(reader: ByteReader, family: str) -> ColumnStats:
    stats = ColumnStats()
    stats.null_count = reader.read_i64()
    if reader.read_u8() == 1:
        stats.min_value = _read_value(reader, family)
        stats.max_value = _read_value(reader, family)
    return stats


# --------------------------------------------------------------------------- #
# writer

class OrcWriter:
    """Builds one file; call :meth:`finish` to obtain the bytes.

    ``bloom_columns`` selects which columns get per-row-group Bloom
    filters (Hive: ``orc.bloom.filter.columns``).
    """

    def __init__(self, schema: Schema,
                 row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
                 bloom_columns: Sequence[str] = (),
                 bloom_fpp: float = 0.05):
        if row_group_size < 1:
            raise HiveError("row_group_size must be positive")
        self.schema = schema
        self.row_group_size = row_group_size
        self.bloom_columns = {c.lower() for c in bloom_columns}
        self.bloom_fpp = bloom_fpp
        self._pending: list[VectorBatch] = []
        self._pending_rows = 0
        self._writer = ByteWriter()
        self._row_groups: list[RowGroupMeta] = []
        self._num_rows = 0
        self._finished = False

    # -- ingestion --------------------------------------------------------- #
    def write_rows(self, rows: Iterable[Sequence]) -> None:
        rows = list(rows)
        if rows:
            self.write_batch(VectorBatch.from_rows(self.schema, rows))

    def write_batch(self, batch: VectorBatch) -> None:
        if self._finished:
            raise HiveError("writer already finished")
        if batch.num_rows == 0:
            return
        self._pending.append(batch)
        self._pending_rows += batch.num_rows
        while self._pending_rows >= self.row_group_size:
            self._flush_row_group(self.row_group_size)

    def _take_pending(self, n: int) -> VectorBatch:
        merged = VectorBatch.concat(self.schema, self._pending)
        chunk = merged.slice(0, n)
        rest = merged.slice(n, merged.num_rows)
        self._pending = [rest] if rest.num_rows else []
        self._pending_rows = rest.num_rows
        return chunk

    def _flush_row_group(self, n: int) -> None:
        chunk = self._take_pending(n)
        meta = RowGroupMeta(num_rows=chunk.num_rows)
        for col, vector in zip(self.schema, chunk.vectors):
            offset = self._writer.size()
            _encode_stream(self._writer, col.dtype, vector)
            length = self._writer.size() - offset
            stats = ColumnStats()
            bloom = None
            values = vector.data
            nulls = vector.nulls
            if col.name.lower() in self.bloom_columns:
                bloom = BloomFilter(max(chunk.num_rows, 8), self.bloom_fpp)
            for i in range(chunk.num_rows):
                if nulls[i]:
                    stats.update(None)
                    continue
                value = values[i]
                if isinstance(value, np.generic):
                    value = value.item()
                stats.update(value)
                if bloom is not None:
                    bloom.add(value)
            meta.columns.append(
                ColumnChunkMeta(offset, length, stats, bloom))
        self._row_groups.append(meta)
        self._num_rows += chunk.num_rows

    # -- finalization ------------------------------------------------------- #
    def finish(self) -> bytes:
        if self._finished:
            raise HiveError("writer already finished")
        if self._pending_rows:
            self._flush_row_group(self._pending_rows)
        self._finished = True
        footer = ByteWriter()
        footer.write_i64(self._num_rows)
        footer.write_i32(len(self.schema))
        for col in self.schema:
            footer.write_str(col.name)
            footer.write_str(_family(col.dtype))
            footer.write_u8(1 if col.nullable else 0)
        footer.write_i32(len(self._row_groups))
        for group in self._row_groups:
            footer.write_i64(group.num_rows)
            for col, chunk in zip(self.schema, group.columns):
                footer.write_i64(chunk.offset)
                footer.write_i64(chunk.length)
                _write_stats(footer, _family(col.dtype), chunk.stats)
                _write_bloom(footer, chunk.bloom)
        footer_bytes = footer.getvalue()
        self._writer.write_bytes(footer_bytes)
        self._writer.write_bytes(
            len(footer_bytes).to_bytes(8, "little", signed=True))
        self._writer.write_bytes(MAGIC)
        return self._writer.getvalue()


# --------------------------------------------------------------------------- #
# reader

class OrcReader:
    """Reads a file written by :class:`OrcWriter`.

    The constructor only parses the footer; data bytes are decoded lazily
    per row group so callers (the I/O elevator) can account cache hits and
    ranged reads per ``(row group, column)``.
    """

    def __init__(self, data: bytes):
        if len(data) < 12 or data[-4:] != MAGIC:
            raise CorruptFileError("not a PORC file")
        footer_len = int.from_bytes(data[-12:-4], "little", signed=True)
        footer_start = len(data) - 12 - footer_len
        if footer_start < 0:
            raise CorruptFileError("footer length out of range")
        self._data = data
        self.metadata_bytes = footer_len + 12
        reader = ByteReader(data, footer_start)
        self.num_rows = reader.read_i64()
        num_cols = reader.read_i32()
        columns = []
        for _ in range(num_cols):
            name = reader.read_str()
            family = reader.read_str()
            nullable = reader.read_u8() == 1
            columns.append(Column(name, type_from_name(
                "DECIMAL" if family == "DECIMAL" else family), nullable))
        self.schema = Schema(columns)
        group_count = reader.read_i32()
        self.row_groups: list[RowGroupMeta] = []
        for _ in range(group_count):
            group = RowGroupMeta(num_rows=reader.read_i64())
            for col in self.schema:
                offset = reader.read_i64()
                length = reader.read_i64()
                stats = _read_stats(reader, _family(col.dtype))
                bloom = _read_bloom(reader)
                group.columns.append(
                    ColumnChunkMeta(offset, length, stats, bloom))
            self.row_groups.append(group)

    # -- pruning ----------------------------------------------------------- #
    def select_row_groups(self,
                          sargs: Sequence[SargPredicate] = ()) -> list[int]:
        """Indices of row groups that may contain matching rows.

        Conjunction semantics: a group survives only if every predicate
        can match.  ``=``/``in`` predicates additionally probe the Bloom
        filter when present.
        """
        selected = []
        for gi, group in enumerate(self.row_groups):
            if self._group_matches(group, sargs):
                selected.append(gi)
        return selected

    def _group_matches(self, group: RowGroupMeta,
                       sargs: Sequence[SargPredicate]) -> bool:
        for sarg in sargs:
            if sarg.column not in self.schema:
                continue
            chunk = group.columns[self.schema.index_of(sarg.column)]
            stats = chunk.stats
            if stats.min_value is None and stats.null_count == group.num_rows:
                return False  # all NULL can never satisfy a sarg
            if not sarg.matches_range(stats.min_value, stats.max_value,
                                      stats.null_count, group.num_rows):
                return False
            if chunk.bloom is not None:
                if sarg.op == "=" and not chunk.bloom.might_contain(
                        _plain(sarg.value)):
                    return False
                if sarg.op == "in" and not any(
                        chunk.bloom.might_contain(_plain(v))
                        for v in sarg.value):
                    return False
        return True

    # -- decoding ----------------------------------------------------------- #
    def read_column(self, group_index: int, column: str) -> ColumnVector:
        group = self.row_groups[group_index]
        col_index = self.schema.index_of(column)
        chunk = group.columns[col_index]
        reader = ByteReader(self._data, chunk.offset)
        return _decode_stream(reader, self.schema[col_index].dtype,
                              group.num_rows)

    def read_row_group(self, group_index: int,
                       columns: Sequence[str] | None = None) -> VectorBatch:
        names = list(columns) if columns is not None else self.schema.names()
        schema = self.schema.select(names)
        vectors = [self.read_column(group_index, n) for n in names]
        return VectorBatch(schema, vectors)

    def read_all(self, columns: Sequence[str] | None = None,
                 sargs: Sequence[SargPredicate] = ()) -> VectorBatch:
        names = list(columns) if columns is not None else self.schema.names()
        schema = self.schema.select(names)
        groups = self.select_row_groups(sargs)
        batches = [self.read_row_group(g, names) for g in groups]
        return VectorBatch.concat(schema, batches)

    def column_chunk_bytes(self, group_index: int, column: str) -> int:
        group = self.row_groups[group_index]
        return group.columns[self.schema.index_of(column)].length


def _plain(value):
    return value.item() if isinstance(value, np.generic) else value
