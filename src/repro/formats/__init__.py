"""File formats: ORC-like columnar container and delimited text."""

from .orc import OrcReader, OrcWriter, SargPredicate
from .text import TextReader, TextWriter

__all__ = ["OrcReader", "OrcWriter", "SargPredicate", "TextReader",
           "TextWriter"]
