"""JDBC storage handler backed by an embedded SQLite engine.

The paper notes Hive "can push operations to ... multiple engines with
JDBC support using Calcite", which "can generate SQL queries from
operator expressions using a large number of different dialects".  This
handler does exactly that: the operator chain above a scan is rendered
back to SQL text and executed by the external RDBMS (Python's bundled
``sqlite3``, standing in for any JDBC source).
"""

from __future__ import annotations

import datetime
import sqlite3
from typing import Optional, Sequence

from ..common.rows import Schema
from ..common.types import DataType
from ..errors import FederationError
from ..metastore.catalog import TableDescriptor
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from .handler import StorageHandler

#: simulated per-row transfer latency and connection overhead
CONNECTION_OVERHEAD_S = 0.050
ROW_TRANSFER_S = 4.0e-6
ROW_PROCESS_S = 8.0e-7


class JdbcStorageHandler(StorageHandler):
    """Federates to an in-process SQLite database."""

    name = "jdbc"

    def __init__(self, connection: Optional[sqlite3.Connection] = None):
        self.connection = connection or sqlite3.connect(":memory:")

    # -- metastore hook -------------------------------------------------------- #
    def remote_table(self, table: TableDescriptor) -> str:
        return table.properties.get("hive.sql.table", table.name)

    def on_create_table(self, table: TableDescriptor) -> None:
        remote = self.remote_table(table)
        exists = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name=?", (remote,)).fetchone()
        if exists:
            return
        if not len(table.schema):
            raise FederationError(
                f"remote table {remote} does not exist and no columns "
                "were declared")
        columns = ", ".join(
            f"{c.name} {_sqlite_type(c.dtype)}" for c in table.schema)
        self.connection.execute(f"CREATE TABLE {remote} ({columns})")
        self.connection.commit()

    def on_drop_table(self, table: TableDescriptor) -> None:
        if table.properties.get("hive.sql.retain") != "true":
            self.connection.execute(
                f"DROP TABLE IF EXISTS {self.remote_table(table)}")
            self.connection.commit()

    def infer_schema(self, table: TableDescriptor) -> Optional[Schema]:
        return None  # SQLite types are too loose to infer reliably

    # -- IO ------------------------------------------------------------------ #
    def scan_table(self, table: TableDescriptor,
                   columns: Sequence[str]) -> tuple[list[tuple], float]:
        remote = self.remote_table(table)
        select = ", ".join(columns)
        cursor = self.connection.execute(
            f"SELECT {select} FROM {remote}")
        rows = [self._deserialize(table, columns, row)
                for row in cursor.fetchall()]
        seconds = CONNECTION_OVERHEAD_S + len(rows) * (
            ROW_PROCESS_S + ROW_TRANSFER_S)
        self.record_external_call(table, "scan", len(rows), seconds)
        return rows, seconds

    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple]) -> None:
        if not rows:
            return
        remote = self.remote_table(table)
        marks = ", ".join("?" for _ in table.schema)
        payload = [tuple(_serialize(c.dtype, v)
                         for c, v in zip(table.schema, row))
                   for row in rows]
        self.connection.executemany(
            f"INSERT INTO {remote} VALUES ({marks})", payload)
        self.connection.commit()

    def _deserialize(self, table: TableDescriptor,
                     columns: Sequence[str], row: tuple) -> tuple:
        types = [table.schema.field(c).dtype if c in table.schema
                 else None for c in columns]
        return tuple(_deserialize_value(t, v)
                     for t, v in zip(types, row))

    # -- pushdown ----------------------------------------------------------------- #
    def try_pushdown(self, table: TableDescriptor,
                     chain: list[rel.RelNode],
                     scan: rel.TableScan
                     ) -> Optional[tuple[str, Schema, int]]:
        generator = _SqlGenerator(self.remote_table(table), scan.schema)
        return generator.translate(chain)

    def execute_pushed(self, table: TableDescriptor,
                       query: str) -> tuple[list[tuple], float]:
        cursor = self.connection.execute(query)
        rows = cursor.fetchall()
        # the remote engine did the heavy lifting; charge per result row
        seconds = CONNECTION_OVERHEAD_S + len(rows) * ROW_TRANSFER_S \
            + self._estimate_scan_cost(table)
        self.record_external_call(table, "pushdown", len(rows), seconds)
        return [tuple(row) for row in rows], seconds

    def _estimate_scan_cost(self, table: TableDescriptor) -> float:
        remote = self.remote_table(table)
        try:
            count = self.connection.execute(
                f"SELECT COUNT(*) FROM {remote}").fetchone()[0]
        except sqlite3.Error:
            count = 0
        return count * ROW_PROCESS_S


# --------------------------------------------------------------------------- #
# SQL generation (the Calcite dialect writer)

class _SqlGenerator:
    def __init__(self, remote_table: str, scan_schema: Schema):
        self.remote_table = remote_table
        self.scan_schema = scan_schema

    def translate(self, chain: list[rel.RelNode]
                  ) -> Optional[tuple[str, Schema, int]]:
        where = ""
        schema = self.scan_schema
        select = ", ".join(c.name for c in schema)
        group = ""
        order = ""
        limit = ""
        consumed = 0
        i = 0
        if i < len(chain) and isinstance(chain[i], rel.Filter):
            rendered = _render_predicate(chain[i].condition, schema)
            if rendered is None:
                return self._finish(select, where, group, order, limit,
                                    schema, consumed)
            where = f" WHERE {rendered}"
            consumed = i + 1
            i += 1
        pre_map: Optional[list[int]] = None
        if i + 1 < len(chain) and isinstance(chain[i], rel.Project) \
                and isinstance(chain[i + 1], rel.Aggregate) \
                and all(isinstance(e, rex.RexInputRef)
                        for e in chain[i].exprs):
            pre_map = [e.index for e in chain[i].exprs]
            i += 1
        if i < len(chain) and isinstance(chain[i], rel.Aggregate):
            aggregate = chain[i]
            rendered = self._render_aggregate(aggregate, schema, pre_map)
            if rendered is None:
                return self._finish(select, where, group, order, limit,
                                    schema, consumed)
            select, group = rendered
            schema = aggregate.schema
            consumed = i + 1
            i += 1
            if i < len(chain) and isinstance(chain[i], rel.Sort) \
                    and chain[i].fetch is not None:
                sort = chain[i]
                names = schema.names()
                keys = ", ".join(
                    f"{names[k.index]}{'' if k.ascending else ' DESC'}"
                    for k in sort.keys)
                order = f" ORDER BY {keys}"
                limit = f" LIMIT {sort.fetch}"
                consumed = i + 1
                i += 1
        return self._finish(select, where, group, order, limit, schema,
                            consumed)

    def _finish(self, select, where, group, order, limit, schema,
                consumed):
        sql = (f"SELECT {select} FROM {self.remote_table}"
               f"{where}{group}{order}{limit}")
        return sql, schema, consumed

    def _render_aggregate(self, aggregate: rel.Aggregate, schema: Schema,
                          pre_map: Optional[list[int]]):
        if aggregate.grouping_sets is not None:
            return None

        def name_of(i: int) -> str:
            return schema[pre_map[i] if pre_map is not None else i].name

        out_names = aggregate.schema.names()
        parts = []
        keys = []
        for pos, key in enumerate(aggregate.group_keys):
            column = name_of(key)
            keys.append(column)
            parts.append(f"{column} AS {out_names[pos]}")
        base = len(aggregate.group_keys)
        for pos, call in enumerate(aggregate.agg_calls):
            if call.distinct:
                return None
            if call.func not in ("sum", "count", "min", "max", "avg"):
                return None
            arg = "*" if call.arg is None else name_of(call.arg)
            parts.append(f"{call.func.upper()}({arg}) AS "
                         f"{out_names[base + pos]}")
        select = ", ".join(parts)
        group = f" GROUP BY {', '.join(keys)}" if keys else ""
        return select, group


def _render_predicate(condition: rex.RexNode,
                      schema: Schema) -> Optional[str]:
    parts = []
    for conjunct in rex.conjunctions(condition):
        rendered = _render_conjunct(conjunct, schema)
        if rendered is None:
            return None
        parts.append(rendered)
    return " AND ".join(parts)


def _render_conjunct(conjunct: rex.RexNode,
                     schema: Schema) -> Optional[str]:
    if not isinstance(conjunct, rex.RexCall):
        return None
    if conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
        a, b = conjunct.operands
        left = _render_operand(a, schema)
        right = _render_operand(b, schema)
        if left is None or right is None:
            return None
        return f"{left} {conjunct.op} {right}"
    if conjunct.op == "IN":
        ref = _render_operand(conjunct.operands[0], schema)
        if ref is None:
            return None
        values = []
        for operand in conjunct.operands[1:]:
            rendered = _render_operand(operand, schema)
            if rendered is None:
                return None
            values.append(rendered)
        return f"{ref} IN ({', '.join(values)})"
    if conjunct.op == "LIKE":
        ref = _render_operand(conjunct.operands[0], schema)
        pattern = _render_operand(conjunct.operands[1], schema)
        if ref is None or pattern is None:
            return None
        return f"{ref} LIKE {pattern}"
    return None


def _render_operand(operand: rex.RexNode,
                    schema: Schema) -> Optional[str]:
    if isinstance(operand, rex.RexInputRef):
        return schema[operand.index].name
    if isinstance(operand, rex.RexLiteral):
        value = operand.value
        if value is None:
            return "NULL"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, datetime.date):
            return str(operand.dtype.to_storage(value))
        return str(value)
    return None


def _sqlite_type(dtype: DataType) -> str:
    family = dtype._family()
    if family in ("INT", "BIGINT", "BOOLEAN", "DATE", "TIMESTAMP"):
        return "INTEGER"
    if family in ("DOUBLE", "DECIMAL"):
        return "REAL"
    return "TEXT"


def _serialize(dtype: DataType, value):
    if value is None:
        return None
    return dtype.to_storage(value)


def _deserialize_value(dtype: Optional[DataType], value):
    if value is None or dtype is None:
        return value
    return dtype.from_storage(value)
