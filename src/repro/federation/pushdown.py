"""Computation pushdown rule (Section 6.2, Figure 6).

Walks the optimized plan top-down looking for operator chains
(Sort/Limit → Project → Aggregate → Project → Filter) that bottom out in
a scan of a handler-backed table.  The handler's translator converts the
longest pushable prefix (scan-adjacent first) into an engine-native
query; the consumed operators are replaced by a single
:class:`~repro.plan.relnodes.TableScan` carrying ``pushed_query``, whose
schema equals the consumed prefix's output so any unconsumed operators
stack on top unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..metastore.hms import HiveMetastore
from ..plan import relnodes as rel

_CHAIN_OPS = (rel.Filter, rel.Project, rel.Aggregate, rel.Sort,
              rel.Limit)


def make_pushdown_rule(hms: HiveMetastore, handlers: dict):
    """Build the optimizer callback for the registered handlers."""

    def rule(root: rel.RelNode) -> rel.RelNode:
        return _apply(root, hms, handlers)

    return rule


def _apply(node: rel.RelNode, hms: HiveMetastore,
           handlers: dict) -> rel.RelNode:
    replaced = _try_chain(node, hms, handlers)
    if replaced is not None:
        return replaced
    new_inputs = [_apply(child, hms, handlers) for child in node.inputs]
    if list(node.inputs) != new_inputs:
        return node.with_inputs(new_inputs)
    return node


def _try_chain(node: rel.RelNode, hms: HiveMetastore,
               handlers: dict) -> Optional[rel.RelNode]:
    chain: list[rel.RelNode] = []
    cursor = node
    while isinstance(cursor, _CHAIN_OPS):
        chain.append(cursor)
        cursor = cursor.inputs[0]
    if not isinstance(cursor, rel.TableScan):
        return None
    scan = cursor
    if scan.pushed_query is not None:
        return None
    try:
        table = hms.get_table(scan.table_name)
    except Exception:
        return None
    if table.storage_handler is None:
        return None
    handler = handlers.get(table.storage_handler)
    if handler is None:
        return None
    bottom_up = list(reversed(chain))
    translated = handler.try_pushdown(table, bottom_up, scan)
    if translated is None:
        return None
    query, schema, consumed = translated
    pushed_scan = rel.TableScan(
        scan.table_name, schema, pushed_query=query,
        scan_id=scan.scan_id)
    result: rel.RelNode = pushed_scan
    # reapply unconsumed operators (they reference the same ordinals)
    for op in bottom_up[consumed:]:
        result = op.with_inputs([result])
    return result
