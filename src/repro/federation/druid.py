"""A miniature Druid: time-partitioned OLAP store + storage handler.

Reproduces the pieces of Druid the paper's federation experiment relies
on (Sections 6.1-6.2, Figure 8):

* **segments**: data is partitioned by time interval; queries prune
  segments by interval before touching rows,
* **inverted indexes** on dimension columns: selector/in filters resolve
  to row ids without scanning,
* a **JSON-style query language** (scan / timeseries / topN / groupBy)
  with filters, aggregations and a limitSpec — the translator emits these
  from relational operator chains exactly like Figure 6,
* a cost model tuned for filtered aggregation: Druid's specialized
  storage makes per-row aggregation cheaper than a general SQL runtime,
  which is why pushing computation wins.

The handler implements the full storage-handler contract: metastore
hooks, schema inference from Druid metadata, SerDe in both directions,
and Calcite-style pushdown.
"""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..common.rows import Column, Schema
from ..common.types import DOUBLE, DataType
from ..errors import FederationError
from ..metastore.catalog import TableDescriptor
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from .handler import StorageHandler

_MS_PER_DAY = 86_400_000


@dataclass
class DruidCostModel:
    """Simulated latency constants for the mini Druid."""

    broker_overhead_s: float = 0.030
    segment_overhead_s: float = 0.002
    row_scan_s: float = 3.0e-8        # vectorized column scan per row
    indexed_lookup_s: float = 2.0e-8  # per row id produced by an index
    agg_row_s: float = 6.0e-8         # specialized aggregation per row
    result_row_s: float = 2.0e-7
    #: historical-node parallelism: segments are scanned concurrently
    #: across the cluster's cores
    parallelism: int = 80
    #: virtual dataset magnification — keep equal to the Hive side's
    #: ``CostModelConf.data_scale`` for apples-to-apples comparisons
    data_scale: float = 1.0


# --------------------------------------------------------------------------- #
# query model

@dataclass
class DruidQuery:
    """A JSON-style Druid query (Figure 6c)."""

    query_type: str                       # scan|timeseries|topN|groupBy
    datasource: str
    intervals: Optional[list[tuple[int, int]]] = None   # [lo, hi) in ms
    filter: Optional[dict] = None
    dimensions: list[str] = field(default_factory=list)
    aggregations: list[dict] = field(default_factory=list)
    limit_spec: Optional[dict] = None
    columns: list[str] = field(default_factory=list)
    granularity: str = "all"

    def to_json(self) -> str:
        body: dict = {"queryType": self.query_type,
                      "dataSource": self.datasource,
                      "granularity": self.granularity}
        if self.intervals is not None:
            body["intervals"] = [
                f"{_iso(lo)}/{_iso(hi)}" for lo, hi in self.intervals]
        if self.filter is not None:
            body["filter"] = self.filter
        if self.dimensions:
            body["dimensions"] = self.dimensions
        if self.aggregations:
            body["aggregations"] = self.aggregations
        if self.limit_spec is not None:
            body["limitSpec"] = self.limit_spec
        if self.columns:
            body["columns"] = self.columns
        return json.dumps(body, indent=1)

    def __repr__(self) -> str:
        return (f"DruidQuery({self.query_type} on {self.datasource}, "
                f"dims={self.dimensions}, aggs={len(self.aggregations)})")


def _iso(ms: int) -> str:
    if ms <= -4_000_000_000_000:
        return "-146136543-09-08T08:23:32.096"   # Druid's MIN_INSTANT
    if ms >= 4_000_000_000_000:
        return "146140482-04-24T15:36:27.903"    # Druid's MAX_INSTANT
    return datetime.datetime.utcfromtimestamp(ms / 1000).strftime(
        "%Y-%m-%dT%H:%M:%S.000")


# --------------------------------------------------------------------------- #
# storage

class DruidSegment:
    """One time chunk of a datasource, stored column-wise."""

    def __init__(self, interval: tuple[int, int],
                 columns: dict[str, np.ndarray]):
        self.interval = interval
        self.columns = columns
        self.num_rows = len(next(iter(columns.values()))) if columns else 0
        self._indexes: dict[str, dict] = {}

    def index_of(self, dimension: str) -> dict:
        """Lazily built inverted index: value -> row-id array."""
        index = self._indexes.get(dimension)
        if index is None:
            index = {}
            column = self.columns[dimension]
            for i, value in enumerate(column):
                key = value.item() if hasattr(value, "item") else value
                index.setdefault(key, []).append(i)
            index = {k: np.asarray(v, dtype=np.int64)
                     for k, v in index.items()}
            self._indexes[dimension] = index
        return index


class DruidDataSource:
    """A named table inside the engine."""

    def __init__(self, name: str, schema: Schema, time_column: str,
                 dimensions: list[str], metrics: list[str],
                 segment_granularity_days: int = 30):
        self.name = name
        self.schema = schema
        self.time_column = time_column
        self.dimensions = dimensions
        self.metrics = metrics
        self.segment_granularity_days = segment_granularity_days
        self.segments: list[DruidSegment] = []

    @property
    def num_rows(self) -> int:
        return sum(s.num_rows for s in self.segments)

    def ingest(self, rows: Sequence[tuple]) -> int:
        """Partition rows into time-chunk segments and append them."""
        if not rows:
            return 0
        names = self.schema.names()
        time_idx = names.index(self.time_column) \
            if self.time_column in names else None
        chunks: dict[int, list[tuple]] = {}
        for row in rows:
            if time_idx is None:
                bucket = 0
            else:
                ms = _to_ms(row[time_idx])
                bucket = ms // (_MS_PER_DAY
                                * self.segment_granularity_days)
            chunks.setdefault(bucket, []).append(row)
        for bucket, chunk in sorted(chunks.items()):
            lo = bucket * _MS_PER_DAY * self.segment_granularity_days
            hi = lo + _MS_PER_DAY * self.segment_granularity_days
            columns: dict[str, np.ndarray] = {}
            for j, column in enumerate(self.schema):
                values = [_storage_value(column.dtype, row[j])
                          for row in chunk]
                np_dtype = column.dtype.numpy_dtype
                if np_dtype == np.dtype(object):
                    arr = np.empty(len(values), dtype=object)
                    arr[:] = values
                else:
                    arr = np.asarray(values, dtype=np_dtype)
                columns[column.name] = arr
            self.segments.append(DruidSegment((lo, hi), columns))
        return len(rows)


def _to_ms(value) -> int:
    if isinstance(value, datetime.datetime):
        return int(value.timestamp() * 1000)
    if isinstance(value, datetime.date):
        return (value - datetime.date(1970, 1, 1)).days * _MS_PER_DAY
    if isinstance(value, (int, float)):
        return int(value)
    raise FederationError(f"cannot interpret {value!r} as a timestamp")


def _storage_value(dtype: DataType, value):
    if value is None:
        return "" if dtype.numpy_dtype == np.dtype(object) else 0
    return dtype.to_storage(value)


# --------------------------------------------------------------------------- #
# engine

class DruidEngine:
    """The standalone OLAP store (one per deployment)."""

    def __init__(self, cost: Optional[DruidCostModel] = None):
        self.datasources: dict[str, DruidDataSource] = {}
        self.cost = cost or DruidCostModel()
        self.queries_served = 0

    # -- DDL -------------------------------------------------------------- #
    def create_datasource(self, name: str, schema: Schema,
                          time_column: str, dimensions: list[str],
                          metrics: list[str]) -> DruidDataSource:
        if name in self.datasources:
            raise FederationError(f"datasource {name} already exists")
        ds = DruidDataSource(name, schema, time_column, dimensions,
                             metrics)
        self.datasources[name] = ds
        return ds

    def drop_datasource(self, name: str) -> None:
        self.datasources.pop(name, None)

    def get(self, name: str) -> DruidDataSource:
        try:
            return self.datasources[name]
        except KeyError:
            raise FederationError(f"no such datasource: {name}") from None

    # -- query execution ---------------------------------------------------- #
    def execute(self, query: DruidQuery) -> tuple[list[tuple], float]:
        """Run a query; returns (rows, simulated latency seconds)."""
        ds = self.get(query.datasource)
        self.queries_served += 1
        scale = self.cost.data_scale / max(1, self.cost.parallelism)
        cost = self.cost.broker_overhead_s
        matched_total = 0
        segments_touched = 0

        groups: dict[tuple, list] = {}
        scan_rows: list[tuple] = []
        agg_specs = query.aggregations
        dims = query.dimensions

        for segment in ds.segments:
            if query.intervals is not None and not _overlaps(
                    segment.interval, query.intervals):
                continue
            segments_touched += 1
            row_ids, filter_cost = _apply_filter(segment, query.filter,
                                                 self.cost)
            cost += filter_cost
            if row_ids is not None and len(row_ids) == 0:
                continue
            n = segment.num_rows if row_ids is None else len(row_ids)
            matched_total += n
            if query.query_type == "scan":
                cost += n * scale * self.cost.row_scan_s
                columns = [segment.columns[c] for c in query.columns]
                ids = row_ids if row_ids is not None else np.arange(
                    segment.num_rows)
                for i in ids:
                    scan_rows.append(tuple(
                        _plain(col[i]) for col in columns))
                continue
            cost += n * scale * self.cost.agg_row_s * max(1, len(agg_specs))
            dim_cols = [segment.columns[d] for d in dims]
            agg_cols = [segment.columns[a["fieldName"]]
                        if a.get("fieldName") else None
                        for a in agg_specs]
            ids = row_ids if row_ids is not None else range(
                segment.num_rows)
            for i in ids:
                key = tuple(_plain(c[i]) for c in dim_cols)
                state = groups.get(key)
                if state is None:
                    state = [_agg_init(a) for a in agg_specs]
                    groups[key] = state
                for k, (spec, col) in enumerate(zip(agg_specs, agg_cols)):
                    state[k] = _agg_update(spec, state[k],
                                           None if col is None
                                           else _plain(col[i]))

        cost += segments_touched * self.cost.segment_overhead_s

        if query.query_type == "scan":
            cost += len(scan_rows) * scale * self.cost.result_row_s
            return scan_rows, cost

        rows = [key + tuple(state) for key, state in groups.items()]
        if not dims and not rows:
            rows = [tuple(_agg_init(a) for a in agg_specs)]
        if query.limit_spec is not None:
            rows = _apply_limit_spec(rows, dims, agg_specs,
                                     query.limit_spec)
        cost += len(rows) * self.cost.result_row_s
        return rows, cost


def _overlaps(interval: tuple[int, int],
              wanted: list[tuple[int, int]]) -> bool:
    lo, hi = interval
    return any(lo < whi and wlo < hi for wlo, whi in wanted)


def _apply_filter(segment: DruidSegment, spec: Optional[dict],
                  cost_model: DruidCostModel
                  ) -> tuple[Optional[np.ndarray], float]:
    """Returns (row ids or None for all, simulated cost)."""
    if spec is None:
        return None, 0.0
    kind = spec["type"]
    if kind == "and":
        ids = None
        cost = 0.0
        for sub in spec["fields"]:
            sub_ids, sub_cost = _apply_filter(segment, sub, cost_model)
            cost += sub_cost
            if sub_ids is None:
                continue
            ids = sub_ids if ids is None else np.intersect1d(
                ids, sub_ids, assume_unique=False)
        return ids, cost
    if kind == "or":
        parts = []
        cost = 0.0
        for sub in spec["fields"]:
            sub_ids, sub_cost = _apply_filter(segment, sub, cost_model)
            cost += sub_cost
            if sub_ids is None:
                return None, cost
            parts.append(sub_ids)
        merged = np.unique(np.concatenate(parts)) if parts else \
            np.empty(0, dtype=np.int64)
        return merged, cost
    if kind == "not":
        sub_ids, cost = _apply_filter(segment, spec["field"], cost_model)
        everything = np.arange(segment.num_rows)
        if sub_ids is None:
            return np.empty(0, dtype=np.int64), cost
        return np.setdiff1d(everything, sub_ids), cost
    if kind == "selector":
        index = segment.index_of(spec["dimension"])
        ids = index.get(spec["value"], np.empty(0, dtype=np.int64))
        return ids, (len(ids) * cost_model.data_scale
                     * cost_model.indexed_lookup_s
                     / max(1, cost_model.parallelism))
    if kind == "in":
        index = segment.index_of(spec["dimension"])
        parts = [index.get(v, np.empty(0, dtype=np.int64))
                 for v in spec["values"]]
        ids = np.unique(np.concatenate(parts)) if parts else \
            np.empty(0, dtype=np.int64)
        return ids, (len(ids) * cost_model.data_scale
                     * cost_model.indexed_lookup_s
                     / max(1, cost_model.parallelism))
    if kind == "bound":
        column = segment.columns[spec["dimension"]]
        mask = np.ones(segment.num_rows, dtype=bool)
        lower = spec.get("lower")
        upper = spec.get("upper")
        if lower is not None:
            mask &= (column > lower) if spec.get("lowerStrict") \
                else (column >= lower)
        if upper is not None:
            mask &= (column < upper) if spec.get("upperStrict") \
                else (column <= upper)
        ids = np.nonzero(mask)[0]
        return ids, (segment.num_rows * cost_model.data_scale
                     * cost_model.row_scan_s
                     / max(1, cost_model.parallelism))
    raise FederationError(f"unknown filter type {kind!r}")


def _agg_init(spec: dict):
    kind = spec["type"]
    if kind == "count":
        return 0
    if kind in ("doubleSum", "longSum", "floatSum"):
        return 0 if kind == "longSum" else 0.0
    if kind in ("doubleMin", "longMin"):
        return None
    if kind in ("doubleMax", "longMax"):
        return None
    raise FederationError(f"unknown aggregation {kind!r}")


def _agg_update(spec: dict, state, value):
    kind = spec["type"]
    if kind == "count":
        return state + 1
    if value is None:
        return state
    if kind.endswith("Sum"):
        return state + value
    if kind.endswith("Min"):
        return value if state is None or value < state else state
    if kind.endswith("Max"):
        return value if state is None or value > state else state
    raise FederationError(kind)


def _apply_limit_spec(rows: list[tuple], dims: list[str],
                      agg_specs: list[dict], limit_spec: dict):
    names = list(dims) + [a["name"] for a in agg_specs]
    for order in reversed(limit_spec.get("columns", [])):
        idx = names.index(order["dimension"])
        descending = order.get("direction") == "descending"
        rows.sort(key=lambda r: ((r[idx] is None), r[idx]
                                 if r[idx] is not None else 0),
                  reverse=descending)
    limit = limit_spec.get("limit")
    return rows[:limit] if limit is not None else rows


def _plain(value):
    return value.item() if hasattr(value, "item") else value


# --------------------------------------------------------------------------- #
# the storage handler

class DruidStorageHandler(StorageHandler):
    """Connects Hive tables to a :class:`DruidEngine` (Section 6.1)."""

    name = "druid"

    def __init__(self, engine: DruidEngine):
        self.engine = engine

    # -- metastore hook -------------------------------------------------------- #
    def datasource_name(self, table: TableDescriptor) -> str:
        return table.properties.get("druid.datasource", table.name)

    def on_create_table(self, table: TableDescriptor) -> None:
        name = self.datasource_name(table)
        if name in self.engine.datasources:
            return  # mapping an existing datasource
        if not len(table.schema):
            raise FederationError(
                f"datasource {name} does not exist and the table "
                "declares no columns")
        time_column = None
        dimensions: list[str] = []
        metrics: list[str] = []
        for column in table.schema:
            family = column.dtype._family()
            if family in ("DATE", "TIMESTAMP") and time_column is None:
                time_column = column.name
            elif family in ("DOUBLE", "DECIMAL"):
                metrics.append(column.name)
            else:
                dimensions.append(column.name)
        self.engine.create_datasource(
            name, table.schema, time_column or "", dimensions, metrics)

    def on_drop_table(self, table: TableDescriptor) -> None:
        if table.properties.get("druid.datasource.retain") != "true":
            self.engine.drop_datasource(self.datasource_name(table))

    def infer_schema(self, table: TableDescriptor) -> Optional[Schema]:
        name = self.datasource_name(table)
        if name in self.engine.datasources:
            return self.engine.datasources[name].schema
        return None

    # -- IO ------------------------------------------------------------------ #
    def scan_table(self, table: TableDescriptor,
                   columns: Sequence[str]) -> tuple[list[tuple], float]:
        ds = self.engine.get(self.datasource_name(table))
        query = DruidQuery("scan", ds.name, columns=list(columns))
        rows, seconds = self.engine.execute(query)
        self.record_external_call(table, "scan", len(rows), seconds)
        return [self._deserialize(table, columns, row)
                for row in rows], seconds

    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple]) -> None:
        ds = self.engine.get(self.datasource_name(table))
        ds.ingest(rows)

    def _deserialize(self, table: TableDescriptor,
                     columns: Sequence[str], row: tuple) -> tuple:
        types = [table.schema.field(c).dtype for c in columns]
        return tuple(t.from_storage(v) if v is not None else None
                     for t, v in zip(types, row))

    # -- pushdown (Section 6.2) --------------------------------------------------- #
    def try_pushdown(self, table: TableDescriptor,
                     chain: list[rel.RelNode],
                     scan: rel.TableScan
                     ) -> Optional[tuple[DruidQuery, Schema, int]]:
        translator = _DruidTranslator(self, table, scan)
        return translator.translate(chain)

    def execute_pushed(self, table: TableDescriptor,
                       query: DruidQuery) -> tuple[list[tuple], float]:
        rows, seconds = self.engine.execute(query)
        self.record_external_call(table, "pushdown", len(rows), seconds)
        return rows, seconds


class _DruidTranslator:
    """Greedy operator-chain → DruidQuery translation."""

    def __init__(self, handler: DruidStorageHandler,
                 table: TableDescriptor, scan: rel.TableScan):
        self.handler = handler
        self.table = table
        self.scan = scan
        self.ds = handler.engine.get(handler.datasource_name(table))

    def translate(self, chain: list[rel.RelNode]
                  ) -> Optional[tuple[DruidQuery, Schema, int]]:
        """``chain`` is bottom-up (scan-adjacent first).

        Returns (query, output schema of the consumed prefix, consumed
        count), or None when nothing beyond a raw scan can be pushed.
        """
        query = DruidQuery("scan", self.ds.name,
                           columns=[c.name for c in self.scan.schema])
        schema = self.scan.schema
        consumed = 0
        i = 0
        aggregated = False
        # 1. filter
        if i < len(chain) and isinstance(chain[i], rel.Filter):
            spec, intervals = self._filter_spec(chain[i].condition, schema)
            if spec is not None or intervals is not None:
                query.filter = spec
                query.intervals = intervals
                consumed = i + 1
                i += 1
            else:
                return self._finish(query, schema, consumed, aggregated)
        # 2. optional pre-projection of plain columns
        pre_map: Optional[list[int]] = None
        if i < len(chain) and isinstance(chain[i], rel.Project) \
                and i + 1 < len(chain) \
                and isinstance(chain[i + 1], rel.Aggregate):
            project = chain[i]
            if all(isinstance(e, rex.RexInputRef) for e in project.exprs):
                pre_map = [e.index for e in project.exprs]
                i += 1
            else:
                return self._finish(query, schema, consumed, aggregated)
        # 3. aggregate
        if i < len(chain) and isinstance(chain[i], rel.Aggregate):
            aggregate = chain[i]
            converted = self._aggregate_spec(aggregate, schema, pre_map)
            if converted is None:
                return self._finish(query, schema, consumed, aggregated)
            query.dimensions, query.aggregations = converted
            query.columns = []
            aggregated = True
            schema = aggregate.schema
            consumed = i + 1
            i += 1
        # 3b. identity post-projection (renaming) folds into the result
        if aggregated and i < len(chain) and isinstance(
                chain[i], rel.Project):
            project = chain[i]
            identity = (len(project.exprs) == len(schema) and all(
                isinstance(e, rex.RexInputRef) and e.index == j
                for j, e in enumerate(project.exprs)))
            if identity:
                schema = project.schema
                consumed = i + 1
                i += 1
        # 4. sort + limit over aggregate output
        if aggregated and i < len(chain) and isinstance(
                chain[i], rel.Sort) and chain[i].fetch is not None:
            sort = chain[i]
            # limitSpec must use the engine's internal output names
            internal = list(query.dimensions) + [
                a["name"] for a in query.aggregations]
            query.limit_spec = {
                "limit": sort.fetch,
                "columns": [
                    {"dimension": internal[k.index],
                     "direction": "descending" if not k.ascending
                     else "ascending"}
                    for k in sort.keys]}
            consumed = i + 1
            i += 1
        return self._finish(query, schema, consumed, aggregated)

    def _finish(self, query: DruidQuery, schema: Schema, consumed: int,
                aggregated: bool):
        if aggregated:
            if not query.dimensions:
                query.query_type = "timeseries"
            elif len(query.dimensions) == 1 and query.limit_spec:
                query.query_type = "topN"
            else:
                query.query_type = "groupBy"
        return query, schema, consumed

    # -- filter conversion --------------------------------------------------------- #
    def _filter_spec(self, condition: rex.RexNode, schema: Schema):
        intervals: list[tuple[int, int]] = []
        specs: list[dict] = []
        for conjunct in rex.conjunctions(condition):
            spec = self._conjunct_spec(conjunct, schema, intervals)
            if spec is None and not intervals:
                return None, None
            if spec is not None:
                specs.append(spec)
        combined: Optional[dict]
        if not specs:
            combined = None
        elif len(specs) == 1:
            combined = specs[0]
        else:
            combined = {"type": "and", "fields": specs}
        merged_intervals = _merge_intervals(intervals) if intervals \
            else None
        return combined, merged_intervals

    def _conjunct_spec(self, conjunct: rex.RexNode, schema: Schema,
                       intervals: list) -> Optional[dict]:
        if not isinstance(conjunct, rex.RexCall):
            return None
        year_spec = self._extract_year_spec(conjunct, schema, intervals)
        if year_spec is not None:
            return year_spec
        if conjunct.op == "IN":
            ref = conjunct.operands[0]
            if not isinstance(ref, rex.RexInputRef):
                return None
            values = []
            for operand in conjunct.operands[1:]:
                if not isinstance(operand, rex.RexLiteral):
                    return None
                values.append(ref.dtype.to_storage(operand.value))
            return {"type": "in", "dimension": schema[ref.index].name,
                    "values": values}
        if conjunct.op in ("=", "<", "<=", ">", ">="):
            a, b = conjunct.operands
            if isinstance(a, rex.RexInputRef) and isinstance(
                    b, rex.RexLiteral):
                ref, literal, op = a, b, conjunct.op
            elif isinstance(b, rex.RexInputRef) and isinstance(
                    a, rex.RexLiteral):
                ref, literal = b, a
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                      "=": "="}[conjunct.op]
            else:
                return None
            column = schema[ref.index].name
            value = ref.dtype.to_storage(literal.value)
            if column == self.ds.time_column and op != "=" \
                    and ref.dtype._family() in ("DATE", "TIMESTAMP"):
                ms = value * _MS_PER_DAY \
                    if ref.dtype._family() == "DATE" else value
                if op in (">", ">="):
                    intervals.append((ms if op == ">=" else ms + 1,
                                      2**62))
                else:
                    intervals.append((-2**62,
                                      ms + 1 if op == "<=" else ms))
                # also emit the bound so row filtering stays exact
            if op == "=":
                return {"type": "selector", "dimension": column,
                        "value": value}
            spec: dict = {"type": "bound", "dimension": column}
            if op in (">", ">="):
                spec["lower"] = value
                spec["lowerStrict"] = (op == ">")
            else:
                spec["upper"] = value
                spec["upperStrict"] = (op == "<")
            return spec
        return None

    def _extract_year_spec(self, conjunct: rex.RexCall, schema: Schema,
                           intervals: list) -> Optional[dict]:
        """Figure 6's pattern: EXTRACT(year FROM t) <op> Y becomes a

        bound on the temporal column (plus a broker interval when the
        column is the datasource's time column)."""
        import datetime
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            return None
        a, b = conjunct.operands
        if isinstance(a, rex.RexCall) and isinstance(b, rex.RexLiteral):
            call, literal, op = a, b, conjunct.op
        elif isinstance(b, rex.RexCall) and isinstance(a, rex.RexLiteral):
            call, literal = b, a
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                  "=": "="}[conjunct.op]
        else:
            return None
        if call.op != "EXTRACT_YEAR" or len(call.operands) != 1:
            return None
        ref = call.operands[0]
        if not isinstance(ref, rex.RexInputRef):
            return None
        family = ref.dtype._family()
        if family not in ("DATE", "TIMESTAMP"):
            return None
        year = int(literal.value)
        column = schema[ref.index].name

        def boundary(y: int):
            day = datetime.date(y, 1, 1)
            days = (day - datetime.date(1970, 1, 1)).days
            return days if family == "DATE" else days * _MS_PER_DAY

        lower = upper = None           # [lower, upper) in storage units
        if op in (">=", "="):
            lower = boundary(year)
        if op == ">":
            lower = boundary(year + 1)
        if op in ("<=", "="):
            upper = boundary(year + 1)
        if op == "<":
            upper = boundary(year)
        if column == self.ds.time_column:
            ms = _MS_PER_DAY if family == "DATE" else 1
            intervals.append((lower * ms if lower is not None else -2**62,
                              upper * ms if upper is not None else 2**62))
        spec: dict = {"type": "bound", "dimension": column}
        if lower is not None:
            spec["lower"] = lower
            spec["lowerStrict"] = False
        if upper is not None:
            spec["upper"] = upper
            spec["upperStrict"] = True
        return spec

    # -- aggregate conversion ---------------------------------------------------- #
    def _aggregate_spec(self, aggregate: rel.Aggregate, schema: Schema,
                        pre_map: Optional[list[int]]):
        if aggregate.grouping_sets is not None:
            return None

        def source_ordinal(i: int) -> int:
            return pre_map[i] if pre_map is not None else i

        dims = []
        for key in aggregate.group_keys:
            dims.append(schema[source_ordinal(key)].name)
        aggs = []
        for call in aggregate.agg_calls:
            if call.distinct:
                return None
            if call.func == "count" and call.arg is None:
                aggs.append({"type": "count", "name": call.name})
                continue
            if call.arg is None:
                return None
            column = schema[source_ordinal(call.arg)]
            if call.func == "sum":
                kind = ("doubleSum" if column.dtype._family()
                        in ("DOUBLE", "DECIMAL") else "longSum")
            elif call.func == "min":
                kind = ("doubleMin" if column.dtype._family()
                        in ("DOUBLE", "DECIMAL") else "longMin")
            elif call.func == "max":
                kind = ("doubleMax" if column.dtype._family()
                        in ("DOUBLE", "DECIMAL") else "longMax")
            else:
                return None
            aggs.append({"type": kind, "name": call.name,
                         "fieldName": column.name})
        return dims, aggs


def _merge_intervals(intervals: list[tuple[int, int]]
                     ) -> list[tuple[int, int]]:
    """Intersect accumulated one-sided bounds into a single interval."""
    lo = max((a for a, _ in intervals), default=-2**62)
    hi = min((b for _, b in intervals), default=2**62)
    if lo >= hi:
        return [(0, 0)]
    return [(lo, hi)]
