"""Kafka storage handler (the §9 roadmap connector, implemented).

A miniature Kafka: a broker holds named **topics**, each a set of
append-only **partitions** of ``(offset, timestamp_ms, payload)`` records.
The storage handler maps a Hive table to a topic; scans expose the
metadata pseudo-columns Hive's real Kafka handler adds —
``__partition``, ``__offset`` and ``__timestamp`` — alongside the
user's payload columns, so SQL can window over offsets or event time:

    SELECT ... FROM kafka_events WHERE __offset > 1000

Offset and timestamp predicates are pushed down to the broker, which
seeks instead of scanning (Kafka consumers are offset-addressable).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.rows import Column, Schema
from ..common.types import BIGINT, INT, TIMESTAMP
from ..errors import FederationError
from ..metastore.catalog import TableDescriptor
from ..plan import relnodes as rel
from ..plan import rexnodes as rex
from .handler import StorageHandler

#: metadata columns prepended to every Kafka-backed table
KAFKA_META_COLUMNS = (
    Column("__partition", INT, nullable=False),
    Column("__offset", BIGINT, nullable=False),
    Column("__timestamp", TIMESTAMP, nullable=False),
)

#: simulated costs: consumer setup + per-record fetch
CONSUMER_SETUP_S = 0.020
RECORD_FETCH_S = 2.0e-6


@dataclass
class KafkaRecord:
    offset: int
    timestamp_ms: int
    payload: tuple


@dataclass
class TopicPartition:
    records: list[KafkaRecord] = field(default_factory=list)

    @property
    def high_watermark(self) -> int:
        return len(self.records)


class KafkaTopic:
    """One topic: N append-only partitions, round-robin production."""

    def __init__(self, name: str, num_partitions: int = 2):
        if num_partitions < 1:
            raise FederationError("a topic needs >= 1 partition")
        self.name = name
        self.partitions = [TopicPartition()
                           for _ in range(num_partitions)]
        self._rr = itertools.count()
        self._clock = itertools.count(1_600_000_000_000, 1000)

    def produce(self, payload: tuple,
                partition: Optional[int] = None,
                timestamp_ms: Optional[int] = None) -> tuple[int, int]:
        """Append one record; returns (partition, offset)."""
        index = (next(self._rr) % len(self.partitions)
                 if partition is None else partition)
        target = self.partitions[index]
        record = KafkaRecord(target.high_watermark,
                             timestamp_ms if timestamp_ms is not None
                             else next(self._clock),
                             tuple(payload))
        target.records.append(record)
        return index, record.offset

    def consume(self, partition: int, start_offset: int = 0,
                end_offset: Optional[int] = None) -> list[KafkaRecord]:
        """Offset-addressed read (a seek, not a scan)."""
        records = self.partitions[partition].records
        return records[start_offset:end_offset]

    @property
    def total_records(self) -> int:
        return sum(p.high_watermark for p in self.partitions)


class KafkaBroker:
    """The standalone messaging system."""

    def __init__(self):
        self.topics: dict[str, KafkaTopic] = {}

    def create_topic(self, name: str,
                     num_partitions: int = 2) -> KafkaTopic:
        if name in self.topics:
            raise FederationError(f"topic {name} already exists")
        topic = KafkaTopic(name, num_partitions)
        self.topics[name] = topic
        return topic

    def get(self, name: str) -> KafkaTopic:
        try:
            return self.topics[name]
        except KeyError:
            raise FederationError(f"no such topic: {name}") from None


@dataclass
class KafkaScanSpec:
    """Pushed-down scan bounds (offsets / event time)."""

    topic: str
    min_offset: int = 0
    max_offset: Optional[int] = None
    min_timestamp_ms: Optional[int] = None
    max_timestamp_ms: Optional[int] = None
    columns: Optional[list[str]] = None

    def __repr__(self) -> str:
        return (f"KafkaScan({self.topic} offsets "
                f"[{self.min_offset}, {self.max_offset}])")


class KafkaStorageHandler(StorageHandler):
    """Connects Hive tables to topics (Section 6.1 contract)."""

    name = "kafka"

    def __init__(self, broker: KafkaBroker):
        self.broker = broker

    # -- metastore hook -------------------------------------------------------- #
    def topic_name(self, table: TableDescriptor) -> str:
        return table.properties.get("kafka.topic", table.name)

    def on_create_table(self, table: TableDescriptor) -> None:
        name = self.topic_name(table)
        if name not in self.broker.topics:
            partitions = int(table.properties.get(
                "kafka.partitions", "2"))
            self.broker.create_topic(name, partitions)
        meta_names = {c.name for c in KAFKA_META_COLUMNS}
        overlap = meta_names & {c.name for c in table.schema}
        if overlap:
            raise FederationError(
                f"columns {sorted(overlap)} clash with Kafka metadata "
                "columns")
        # expose payload + metadata columns through the catalog
        table.schema = Schema(list(table.schema.columns)
                              + list(KAFKA_META_COLUMNS))

    def on_drop_table(self, table: TableDescriptor) -> None:
        if table.properties.get("kafka.topic.retain") != "true":
            self.broker.topics.pop(self.topic_name(table), None)

    # -- IO ------------------------------------------------------------------ #
    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple]) -> None:
        """Produce; callers write only the payload columns."""
        topic = self.broker.get(self.topic_name(table))
        payload_width = len(table.schema) - len(KAFKA_META_COLUMNS)
        for row in rows:
            topic.produce(tuple(row[:payload_width]))

    def scan_table(self, table: TableDescriptor,
                   columns: Sequence[str]) -> tuple[list[tuple], float]:
        return self.execute_pushed(
            table, KafkaScanSpec(self.topic_name(table)), columns)

    # -- pushdown ----------------------------------------------------------------- #
    def try_pushdown(self, table: TableDescriptor,
                     chain: list[rel.RelNode], scan: rel.TableScan
                     ) -> Optional[tuple[KafkaScanSpec, Schema, int]]:
        """Convert offset/timestamp bounds into consumer seeks."""
        spec = KafkaScanSpec(self.topic_name(table),
                             columns=[c.name for c in scan.schema])
        consumed = 0
        if chain and isinstance(chain[0], rel.Filter):
            remaining = self._apply_bounds(chain[0].condition,
                                           scan.schema, spec)
            if remaining == 0:
                consumed = 1
            elif spec.min_offset == 0 and spec.max_offset is None \
                    and spec.min_timestamp_ms is None \
                    and spec.max_timestamp_ms is None:
                return None  # nothing pushable
        return spec, scan.schema if consumed == 0 else chain[0].schema, \
            consumed

    def _apply_bounds(self, condition: rex.RexNode, schema: Schema,
                      spec: KafkaScanSpec) -> int:
        """Mutates ``spec``; returns the number of non-pushed conjuncts."""
        remaining = 0
        for conjunct in rex.conjunctions(condition):
            if not (isinstance(conjunct, rex.RexCall)
                    and conjunct.op in ("=", "<", "<=", ">", ">=")):
                remaining += 1
                continue
            a, b = conjunct.operands
            if isinstance(a, rex.RexInputRef) and isinstance(
                    b, rex.RexLiteral):
                ref, literal, op = a, b, conjunct.op
            elif isinstance(b, rex.RexInputRef) and isinstance(
                    a, rex.RexLiteral):
                ref, literal = b, a
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<=", "=": "="}[conjunct.op]
            else:
                remaining += 1
                continue
            column = schema[ref.index].name
            value = ref.dtype.to_storage(literal.value)
            if column == "__offset":
                if op in (">", ">="):
                    spec.min_offset = max(
                        spec.min_offset,
                        value + 1 if op == ">" else value)
                elif op in ("<", "<="):
                    top = value if op == "<" else value + 1
                    spec.max_offset = (top if spec.max_offset is None
                                       else min(spec.max_offset, top))
                else:
                    spec.min_offset = value
                    spec.max_offset = value + 1
            elif column == "__timestamp":
                if op in (">", ">="):
                    spec.min_timestamp_ms = value
                elif op in ("<", "<="):
                    spec.max_timestamp_ms = value
                else:
                    spec.min_timestamp_ms = value
                    spec.max_timestamp_ms = value
            else:
                remaining += 1
        return remaining

    def execute_pushed(self, table: TableDescriptor, spec: KafkaScanSpec,
                       columns: Optional[Sequence[str]] = None
                       ) -> tuple[list[tuple], float]:
        topic = self.broker.get(spec.topic)
        if columns is not None:
            names = list(columns)
        elif spec.columns is not None:
            names = list(spec.columns)
        else:
            names = [c.name for c in table.schema]
        payload_names = [c.name for c in table.schema
                         if c.name not in ("__partition", "__offset",
                                           "__timestamp")]
        rows: list[tuple] = []
        fetched = 0
        for partition_index, _ in enumerate(topic.partitions):
            records = topic.consume(partition_index, spec.min_offset,
                                    spec.max_offset)
            for record in records:
                if spec.min_timestamp_ms is not None \
                        and record.timestamp_ms < spec.min_timestamp_ms:
                    continue
                if spec.max_timestamp_ms is not None \
                        and record.timestamp_ms > spec.max_timestamp_ms:
                    continue
                fetched += 1
                by_name = dict(zip(payload_names, record.payload))
                by_name["__partition"] = partition_index
                by_name["__offset"] = record.offset
                by_name["__timestamp"] = record.timestamp_ms
                rows.append(tuple(by_name[n] for n in names))
        seconds = CONSUMER_SETUP_S + fetched * RECORD_FETCH_S
        self.record_external_call(table, "consume", len(rows), seconds)
        return rows, seconds
