"""Federation: storage handlers and computation pushdown (Section 6)."""

from .handler import StorageHandler
from .druid import DruidEngine, DruidQuery, DruidStorageHandler
from .jdbc import JdbcStorageHandler
from .kafka import KafkaBroker, KafkaStorageHandler, KafkaTopic
from .pushdown import make_pushdown_rule

__all__ = ["StorageHandler", "DruidEngine", "DruidQuery",
           "DruidStorageHandler", "JdbcStorageHandler", "KafkaBroker",
           "KafkaStorageHandler", "KafkaTopic", "make_pushdown_rule"]
