"""Storage handler interface (Section 6.1).

A storage handler consists of an *input format* (how to read from the
external engine, including splitting work), an *output format* (how to
write), a *SerDe* (representation conversion) and a *Metastore hook*
(notifications on catalog events).  This ABC folds input format + SerDe
into :meth:`scan_table` (rows come back in Hive's Python-value
representation), the output format + SerDe into :meth:`insert_rows`, and
the Metastore hook into the ``on_*`` methods.

Handlers that support Calcite-generated queries (Section 6.2) implement
:meth:`try_pushdown`/:meth:`execute_pushed`: the optimizer hands them the
chain of relational operators above the scan, and they return an
engine-native query object (or None to decline).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..common.rows import Schema
from ..metastore.catalog import TableDescriptor
from ..plan import relnodes as rel


class StorageHandler(ABC):
    """Base class for all external-engine connectors."""

    name: str = "abstract"
    #: metrics registry (repro.obs.MetricsRegistry), attached by
    #: HiveServer2.register_storage_handler; None when standalone
    obs_registry = None

    # -- observability ---------------------------------------------------------- #
    def record_external_call(self, table: TableDescriptor, kind: str,
                             rows: int, seconds: float) -> None:
        """Publish one external-engine round trip to the registry."""
        registry = self.obs_registry
        if registry is None:
            return
        labels = {"engine": self.name, "table": table.qualified_name,
                  "kind": kind}
        registry.counter("federation.calls", **labels).inc()
        registry.counter("federation.rows", **labels).inc(rows)
        registry.counter("federation.external_s", **labels).inc(seconds)

    # -- metastore hook -------------------------------------------------------- #
    def on_create_table(self, table: TableDescriptor) -> None:
        """Called when a table backed by this handler is registered."""

    def on_drop_table(self, table: TableDescriptor) -> None:
        """Called when such a table is dropped."""

    def infer_schema(self, table: TableDescriptor) -> Optional[Schema]:
        """Column names/types discovered from the external engine.

        Hive external tables over existing sources need no column list:
        "they are automatically inferred from Druid metadata".
        """
        return None

    # -- input format + SerDe ---------------------------------------------------- #
    @abstractmethod
    def scan_table(self, table: TableDescriptor,
                   columns: Sequence[str]
                   ) -> tuple[list[tuple], float]:
        """Full read of selected columns.

        Returns ``(rows, external_time_s)`` where the time is the
        engine's simulated processing latency.
        """

    # -- output format + SerDe --------------------------------------------------- #
    @abstractmethod
    def insert_rows(self, table: TableDescriptor,
                    rows: Sequence[tuple]) -> None:
        """Write rows into the external engine."""

    # -- Calcite pushdown (Section 6.2) -------------------------------------------- #
    def try_pushdown(self, table: TableDescriptor,
                     chain: list[rel.RelNode],
                     scan: rel.TableScan
                     ) -> Optional[tuple[object, Schema]]:
        """Translate an operator chain into an engine-native query.

        ``chain`` lists the operators above the scan, outermost first.
        Returns ``(query_object, result_schema)`` or None to decline —
        in which case Hive reads the raw data and computes itself.
        """
        return None

    @abstractmethod
    def execute_pushed(self, table: TableDescriptor,
                       query: object) -> tuple[list[tuple], float]:
        """Run a query produced by :meth:`try_pushdown`."""
