"""Ablation: compaction (Section 3.2).

Accumulating single-transaction deltas degrades reads (more directories,
more files, per-row merge work); minor compaction folds deltas together;
major compaction restores base-only reads.  The benchmark tracks read
latency and file counts across the lifecycle.
"""

import pytest

import repro
from repro.bench.harness import load_rows
from repro.metastore.compaction import CompactionType
from conftest import make_conf

DELTAS = 24
ROWS_PER_DELTA = 400
QUERY = "SELECT grp, COUNT(*), SUM(val) FROM t GROUP BY grp"


@pytest.fixture(scope="module")
def lifecycle():
    conf = make_conf("v3")
    conf.results_cache_enabled = False
    conf.llap_cache_enabled = False
    conf.compaction_delta_threshold = 10_000   # manual control
    server = repro.HiveServer2(conf)
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.conf.llap_cache_enabled = False
    session.execute("CREATE TABLE t (k INT, grp INT, val DOUBLE) "
                    "TBLPROPERTIES ('transactional'='true')")
    for d in range(DELTAS):
        rows = [(d * ROWS_PER_DELTA + i, i % 20, float(i))
                for i in range(ROWS_PER_DELTA)]
        load_rows(server, "t", rows)
    session.execute("DELETE FROM t WHERE k % 11 = 0")

    stages = {}

    def snapshot(label):
        table = server.hms.get_table("t")
        files = len(server.fs.list_files(table.location, recursive=True))
        result = session.execute(QUERY)
        stages[label] = (result.metrics.total_s, files,
                         sorted(result.rows))

    snapshot("uncompacted")
    server.hms.compaction_queue.enqueue("default.t", None,
                                        CompactionType.MINOR)
    server.run_compaction()
    snapshot("minor")
    server.hms.compaction_queue.enqueue("default.t", None,
                                        CompactionType.MAJOR)
    server.run_compaction()
    snapshot("major")
    return stages


def test_compaction_lifecycle(benchmark, lifecycle):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Ablation — compaction lifecycle (Section 3.2)")
    for label, (seconds, files, _) in lifecycle.items():
        print(f"  {label:<13}: {seconds:8.3f}s   files={files}")
    uncompacted, minor, major = (lifecycle["uncompacted"],
                                 lifecycle["minor"], lifecycle["major"])
    # results never change
    assert uncompacted[2] == minor[2] == major[2]
    # each stage reduces the file count
    assert minor[1] < uncompacted[1]
    assert major[1] <= minor[1]
    # and read latency is monotone non-increasing (within noise)
    assert minor[0] <= uncompacted[0] * 1.02
    assert major[0] <= minor[0] * 1.02
    benchmark.extra_info["files_before"] = uncompacted[1]
    benchmark.extra_info["files_after"] = major[1]
