"""Figure 8: SSB queries, native materialized view vs MV in Druid.

Paper (Section 7.3): SSB at 1 TB, a denormalized materialized view of
the star schema; queries are automatically rewritten to the view.  With
the view stored in Druid and computation pushed through Calcite,
"Hive/Druid is 1.6x faster than execution over the materialized view
stored natively in Hive".
"""

import pytest

import repro
from repro.bench import (SSB_QUERIES, SsbScale, create_ssb_warehouse,
                         run_query_set)
from repro.bench.ssb import SSB_FLAT_MV_SELECT
from repro.bench.harness import render_comparison
from repro.federation import DruidEngine, DruidStorageHandler
from conftest import DATA_SCALE, make_conf

SCALE = SsbScale()


@pytest.fixture(scope="module")
def runs():
    # native: MV stored as an ORC table in the warehouse
    native_session = create_ssb_warehouse(
        repro.HiveServer2(make_conf("v3")), SCALE)
    native_session.execute(
        f"CREATE MATERIALIZED VIEW ssb_flat AS {SSB_FLAT_MV_SELECT}")
    run_native = run_query_set(native_session, SSB_QUERIES, "Hive",
                               warm_runs=1)

    # federated: same MV stored in the mini Druid
    druid_server = repro.HiveServer2(make_conf("v3"))
    engine = DruidEngine()
    engine.cost.data_scale = DATA_SCALE
    druid_server.register_storage_handler(
        "druid", DruidStorageHandler(engine))
    druid_session = create_ssb_warehouse(druid_server, SCALE)
    druid_session.execute(
        f"CREATE MATERIALIZED VIEW ssb_flat STORED BY 'druid' "
        f"AS {SSB_FLAT_MV_SELECT}")
    run_druid = run_query_set(druid_session, SSB_QUERIES, "Hive/Druid",
                              warm_runs=1)
    return run_native, run_druid, engine


def test_fig8_druid_federation(benchmark, runs):
    run_native, run_druid, engine = runs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print()
    print(render_comparison(
        [run_native, run_druid],
        "Figure 8 — SSB response times, native MV vs MV in Druid"))

    # all 13 queries succeed in both variants
    assert run_native.succeeded_count() == len(SSB_QUERIES)
    assert run_druid.succeeded_count() == len(SSB_QUERIES)

    ratio = run_native.total_seconds() / run_druid.total_seconds()
    benchmark.extra_info["druid_speedup"] = ratio
    print(f"\nHive/Druid speedup: {ratio:.2f}x   (paper: 1.6x)")
    assert 1.2 <= ratio <= 2.5

    # the Druid variant really pushed computation: the engine served
    # queries beyond ingestion-time scans
    assert engine.queries_served >= len(SSB_QUERIES)


def test_fig8_results_identical(runs):
    """Federation must not change answers: both variants agree."""
    run_native, run_druid, _ = runs
    for native_t, druid_t in zip(run_native.timings, run_druid.timings):
        assert native_t.rows == druid_t.rows, native_t.name
