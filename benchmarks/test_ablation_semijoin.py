"""Ablation: dynamic semijoin reduction (Section 4.6).

A star join whose dimension side carries a tight filter: with the
optimization on, the runtime builds a range + Bloom filter from the
filtered dimension and the fact scan skips rows (and row groups) early.
"""

import pytest

import repro
from repro.bench import TpcdsScale, create_tpcds_warehouse
from conftest import make_conf

SCALE = TpcdsScale()

QUERY = """
    SELECT ss_customer_sk, SUM(ss_sales_price) AS sum_sales
    FROM store_sales, item
    WHERE ss_item_sk = i_item_sk AND i_category = 'Sports'
      AND i_current_price > 250
    GROUP BY ss_customer_sk ORDER BY sum_sales DESC LIMIT 25
"""


@pytest.fixture(scope="module")
def timings():
    conf_on = make_conf("v3")
    conf_off = make_conf("v3")
    conf_off.semijoin_reduction = False
    out = {}
    for label, conf in (("on", conf_on), ("off", conf_off)):
        session = create_tpcds_warehouse(repro.HiveServer2(conf), SCALE)
        session.conf.results_cache_enabled = False
        session.execute(QUERY)   # warm
        out[label] = session.execute(QUERY)
    return out


def test_semijoin_reduction(benchmark, timings):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on, off = timings["on"], timings["off"]
    assert on.rows == off.rows
    assert on.optimized.semijoin_reducers
    assert not off.optimized.semijoin_reducers
    ratio = off.metrics.total_s / on.metrics.total_s
    benchmark.extra_info["semijoin_speedup"] = ratio
    print()
    print("Ablation — dynamic semijoin reduction (Section 4.6)")
    print(f"  disabled: {off.metrics.total_s:8.3f}s")
    print(f"  enabled:  {on.metrics.total_s:8.3f}s   "
          f"speedup {ratio:.2f}x")
    assert ratio >= 1.0  # never slower on this shape
