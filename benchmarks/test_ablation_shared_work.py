"""Ablation: shared work optimization (Section 4.5 / q88 callout).

Paper: "New optimization features such as shared work optimizer make a
big difference on their own; for example, q88 is 2.7x faster when it is
enabled."  This benchmark runs the q88-shaped query (eight identical
expensive subexpressions) with the optimizer on and off.
"""

import pytest

import repro
from repro.bench import TpcdsScale, create_tpcds_warehouse
from conftest import make_conf

SCALE = TpcdsScale()
Q88 = next(q for q in __import__("repro.bench.tpcds",
                                 fromlist=["TPCDS_QUERIES"]).TPCDS_QUERIES
           if q.name == "q_shared_scan_88")


@pytest.fixture(scope="module")
def timings():
    conf_on = make_conf("v3")
    conf_off = make_conf("v3")
    conf_off.shared_work_optimization = False
    session_on = create_tpcds_warehouse(repro.HiveServer2(conf_on), SCALE)
    session_off = create_tpcds_warehouse(repro.HiveServer2(conf_off),
                                         SCALE)
    for session in (session_on, session_off):
        session.conf.results_cache_enabled = False
        session.execute(Q88.sql)       # warm caches
    on = session_on.execute(Q88.sql)
    off = session_off.execute(Q88.sql)
    return on, off


def test_shared_work_q88(benchmark, timings):
    on, off = timings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratio = off.metrics.total_s / on.metrics.total_s
    benchmark.extra_info["shared_work_speedup"] = ratio
    print()
    print("Ablation — shared work optimizer on q88-shaped query")
    print(f"  disabled: {off.metrics.total_s:8.2f}s")
    print(f"  enabled:  {on.metrics.total_s:8.2f}s")
    print(f"  speedup:  {ratio:8.2f}x   (paper: 2.7x on q88)")
    assert on.rows == off.rows
    assert 1.8 <= ratio <= 12.0


def test_shared_work_merges_vertices(timings):
    """With sharing on, the DAG carries each repeated fragment once."""
    on, off = timings
    from repro.runtime.tez import build_dag, merge_shared_vertices
    dag_off = build_dag(off.optimized.root)
    dag_on = merge_shared_vertices(build_dag(on.optimized.root),
                                   on.optimized.shared_digests)
    assert len(dag_on.vertices) < len(dag_off.vertices)
