"""Micro-benchmark: compiled expression kernels vs the interpreter.

The tentpole claim of the kernel compiler (repro.exec.compile) is that
lowering a RexNode tree once per plan — instead of re-walking the AST
with isinstance/dict dispatch for every batch — removes the dominant
per-batch overhead of expression evaluation.  This benchmark times
both paths over identical batches and exports *wall* seconds so
``tools/perf_gate`` can hold the speedup across commits.

Virtual seconds are recorded as 0.0 on purpose: nothing here goes
through the runtime's cost model; the wall clock is the measurement.
"""

import time

import numpy as np
import pytest

from repro.common.rows import Column, Schema
from repro.common.types import DATE, DOUBLE, INT, STRING
from repro.common.vector import ColumnVector, VectorBatch
from repro.exec.compile import KernelCache
from repro.exec.expr_eval import EvalContext, evaluate, evaluate_predicate
from repro.obs.export import BENCH_COLLECTOR
from repro.plan.rexnodes import RexCall, RexInputRef, RexLiteral, make_call

BATCHES = 160
ROWS = 1024

SCHEMA = Schema([Column("qty", INT), Column("price", DOUBLE),
                 Column("cat", STRING), Column("sold", DATE)])


def _batches():
    rng = np.random.default_rng(1234)
    out = []
    for _ in range(BATCHES):
        n = ROWS
        out.append(VectorBatch(SCHEMA, [
            ColumnVector(INT, rng.integers(0, 100, n).astype(np.int32),
                         rng.random(n) < 0.05),
            ColumnVector(DOUBLE, rng.uniform(0, 500, n),
                         rng.random(n) < 0.05),
            ColumnVector(STRING,
                         np.array(["Home", "Sports", "Books", "Music",
                                   "Shoes"], dtype=object)[
                             rng.integers(0, 5, n)],
                         rng.random(n) < 0.05),
            ColumnVector(DATE, rng.integers(17000, 19000, n)
                         .astype(np.int32), np.zeros(n, dtype=bool)),
        ]))
    return out


def _expressions():
    qty, price = RexInputRef(0, INT), RexInputRef(1, DOUBLE)
    cat, sold = RexInputRef(2, STRING), RexInputRef(3, DATE)
    predicate = make_call(
        "AND",
        make_call(">", price, RexLiteral(25.0, DOUBLE)),
        make_call("IN", cat, RexLiteral("Home", STRING),
                  RexLiteral("Books", STRING)))
    projections = [
        RexCall("*", (qty, price), DOUBLE),
        RexCall("UPPER", (cat,), STRING),
        RexCall("CASE", (make_call(">=", qty, RexLiteral(50, INT)),
                         RexLiteral("bulk", STRING),
                         RexLiteral("retail", STRING)), STRING),
        RexCall("EXTRACT_YEAR", (sold,), INT),
        RexCall("CONCAT", (cat, RexLiteral(":", STRING), qty), STRING),
        RexCall("+", (RexCall("%", (qty, RexLiteral(7, INT)), INT),
                      RexLiteral(1, INT)), INT),
    ]
    return predicate, projections


def _run_interpreted(batches, predicate, projections, ctx):
    total = 0
    for batch in batches:
        mask = evaluate_predicate(predicate, batch, ctx)
        for expr in projections:
            total += len(evaluate(expr, batch, ctx).data)
        total += int(mask.sum())
    return total


def _run_compiled(batches, predicate, projections, ctx):
    cache = KernelCache()
    pred_k = cache.predicate(predicate)
    kernels = [cache.kernel(e) for e in projections]
    total = 0
    for batch in batches:
        mask = pred_k(batch, ctx)
        for kernel in kernels:
            total += len(kernel(batch, ctx).data)
        total += int(mask.sum())
    return total


@pytest.fixture(scope="module")
def measured():
    batches = _batches()
    predicate, projections = _expressions()
    ctx = EvalContext(query_id=1)
    # warm both paths (imports, ufunc setup, regex compilation)
    _run_interpreted(batches[:2], predicate, projections, ctx)
    _run_compiled(batches[:2], predicate, projections, ctx)

    start = time.perf_counter()
    check_interp = _run_interpreted(batches, predicate, projections, ctx)
    interp_s = time.perf_counter() - start

    start = time.perf_counter()
    check_comp = _run_compiled(batches, predicate, projections, ctx)
    comp_s = time.perf_counter() - start
    assert check_interp == check_comp       # same work, same results
    return interp_s, comp_s


def test_compiled_kernels_beat_interpreter(measured):
    interp_s, comp_s = measured
    ratio = interp_s / comp_s
    BENCH_COLLECTOR.record(
        "expr_kernels", "interpreted", seconds=0.0, rows=BATCHES * ROWS,
        wall_s=interp_s)
    BENCH_COLLECTOR.record(
        "expr_kernels", "compiled", seconds=0.0, rows=BATCHES * ROWS,
        wall_s=comp_s)
    print()
    print("Expression kernels — compiled vs interpreted "
          f"({BATCHES} batches x {ROWS} rows)")
    print(f"  interpreted: {interp_s * 1000:8.1f} ms")
    print(f"  compiled:    {comp_s * 1000:8.1f} ms")
    print(f"  speedup:     {ratio:8.2f}x")
    # compiled kernels skip the per-batch AST walk entirely; anything
    # under ~1.2x would mean the lowering stopped paying for itself
    assert ratio > 1.2


def test_kernel_cache_amortizes_compilation(measured):
    # compile cost is one-time: a second pass over the same cache hits
    # every entry and compiles nothing new
    predicate, projections = _expressions()
    cache = KernelCache()
    for expr in projections:
        cache.kernel(expr)
    compiled_once = cache.compiled
    for expr in projections:
        cache.kernel(expr)
    assert cache.compiled == compiled_once
    assert cache.hits == len(projections)
