"""Ablation: vectorized execution (Section 5, building on [39]).

The paper credits the columnar format + vectorized operators with
order-of-magnitude latency reductions before LLAP even enters.  This
ablation flips only ``vectorized_execution`` on the v3 profile and
measures a CPU-bound aggregation.
"""

import pytest

import repro
from repro.bench import TpcdsScale, create_tpcds_warehouse
from conftest import make_conf

SCALE = TpcdsScale()

QUERY = """
    SELECT i_category, d_moy, SUM(ss_ext_sales_price) s,
           AVG(ss_quantity) q
    FROM store_sales, item, date_dim
    WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
    GROUP BY i_category, d_moy ORDER BY s DESC LIMIT 50
"""


@pytest.fixture(scope="module")
def timings():
    out = {}
    for label, vectorized in (("vectorized", True),
                              ("row-at-a-time", False)):
        conf = make_conf("v3")
        conf.vectorized_execution = vectorized
        session = create_tpcds_warehouse(repro.HiveServer2(conf), SCALE)
        session.conf.results_cache_enabled = False
        session.execute(QUERY)          # warm the LLAP cache
        out[label] = session.execute(QUERY)
    return out


def test_vectorization_speedup(benchmark, timings):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fast = timings["vectorized"]
    slow = timings["row-at-a-time"]
    assert fast.rows == slow.rows
    ratio = slow.metrics.total_s / fast.metrics.total_s
    cpu_ratio = slow.metrics.cpu_s / fast.metrics.cpu_s
    benchmark.extra_info["vectorization_speedup"] = ratio
    print()
    print("Ablation — vectorized execution (Section 5 / [39])")
    print(f"  row-at-a-time: {slow.metrics.total_s:8.3f}s "
          f"(cpu {slow.metrics.cpu_s:.3f}s)")
    print(f"  vectorized:    {fast.metrics.total_s:8.3f}s "
          f"(cpu {fast.metrics.cpu_s:.3f}s)")
    print(f"  speedup:       {ratio:8.2f}x overall, {cpu_ratio:.2f}x CPU")
    # the CPU component shrinks by the configured row/vector cost ratio
    # (row_cpu_s / vector_cpu_s = 4.0 by default)
    assert 3.0 <= cpu_ratio <= 5.0
    assert ratio > 1.3
