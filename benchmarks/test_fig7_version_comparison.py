"""Figure 7: per-query response times, Hive v1.2 vs Hive v3.1 (LLAP).

Paper findings reproduced here (shape, not absolute numbers):

* v1.2 executes only a subset of the query set — the rest fail on
  missing SQL features (paper: 50 of 99),
* v3.1 runs every query,
* for commonly-supported queries v3.1 is faster by a large average
  factor (paper: 4.6x) with extreme outliers from the CBO and the
  shared-work optimizer (paper: up to 45.5x; >15x emphasized),
* the aggregate time of v3.1 over ALL queries is lower than v1.2 over
  its subset alone (paper: 15% lower).
"""

import pytest

import repro
from repro.bench import (TPCDS_QUERIES, TpcdsScale, create_tpcds_warehouse,
                         run_query_set)
from repro.bench.harness import (average_speedup, geometric_mean_speedup,
                                 max_speedup, render_comparison)
from conftest import make_conf

SCALE = TpcdsScale()


@pytest.fixture(scope="module")
def runs():
    legacy_session = create_tpcds_warehouse(
        repro.HiveServer2(make_conf("legacy")), SCALE)
    v3_session = create_tpcds_warehouse(
        repro.HiveServer2(make_conf("v3")), SCALE)
    run_legacy = run_query_set(legacy_session, TPCDS_QUERIES, "hive-1.2",
                               warm_runs=1)
    run_v3 = run_query_set(v3_session, TPCDS_QUERIES, "hive-3.1-llap",
                           warm_runs=1)
    return run_legacy, run_v3


def test_fig7_version_comparison(benchmark, runs):
    run_legacy, run_v3 = runs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["avg_speedup"] = average_speedup(run_legacy,
                                                          run_v3)

    print()
    print(render_comparison(
        [run_legacy, run_v3],
        "Figure 7 — TPC-DS-like response times, Hive 1.2 vs Hive 3.1"))

    total = len(TPCDS_QUERIES)
    legacy_ok = run_legacy.succeeded_count()
    v3_ok = run_v3.succeeded_count()

    # v1.2 runs only a subset; v3.1 runs everything
    assert v3_ok == total
    assert legacy_ok < total
    assert legacy_ok >= total // 2  # a *subset*, not a wipe-out

    # average speedup in the paper's neighbourhood (4.6x): >= 3x
    avg = average_speedup(run_legacy, run_v3)
    geo = geometric_mean_speedup(run_legacy, run_v3)
    name, best = max_speedup(run_legacy, run_v3)
    print(f"\naverage speedup {avg:.1f}x (geomean {geo:.1f}x), "
          f"max {best:.1f}x on {name}; paper: 4.6x average, 45.5x max")
    assert avg >= 3.0
    # some queries improve far more than 15x (paper highlights those)
    assert best > 15.0

    # v3.1's total over ALL queries beats v1.2's total over its subset
    assert run_v3.total_seconds() < run_legacy.total_seconds()


def test_fig7_failures_are_feature_gaps(runs):
    """Every legacy failure is an UnsupportedFeatureError on a query we

    annotated as requiring v3-only SQL, mirroring the paper's list."""
    run_legacy, _ = runs
    by_name = {q.name: q for q in TPCDS_QUERIES}
    for timing in run_legacy.timings:
        query = by_name[timing.name]
        if timing.succeeded:
            assert not query.requires_v3, (
                f"{timing.name} should fail on the legacy profile")
        else:
            assert query.requires_v3, (
                f"{timing.name} failed unexpectedly: {timing.error}")
            assert timing.error == "UnsupportedFeatureError"
