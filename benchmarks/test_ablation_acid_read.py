"""Ablation: ACID read overhead (Section 8 discussion).

Paper: the first ACID design (a single delta file type) "introduced a
reading latency penalty ... that was unacceptable", because readers had
to sort-merge many base and delta files and filter pushdown could not
skip row groups in them.  The second design (separate insert/delete
deltas, Section 3.2) brought performance "at par with non-ACID tables"
— *provided compaction runs*.

We measure three states of the same logical table:

* non-ACID,
* ACID freshly compacted (paper's v2 steady state) — expected at par,
* ACID with many uncompacted delta directories + delete deltas —
  expected visibly slower, the state compaction exists to fix.
"""

import pytest

import repro
from repro.bench.harness import load_rows
from conftest import make_conf

ROWS = 8_000
BATCHES = 16


def _fill(session, table, acid: bool):
    server = session.server
    session.execute(
        f"CREATE TABLE {table} (k INT, grp INT, val DOUBLE) "
        f"TBLPROPERTIES ('transactional'='{'true' if acid else 'false'}')")
    per_batch = ROWS // BATCHES
    for batch in range(BATCHES):
        rows = [(batch * per_batch + i, i % 50, float(i))
                for i in range(per_batch)]
        load_rows(server, table, rows)
    return server.hms.get_table(table)


QUERY = "SELECT grp, SUM(val), COUNT(*) FROM {t} GROUP BY grp"


@pytest.fixture(scope="module")
def measurements():
    conf = make_conf("v3")
    conf.results_cache_enabled = False
    conf.llap_cache_enabled = False      # measure raw read paths
    conf.compaction_delta_threshold = 10_000   # no auto compaction
    server = repro.HiveServer2(conf)
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.conf.llap_cache_enabled = False

    # identical logical contents for plain vs compacted-ACID ("at par");
    # the uncompacted table additionally carries delete deltas — the
    # state the paper's first ACID design suffered in permanently
    _fill(session, "plain_t", acid=False)
    _fill(session, "acid_cold", acid=True)
    _fill(session, "acid_hot", acid=True)
    session.execute("DELETE FROM acid_hot WHERE k % 7 = 0")

    # compact one of the ACID tables fully
    from repro.metastore.compaction import CompactionType
    server.hms.compaction_queue.enqueue("default.acid_cold", None,
                                        CompactionType.MAJOR)
    server.run_compaction()

    out = {}
    for label, table in (("non-acid", "plain_t"),
                         ("acid-compacted", "acid_cold"),
                         ("acid-uncompacted", "acid_hot")):
        result = session.execute(QUERY.format(t=table))
        out[label] = result.metrics.total_s
    return out


def test_acid_read_at_par_after_compaction(benchmark, measurements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Ablation — ACID read overhead (Section 8)")
    for label, seconds in measurements.items():
        print(f"  {label:<18}: {seconds:8.3f}s")
    compacted_ratio = (measurements["acid-compacted"]
                       / measurements["non-acid"])
    uncompacted_ratio = (measurements["acid-uncompacted"]
                         / measurements["non-acid"])
    print(f"  compacted / non-acid:   {compacted_ratio:5.2f}x "
          "(paper: at par)")
    print(f"  uncompacted / non-acid: {uncompacted_ratio:5.2f}x "
          "(the state compaction fixes)")
    benchmark.extra_info["compacted_ratio"] = compacted_ratio
    # v2 design, compacted: at par with non-ACID (within 25% either way)
    assert 0.6 <= compacted_ratio <= 1.25
    # uncompacted deltas + tombstones visibly slower than compacted
    assert (measurements["acid-uncompacted"]
            > measurements["acid-compacted"] * 1.15)
