"""Shared benchmark configuration.

Every benchmark uses the virtual-time cost model with the same dataset
magnification so numbers are comparable across files; see DESIGN.md for
the substitution rationale (absolute numbers are synthetic, shapes are
the reproduction target).
"""

import pytest

#: dataset magnification applied to the cost model in all benchmarks —
#: models the paper's 10 TB runs with laptop-sized actual data.
DATA_SCALE = 10_000


def make_conf(profile: str):
    from repro.config import HiveConf
    factory = {
        "v3": HiveConf.v3_profile,
        "container": HiveConf.v3_container_profile,
        "legacy": HiveConf.legacy_profile,
    }[profile]
    conf = factory()
    conf.cost.data_scale = DATA_SCALE
    return conf


@pytest.fixture(scope="session")
def data_scale():
    return DATA_SCALE


def pytest_sessionfinish(session, exitstatus):
    """Flush the observability collector to ``BENCH_obs.json``."""
    import os
    from repro.obs.export import BENCH_COLLECTOR
    if not BENCH_COLLECTOR.records():
        return
    out = os.path.join(os.path.dirname(__file__), "BENCH_obs.json")
    BENCH_COLLECTOR.write(out)
