"""Table 1: total response time, Tez containers vs LLAP (Section 7.2).

Paper: running all 99 TPC-DS queries on Hive v3.1 with the same
configuration but LLAP enabled/disabled, "LLAP on its own reduces the
workload response time dramatically by 2.7x".  The gains come from
eliminated container start-up, warm JIT, and the shared data cache —
all charged explicitly by the cost model.
"""

import pytest

import repro
from repro.bench import (TPCDS_QUERIES, TpcdsScale, create_tpcds_warehouse,
                         run_query_set)
from conftest import make_conf

SCALE = TpcdsScale()


@pytest.fixture(scope="module")
def runs():
    container_session = create_tpcds_warehouse(
        repro.HiveServer2(make_conf("container")), SCALE)
    llap_session = create_tpcds_warehouse(
        repro.HiveServer2(make_conf("v3")), SCALE)
    run_container = run_query_set(container_session, TPCDS_QUERIES,
                                  "container", warm_runs=1)
    run_llap = run_query_set(llap_session, TPCDS_QUERIES, "llap",
                             warm_runs=1)
    return run_container, run_llap


def test_table1_llap_total_response_time(benchmark, runs):
    run_container, run_llap = runs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    container_total = run_container.total_seconds()
    llap_total = run_llap.total_seconds()
    ratio = container_total / llap_total
    benchmark.extra_info["llap_speedup"] = ratio

    print()
    print("Table 1 — Response time improvement using LLAP")
    print("=" * 56)
    print(f"{'Execution mode':<36}{'Total response time (s)':>20}")
    print("-" * 56)
    print(f"{'Container (without LLAP)':<36}{container_total:>20.1f}")
    print(f"{'LLAP':<36}{llap_total:>20.1f}")
    print("-" * 56)
    print(f"LLAP speedup: {ratio:.2f}x   (paper: 2.7x)")

    # both modes run the full query set (same SQL support)
    assert run_container.succeeded_count() == len(TPCDS_QUERIES)
    assert run_llap.succeeded_count() == len(TPCDS_QUERIES)
    # the paper's 2.7x, loosely banded
    assert 1.8 <= ratio <= 4.5


def test_table1_llap_wins_every_query(runs):
    """LLAP should never be slower: it strictly removes overheads."""
    run_container, run_llap = runs
    for timing in run_container.timings:
        other = run_llap.timing(timing.name)
        assert other.seconds <= timing.seconds * 1.05, timing.name
