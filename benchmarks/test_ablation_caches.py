"""Ablation: the two caches (Sections 4.3 and 5.1).

* **query results cache**: a repeated identical BI query is answered
  from the cache in near-constant time; an intervening write invalidates
  it (transactional consistency).
* **LLAP data cache**: the second scan of the same data is served from
  memory — disk bytes drop to ~zero and the response time improves.
"""

import pytest

import repro
from repro.bench import TpcdsScale, create_tpcds_warehouse
from conftest import make_conf

SCALE = TpcdsScale(store_sales=8_000, store_returns=800)

QUERY = """
    SELECT i_category, SUM(ss_ext_sales_price) s
    FROM store_sales, item WHERE ss_item_sk = i_item_sk
    GROUP BY i_category ORDER BY s DESC
"""


@pytest.fixture(scope="module")
def session():
    return create_tpcds_warehouse(repro.HiveServer2(make_conf("v3")),
                                  SCALE)


def test_results_cache_repeated_query(benchmark, session):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    session.conf.results_cache_enabled = True
    first = session.execute(QUERY)
    second = session.execute(QUERY)
    assert not first.from_cache
    assert second.from_cache
    assert second.rows == first.rows
    ratio = first.metrics.total_s / second.metrics.total_s
    print()
    print("Ablation — query results cache (Section 4.3)")
    print(f"  first run : {first.metrics.total_s:8.3f}s")
    print(f"  cache hit : {second.metrics.total_s:8.3f}s "
          f"({ratio:.0f}x faster)")
    benchmark.extra_info["results_cache_speedup"] = ratio
    assert ratio > 3.0

    # a write to a participating table invalidates the entry
    session.execute(
        "INSERT INTO store_sales PARTITION (ss_sold_date_sk=0) VALUES "
        "(1, 1, 1, 1, 1, 999999, 1, 10.0, 9.0, 9.0, 1.0)")
    third = session.execute(QUERY)
    assert not third.from_cache


def test_llap_cache_warm_scan(benchmark, session):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    session.conf.results_cache_enabled = False
    server = session.server
    server.llap_cache.clear()
    server.llap_factory.io.reset()
    cold = session.execute(QUERY + " LIMIT 5")
    cold_disk = cold.metrics.disk_bytes
    warm = session.execute(QUERY + " LIMIT 5")
    warm_disk = warm.metrics.disk_bytes
    print()
    print("Ablation — LLAP data cache (Section 5.1)")
    print(f"  cold scan: {cold.metrics.total_s:8.3f}s  "
          f"disk={cold_disk/1e3:.0f}KB cache={cold.metrics.cache_bytes/1e3:.0f}KB")
    print(f"  warm scan: {warm.metrics.total_s:8.3f}s  "
          f"disk={warm_disk/1e3:.0f}KB cache={warm.metrics.cache_bytes/1e3:.0f}KB")
    benchmark.extra_info["warm_hit_fraction"] = \
        warm.metrics.cache_hit_fraction
    assert cold_disk > 0
    assert warm_disk < cold_disk * 0.05      # nearly everything cached
    assert warm.metrics.cache_hit_fraction > 0.95
    assert warm.metrics.total_s <= cold.metrics.total_s
