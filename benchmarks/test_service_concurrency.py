"""Serving-layer concurrency: N virtual users replaying SSB dashboards.

Two scenarios land in ``BENCH_obs.json``:

* **service_plan_cache** — a sequential replay of SSB queries through
  one service session, cold then warm; the virtual-time delta is the
  compile saving the plan cache buys (data_scale is kept small here so
  compilation, not execution, dominates short-query latency — the BI
  regime the cache targets).
* **service_concurrency** — 12 threaded clients across 3 tenants
  hammering the in-process protocol; the record carries the summed
  virtual time from ``sys.query_log`` and a breakdown with wall-clock
  throughput and the per-pool p95/p99 ``service.admission.wait_s``.
"""

import pytest

from repro.bench import SSB_QUERIES, SsbScale, create_ssb_warehouse
from repro.obs.export import BENCH_COLLECTOR
from repro.service import HiveService, LoadClient, run_load
from conftest import make_conf

#: dashboards re-run short queries: keep execution small so the
#: compile pipeline is the dominant cost, as in the BI workloads the
#: plan cache targets
SERVICE_DATA_SCALE = 50

REPLAY = [sql for _, sql in SSB_QUERIES[:4]]


@pytest.fixture(scope="module")
def service():
    conf = make_conf("v3")
    conf.cost.data_scale = SERVICE_DATA_SCALE
    conf.server2_default_parallelism = 2   # force real queueing
    svc = HiveService(conf=conf)
    create_ssb_warehouse(svc.server, SsbScale.tiny(),
                         svc.server.connect())
    yield svc
    svc.shutdown()


def test_plan_cache_compile_saving(benchmark, service):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    session = service.open_session(token="bench")
    session.driver.conf.results_cache_enabled = False

    def replay():
        total = 0.0
        for sql in REPLAY:
            op = service.execute(session.session_id, sql)
            assert op.state == "finished", op.error
            total += op.total_s
        return total

    cold = replay()
    warm = replay()
    saving = cold - warm
    expected = len(REPLAY) * (
        service.server.conf.cost.compile_overhead_s
        - service.server.conf.cost.plan_cache_hit_compile_s)
    print()
    print("Serving — plan cache compile saving (4 SSB dashboards)")
    print(f"  cold replay: {cold:8.3f}s virtual")
    print(f"  warm replay: {warm:8.3f}s virtual "
          f"(saved {saving:.3f}s, compile share "
          f"{expected / cold:.0%} of cold)")
    BENCH_COLLECTOR.record("service_plan_cache", "ssb replay cold",
                           seconds=cold, rows=0)
    BENCH_COLLECTOR.record("service_plan_cache", "ssb replay warm",
                           seconds=warm, rows=0)
    benchmark.extra_info["compile_saving_s"] = round(saving, 6)
    assert saving >= expected - 1e-6
    service.close_session(session.session_id)


def test_concurrent_tenants_throughput(benchmark, service):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    admin = service.server.connect()
    logged_before = admin.execute(
        "SELECT COUNT(*), SUM(total_s) FROM sys.query_log").rows[0]
    clients = [
        LoadClient(token=("bi", "etl", "adhoc")[i % 3],
                   statements=[REPLAY[i % 4], REPLAY[(i + 1) % 4]],
                   application="bench")
        for i in range(12)
    ]
    report = run_load(service, clients, repeat=2)
    assert report.submitted == 12 * 2 * 2
    assert report.lost == 0 and report.duplicates == 0
    assert report.errors == 0, report.error_messages[:3]

    logged_after = admin.execute(
        "SELECT COUNT(*), SUM(total_s) FROM sys.query_log").rows[0]
    statements = logged_after[0] - logged_before[0]
    virtual_s = (logged_after[1] or 0.0) - (logged_before[1] or 0.0)
    registry = service.server.obs.registry
    p95 = registry.percentile("service.admission.wait_s", 95.0,
                              pool="default")
    p99 = registry.percentile("service.admission.wait_s", 99.0,
                              pool="default")
    assert p95 is not None and p99 is not None
    assert p99 >= p95 >= 0.0

    print()
    print("Serving — 12 clients, 3 tenants, pool parallelism 2")
    print(f"  {report.finished} statements, "
          f"{report.throughput_per_s:7.1f} stmt/s wall, "
          f"{virtual_s:.1f}s virtual across {statements} logged")
    print(f"  admission wait: p95={p95:.3f}s p99={p99:.3f}s virtual")
    print(f"  plan-cache hits: {report.plan_cache_hits}, "
          f"results-cache hits: {report.results_cache_hits}")
    BENCH_COLLECTOR.record(
        "service_concurrency", "12 clients x 4 SSB dashboards",
        seconds=virtual_s, rows=report.rows_fetched,
        breakdown={
            "throughput_stmt_per_s": round(report.throughput_per_s, 3),
            "admission_wait_p95_s": round(p95, 6),
            "admission_wait_p99_s": round(p99, 6),
            "plan_cache_hits": report.plan_cache_hits,
            "results_cache_hits": report.results_cache_hits,
        })
    benchmark.extra_info["admission_wait_p99_s"] = round(p99, 6)
