"""Query results cache: hits, invalidation, pending-entry mode."""

import threading

import pytest

import repro
from repro.config import HiveConf
from repro.server.results_cache import QueryResultsCache


class TestCacheUnit:
    def test_miss_install_publish_hit(self):
        cache = QueryResultsCache()
        entry, must_compute = cache.lookup("q1", {"t": 1})
        assert must_compute
        cache.publish(entry, [(1,)], ["a"], {"t": 1})
        hit, must_compute = cache.lookup("q1", {"t": 1})
        assert not must_compute
        assert hit.rows == [(1,)]

    def test_stale_snapshot_invalidates(self):
        cache = QueryResultsCache()
        entry, _ = cache.lookup("q1", {"t": 1})
        cache.publish(entry, [(1,)], ["a"], {"t": 1})
        fresh, must_compute = cache.lookup("q1", {"t": 2})
        assert must_compute
        assert cache.stats.invalidations == 1

    def test_abandon_clears_pending(self):
        cache = QueryResultsCache()
        entry, _ = cache.lookup("q1", {})
        cache.abandon(entry)
        again, must_compute = cache.lookup("q1", {})
        assert must_compute

    def test_eviction_by_lru(self):
        cache = QueryResultsCache(max_entries=2)
        for name in ("a", "b", "c"):
            entry, _ = cache.lookup(name, {})
            cache.publish(entry, [], [], {})
        assert len(cache) <= 3  # pending slots may briefly exceed

    def test_pending_entry_thundering_herd(self):
        """Concurrent identical queries: one computes, others wait."""
        cache = QueryResultsCache(wait_for_pending=True)
        computed = []
        served = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            entry, must_compute = cache.lookup("q", {"t": 1})
            if must_compute:
                computed.append(1)
                cache.publish(entry, [(42,)], ["x"], {"t": 1})
            else:
                served.append(entry.rows)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(computed) == 1
        assert served == [[(42,)]] * 3

    def test_pending_computer_failure_releases_waiters(self):
        """The elected computer fails: waiters must neither hang nor be

        served the poisoned entry — one of them gets re-elected and
        computes, the rest see its fresh result."""
        import time

        cache = QueryResultsCache(wait_for_pending=True)
        doomed, must_compute = cache.lookup("q", {"t": 1})
        assert must_compute
        outcomes = []
        started = threading.Barrier(3)

        def waiter():
            started.wait()
            entry, compute = cache.lookup("q", {"t": 1})
            if compute:
                cache.publish(entry, [(7,)], ["x"], {"t": 1})
                outcomes.append(("computed", None))
            else:
                outcomes.append(("served", entry.rows))

        threads = [threading.Thread(target=waiter) for _ in range(2)]
        for t in threads:
            t.start()
        started.wait()
        time.sleep(0.05)       # let both waiters block on the pending entry
        cache.abandon(doomed)  # the computer dies
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads), "waiters hung"
        assert len(outcomes) == 2
        # nobody was handed the failed entry's (empty) rows
        assert all(rows == [(7,)]
                   for kind, rows in outcomes if kind == "served")
        assert any(kind == "computed" for kind, _ in outcomes)
        assert cache.stats.pending_waits >= 1

    def test_abandoned_entry_not_served_later(self):
        cache = QueryResultsCache(wait_for_pending=True)
        entry, _ = cache.lookup("q", {"t": 1})
        cache.abandon(entry)
        again, must_compute = cache.lookup("q", {"t": 1})
        assert must_compute
        assert again is not entry


class TestCacheEndToEnd:
    @pytest.fixture
    def session(self):
        session = repro.HiveServer2(HiveConf.v3_profile()).connect()
        session.execute("CREATE TABLE t (a INT, b STRING)")
        session.execute("INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'x')")
        return session

    def test_hit_after_identical_query(self, session):
        first = session.execute("SELECT b, COUNT(*) FROM t GROUP BY b")
        second = session.execute("SELECT b, COUNT(*) FROM t GROUP BY b")
        assert not first.from_cache and second.from_cache
        assert second.rows == first.rows
        assert second.metrics.total_s < first.metrics.total_s

    def test_write_invalidates(self, session):
        session.execute("SELECT COUNT(*) FROM t")
        session.execute("INSERT INTO t VALUES (4, 'z')")
        result = session.execute("SELECT COUNT(*) FROM t")
        assert not result.from_cache
        assert result.rows == [(4,)]

    def test_delete_invalidates(self, session):
        session.execute("SELECT COUNT(*) FROM t")
        session.execute("DELETE FROM t WHERE a = 1")
        result = session.execute("SELECT COUNT(*) FROM t")
        assert not result.from_cache
        assert result.rows == [(2,)]

    def test_nondeterministic_not_cached(self, session):
        session.execute("SELECT a, rand() FROM t")
        second = session.execute("SELECT a, rand() FROM t")
        assert not second.from_cache

    def test_current_date_not_cached(self, session):
        session.execute("SELECT current_date() FROM t LIMIT 1")
        again = session.execute("SELECT current_date() FROM t LIMIT 1")
        assert not again.from_cache

    def test_different_database_distinct_keys(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        first = server.connect()
        first.execute("CREATE DATABASE db2")
        first.execute("CREATE TABLE t (a INT)")
        first.execute("INSERT INTO t VALUES (1)")
        second = server.connect(database="db2")
        second.execute("CREATE TABLE db2.t (a INT)")
        second.execute("INSERT INTO db2.t VALUES (1), (2)")
        assert first.execute("SELECT COUNT(*) FROM t").rows == [(1,)]
        # same query text from the other session's database must not hit
        # the first session's entry (unqualified names are resolved)
        result = second.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [(2,)]
        assert not result.from_cache

    def test_disabled_by_conf(self, session):
        session.conf.results_cache_enabled = False
        session.execute("SELECT COUNT(*) FROM t")
        again = session.execute("SELECT COUNT(*) FROM t")
        assert not again.from_cache
