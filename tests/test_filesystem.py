"""Simulated HDFS semantics: immutability, FileIds, rename, listing."""

import pytest

from repro.fs import SimFileSystem
from repro.fs.filesystem import FileSystemError


@pytest.fixture
def fs():
    return SimFileSystem()


class TestFiles:
    def test_create_and_read(self, fs):
        fs.create("/a/b/file", b"hello")
        assert fs.read("/a/b/file") == b"hello"
        assert fs.exists("/a/b")          # parents implicitly created

    def test_files_are_immutable(self, fs):
        fs.create("/f", b"one")
        with pytest.raises(FileSystemError):
            fs.create("/f", b"two")

    def test_file_ids_unique_and_stable(self, fs):
        first = fs.create("/x", b"1")
        second = fs.create("/y", b"2")
        assert first.file_id != second.file_id
        assert fs.file_id("/x") == first.file_id

    def test_etag_changes_with_new_file(self, fs):
        fs.create("/t/f", b"aaaa")
        old = fs.status("/t/f")
        fs.delete("/t/f")
        fs.create("/t/f", b"bbbbbb")
        new = fs.status("/t/f")
        assert (old.file_id, old.length) != (new.file_id, new.length)

    def test_read_range(self, fs):
        fs.create("/f", b"0123456789")
        assert fs.read_range("/f", 2, 3) == b"234"

    def test_missing_file(self, fs):
        with pytest.raises(FileSystemError):
            fs.read("/nope")
        with pytest.raises(FileSystemError):
            fs.status("/nope")


class TestDirectories:
    def test_mkdirs_and_listing(self, fs):
        fs.mkdirs("/w/db/t/part=1")
        fs.mkdirs("/w/db/t/part=2")
        assert fs.list_dirs("/w/db/t") == ["/w/db/t/part=1",
                                           "/w/db/t/part=2"]

    def test_list_files_non_recursive(self, fs):
        fs.create("/d/one", b"1")
        fs.create("/d/sub/two", b"2")
        names = [s.path for s in fs.list_files("/d")]
        assert names == ["/d/one"]
        recursive = [s.path for s in fs.list_files("/d", recursive=True)]
        assert recursive == ["/d/one", "/d/sub/two"]

    def test_delete_requires_recursive(self, fs):
        fs.create("/d/x", b"1")
        with pytest.raises(FileSystemError):
            fs.delete("/d")
        assert fs.delete("/d", recursive=True) == 1
        assert not fs.exists("/d")

    def test_empty_partition_dirs_survive(self, fs):
        fs.mkdirs("/t/part=9")
        assert fs.list_files("/t/part=9") == []

    def test_rename_directory_tree(self, fs):
        fs.create("/src/a/f1", b"1")
        fs.create("/src/f2", b"2")
        fs.rename("/src", "/dst")
        assert fs.read("/dst/a/f1") == b"1"
        assert fs.read("/dst/f2") == b"2"
        assert not fs.exists("/src")

    def test_rename_file_keeps_file_id(self, fs):
        entry = fs.create("/old", b"data")
        fs.rename("/old", "/new")
        assert fs.file_id("/new") == entry.file_id

    def test_rename_refuses_overwrite(self, fs):
        fs.create("/a", b"1")
        fs.create("/b", b"2")
        with pytest.raises(FileSystemError):
            fs.rename("/a", "/b")


class TestAccounting:
    def test_stats_track_bytes(self, fs):
        fs.create("/f", b"x" * 100)
        fs.read("/f")
        fs.read_range("/f", 0, 10)
        assert fs.stats.bytes_written == 100
        assert fs.stats.bytes_read == 110
        assert fs.stats.files_created == 1
        assert fs.stats.files_opened == 2

    def test_total_bytes_subtree(self, fs):
        fs.create("/a/f1", b"12345")
        fs.create("/b/f2", b"123")
        assert fs.total_bytes("/a") == 5
        assert fs.total_bytes() == 8

    def test_stats_reset(self, fs):
        fs.create("/f", b"1")
        fs.stats.reset()
        assert fs.stats.bytes_written == 0
