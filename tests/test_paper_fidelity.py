"""Every SQL snippet printed in the paper, executed verbatim (modulo

whitespace).  This is the "it really is that system" suite: §3.1's
partitioned CREATE TABLE, Figure 4's materialized view and rewritten
queries, §4.6's semijoin example, §5.2's resource plan, §6.1's Druid
DDL and Figure 6's federated query.
"""

import pytest

import repro
from repro.federation import DruidEngine, DruidStorageHandler
from repro.plan.relnodes import find_scans


@pytest.fixture
def server():
    s = repro.HiveServer2()
    s.register_storage_handler("druid", DruidStorageHandler(DruidEngine()))
    return s


@pytest.fixture
def session(server):
    s = server.connect()
    s.conf.results_cache_enabled = False
    return s


class TestSection31:
    """The PARTITIONED BY example and Figure 3's layout."""

    DDL = """
        CREATE TABLE store_sales (
            item_sk INT, customer_sk INT, store_sk INT,
            quantity INT, list_price DECIMAL(7,2),
            sales_price DECIMAL(7,2)
        ) PARTITIONED BY (sold_date_sk INT)"""

    def test_ddl_and_physical_layout(self, session):
        session.execute(self.DDL)
        session.execute("INSERT INTO store_sales PARTITION "
                        "(sold_date_sk=1) VALUES (1, 1, 1, 2, 9.99, 8.5)")
        session.execute("INSERT INTO store_sales PARTITION "
                        "(sold_date_sk=2) VALUES (2, 2, 1, 1, 5.00, 4.0)")
        fs = session.server.fs
        # Figure 3: warehouse/db/table/sold_date_sk=V/delta_*
        dirs = fs.list_dirs("/warehouse/default/store_sales")
        assert dirs == ["/warehouse/default/store_sales/sold_date_sk=1",
                        "/warehouse/default/store_sales/sold_date_sk=2"]
        inner = fs.list_dirs(dirs[0])
        assert inner[0].endswith("delta_1_1")

    def test_partition_skipping(self, session):
        session.execute(self.DDL)
        session.execute("INSERT INTO store_sales PARTITION "
                        "(sold_date_sk=1) VALUES (1, 1, 1, 2, 9.99, 8.5)")
        session.execute("INSERT INTO store_sales PARTITION "
                        "(sold_date_sk=2) VALUES (2, 2, 1, 1, 5.00, 4.0)")
        result = session.execute(
            "SELECT COUNT(*) FROM store_sales WHERE sold_date_sk = 1")
        scan = find_scans(result.optimized.root)[0]
        assert scan.pruned_partitions == ((1,),)


class TestFigure4:
    """The materialized view and both rewritten queries, verbatim."""

    def _setup(self, session):
        session.execute("""CREATE TABLE store_sales (
            ss_sold_date_sk INT, ss_sales_price DOUBLE)""")
        session.execute("""CREATE TABLE date_dim (
            d_date_sk INT, d_year INT, d_moy INT, d_dom INT,
            PRIMARY KEY (d_date_sk) DISABLE NOVALIDATE)""")
        dates = ", ".join(
            f"({sk}, {2016 + sk // 12}, {sk % 12 + 1}, {sk % 28 + 1})"
            for sk in range(36))
        session.execute(f"INSERT INTO date_dim VALUES {dates}")
        sales = ", ".join(f"({i % 36}, {float(i % 25) + 0.25})"
                          for i in range(400))
        session.execute(f"INSERT INTO store_sales VALUES {sales}")
        # Figure 4(a)
        session.execute("""
            CREATE MATERIALIZED VIEW mat_view AS
            SELECT d_year, d_moy, d_dom,
                   SUM(ss_sales_price) AS sum_sales
            FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
            GROUP BY d_year, d_moy, d_dom""")

    def test_q1_full_containment(self, session):
        self._setup(session)
        q1 = """
            SELECT SUM(ss_sales_price) AS sum_sales
            FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk AND
                  d_year = 2018 AND d_moy IN (1,2,3)"""
        session.conf.mv_rewriting = False
        expected = session.execute(q1).rows
        session.conf.mv_rewriting = True
        result = session.execute(q1)
        assert result.views_used == ["default.mat_view"]
        assert result.rows == expected

    def test_q2_partial_containment(self, session):
        self._setup(session)
        q2 = """
            SELECT d_year, d_moy, SUM(ss_sales_price) AS sum_sales
            FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk AND d_year > 2016
            GROUP BY d_year, d_moy ORDER BY d_year, d_moy"""
        session.conf.mv_rewriting = False
        expected = session.execute(q2).rows
        session.conf.mv_rewriting = True
        result = session.execute(q2)
        assert result.views_used == ["default.mat_view"]
        assert result.rows == expected


class TestSection46:
    """The semijoin-reduction example query, verbatim."""

    SQL = """
        SELECT ss_customer_sk, SUM(ss_sales_price) AS sum_sales
        FROM store_sales, store_returns, item
        WHERE ss_item_sk = sr_item_sk AND
              ss_ticket_number = sr_ticket_number AND
              ss_item_sk = i_item_sk AND
              i_category = 'Sports'
        GROUP BY ss_customer_sk
        ORDER BY sum_sales DESC"""

    def test_semijoin_example(self, session):
        session.execute("""CREATE TABLE store_sales (
            ss_item_sk INT, ss_ticket_number INT, ss_customer_sk INT,
            ss_sales_price DOUBLE)""")
        session.execute("CREATE TABLE store_returns "
                        "(sr_item_sk INT, sr_ticket_number INT)")
        session.execute("""CREATE TABLE item (
            i_item_sk INT, i_category STRING,
            PRIMARY KEY (i_item_sk) DISABLE NOVALIDATE)""")
        sales = ", ".join(
            f"({i % 20}, {i}, {i % 50}, {float(i % 30)})"
            for i in range(600))
        session.execute(f"INSERT INTO store_sales VALUES {sales}")
        returns = ", ".join(f"({i % 20}, {i})" for i in range(0, 600, 7))
        session.execute(f"INSERT INTO store_returns VALUES {returns}")
        cats = ["Sports", "Books", "Music", "Home"]
        items = ", ".join(f"({i}, '{cats[i % 4]}')" for i in range(20))
        session.execute(f"INSERT INTO item VALUES {items}")

        result = session.execute(self.SQL)
        assert result.optimized.semijoin_reducers
        session.conf.semijoin_reduction = False
        baseline = session.execute(self.SQL)
        assert result.rows == baseline.rows
        assert len(result.rows) > 0


class TestSection52:
    """The resource-plan DDL, line for line."""

    def test_paper_ddl_verbatim(self, server):
        session = server.connect()
        ddl = [
            "CREATE RESOURCE PLAN daytime;",
            "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
            "query_parallelism=5;",
            "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
            "query_parallelism=20;",
            "CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 "
            "THEN MOVE etl;",
            "ADD RULE downgrade TO bi;",
            "CREATE APPLICATION MAPPING visualization_app IN daytime "
            "TO bi;",
            "ALTER PLAN daytime SET DEFAULT POOL = etl;",
            "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;",
        ]
        for statement in ddl:
            session.execute(statement)
        plan = server.workload_manager.plan
        assert plan.name == "daytime" and plan.enabled
        assert plan.pools["bi"].alloc_fraction == 0.8
        assert plan.pools["etl"].query_parallelism == 20
        assert plan.default_pool == "etl"
        assert plan.pools["bi"].triggers[0].threshold == 3000


class TestSection61And62:
    """Druid DDL and the Figure 6 query."""

    def test_create_external_with_columns(self, session):
        session.execute("""
            CREATE EXTERNAL TABLE druid_table_2 (
                __time TIMESTAMP, dim1 VARCHAR(20), m1 FLOAT)
            STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
            """)
        handler = session.server.storage_handlers["druid"]
        assert "druid_table_2" in handler.engine.datasources

    def test_map_existing_datasource(self, session):
        session.execute("""
            CREATE EXTERNAL TABLE druid_table_2 (
                __time TIMESTAMP, dim1 VARCHAR(20), m1 FLOAT)
            STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
            """)
        session.execute("""
            CREATE EXTERNAL TABLE druid_table_1
            STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
            TBLPROPERTIES ('druid.datasource' = 'druid_table_2')""")
        table = session.server.hms.get_table("druid_table_1")
        # columns inferred from Druid metadata, as the paper notes
        assert [c.name for c in table.schema] == ["__time", "dim1", "m1"]

    def test_figure6_query_generates_druid_json(self, session):
        session.execute("""
            CREATE EXTERNAL TABLE druid_table_1 (
                __time TIMESTAMP, d1 VARCHAR(20), m1 FLOAT)
            STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
            TBLPROPERTIES ('druid.datasource' = 'my_druid_source')""")
        session.execute("""
            INSERT INTO druid_table_1 VALUES
            (TIMESTAMP '2017-06-01 00:00:00', 'a', 1.0),
            (TIMESTAMP '2018-03-01 00:00:00', 'b', 2.0),
            (TIMESTAMP '2016-01-01 00:00:00', 'c', 4.0)""")
        result = session.execute("""
            SELECT d1, SUM(m1) AS s
            FROM druid_table_1
            WHERE EXTRACT(year FROM __time) >= 2017
              AND EXTRACT(year FROM __time) <= 2018
            GROUP BY d1
            ORDER BY s DESC
            LIMIT 10""")
        assert result.rows == [("b", 2.0), ("a", 1.0)]
        pushed = [s.pushed_query
                  for s in find_scans(result.optimized.root)
                  if s.pushed_query is not None]
        assert pushed, "the aggregation should reach Druid"
        body = pushed[0].to_json()
        assert '"dataSource": "my_druid_source"' in body
        assert '"limitSpec"' in body
