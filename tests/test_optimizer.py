"""Optimizer rules: folding, pushdown, pruning, reordering, semijoin,

shared work — each rule checked for both its structural effect and for
result equivalence with the unoptimized plan.
"""

import random

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import DATE, DOUBLE, INT, STRING
from repro.common.vector import VectorBatch
from repro.config import HiveConf
from repro.exec.operators import ExecutionContext, execute
from repro.fs import SimFileSystem
from repro.metastore.hms import HiveMetastore
from repro.metastore.stats import TableStatistics
from repro.optimizer import Optimizer
from repro.optimizer.rules_basic import fold_rex
from repro.optimizer.shared_work import find_shared_subtrees
from repro.plan import relnodes as rel
from repro.plan.rexnodes import RexCall, RexLiteral, make_call
from repro.common.types import BOOLEAN
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_query

FACT = Schema([Column("f_key", INT), Column("f_dim", INT),
               Column("f_amt", DOUBLE)])
DIM = Schema([Column("d_key", INT), Column("d_cat", STRING)])


@pytest.fixture
def env():
    fs = SimFileSystem()
    hms = HiveMetastore(fs)
    fact = hms.create_table("default", "fact", FACT)
    dim = hms.create_table("default", "dim", DIM)
    rng = random.Random(3)
    fact_rows = [(rng.randint(0, 199), rng.randint(0, 19),
                  round(rng.uniform(1, 100), 2)) for _ in range(3000)]
    dim_rows = [(i, random.Random(i).choice(["a", "b", "c", "d"]))
                for i in range(20)]
    hms.set_statistics(fact, TableStatistics.from_rows(FACT, fact_rows))
    hms.set_statistics(dim, TableStatistics.from_rows(DIM, dim_rows))
    data = {"default.fact": VectorBatch.from_rows(FACT, fact_rows),
            "default.dim": VectorBatch.from_rows(DIM, dim_rows)}

    def scan_executor(node):
        batch = data[node.table_name]
        names = [c.name for c in node.schema]
        idx = [batch.schema.index_of(n) for n in names]
        return batch.project(idx, batch.schema.select(names))

    return hms, scan_executor


def analyze(hms, sql):
    return Analyzer(hms, HiveConf()).analyze_query(parse_query(sql))


def run(plan, scan_executor):
    return execute(plan, ExecutionContext(scan_executor=scan_executor)
                   ).to_rows()


class TestConstantFolding:
    def test_arith_folds(self):
        expr = RexCall("+", (RexLiteral(2, INT), RexLiteral(3, INT)), INT)
        folded = fold_rex(expr)
        assert isinstance(folded, RexLiteral) and folded.value == 5

    def test_and_true_elides(self):
        keep = make_call(">", RexLiteral(1, INT), RexLiteral(0, INT))
        expr = make_call("AND", RexLiteral(True, BOOLEAN), keep)
        assert fold_rex(expr).digest == fold_rex(keep).digest

    def test_and_false_short_circuits(self):
        expr = make_call("AND", RexLiteral(False, BOOLEAN),
                         make_call("=", RexLiteral(1, INT),
                                   RexLiteral(1, INT)))
        folded = fold_rex(expr)
        assert isinstance(folded, RexLiteral) and folded.value is False

    def test_or_true_short_circuits(self):
        expr = make_call("OR", RexLiteral(True, BOOLEAN),
                         RexLiteral(False, BOOLEAN))
        assert fold_rex(expr).value is True


class TestPushdownAndPruning:
    SQL = ("SELECT d_cat, SUM(f_amt) s FROM fact, dim "
           "WHERE f_dim = d_key AND d_cat = 'a' AND f_amt > 50 "
           "GROUP BY d_cat")

    def test_filters_reach_scans(self, env):
        hms, _ = env
        plan = analyze(hms, self.SQL)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        scans = rel.find_scans(optimized.root)
        by_table = {s.table_name: s for s in scans}
        assert any("f_amt" not in "" and s.sarg_conjuncts
                   for s in scans)
        assert by_table["default.dim"].sarg_conjuncts

    def test_column_pruning_narrows_scans(self, env):
        hms, _ = env
        plan = analyze(hms, self.SQL)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        fact_scan = next(s for s in rel.find_scans(optimized.root)
                         if s.table_name == "default.fact")
        assert "f_key" not in fact_scan.schema
        assert len(fact_scan.schema) == 2

    def test_equivalence(self, env):
        hms, scan_executor = env
        plan = analyze(hms, self.SQL)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        assert sorted(run(plan, scan_executor)) == sorted(
            run(optimized.root, scan_executor))

    @pytest.mark.parametrize("sql", [
        "SELECT f_key FROM fact WHERE f_amt > 20 AND f_dim IN (1,2,3)",
        "SELECT d_cat, COUNT(*) FROM dim GROUP BY d_cat HAVING COUNT(*) > 2",
        "SELECT f_dim, SUM(f_amt) FROM fact GROUP BY f_dim ORDER BY 2 DESC LIMIT 4",
        "SELECT f.f_key FROM fact f LEFT JOIN dim d ON f.f_dim = d.d_key WHERE f.f_amt > 90",
        "SELECT f_key FROM fact WHERE f_dim IN (SELECT d_key FROM dim WHERE d_cat = 'b')",
        "SELECT d_cat, (SELECT MAX(f_amt) FROM fact WHERE f_dim = d_key) m FROM dim",
        "SELECT f_dim FROM fact WHERE f_amt > 95 UNION SELECT d_key FROM dim",
    ])
    def test_optimizer_preserves_semantics(self, env, sql):
        hms, scan_executor = env
        plan = analyze(hms, sql)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        assert sorted(map(repr, run(plan, scan_executor))) == sorted(
            map(repr, run(optimized.root, scan_executor)))


class TestJoinReorder:
    SQL = ("SELECT COUNT(*) FROM dim, fact "
           "WHERE f_dim = d_key AND d_cat = 'a'")

    def test_small_side_becomes_build(self, env):
        hms, _ = env
        plan = analyze(hms, "SELECT COUNT(*) c FROM fact f1, fact f2, dim "
                            "WHERE f1.f_key = f2.f_key "
                            "AND f1.f_dim = d_key AND d_cat = 'a'")
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        joins = [n for n in rel.walk(optimized.root)
                 if isinstance(n, rel.Join)]
        assert joins, "expected joins to survive"

    def test_reorder_equivalence(self, env):
        hms, scan_executor = env
        plan = analyze(hms, self.SQL)
        on = Optimizer(hms, HiveConf()).optimize(plan)
        off = Optimizer(hms, HiveConf(
            join_reordering=False)).optimize(plan)
        assert run(on.root, scan_executor) == run(off.root, scan_executor)


class TestSemijoinPlanning:
    SQL = ("SELECT SUM(f_amt) FROM fact, dim "
           "WHERE f_dim = d_key AND d_cat = 'a'")

    def test_reducer_planted_on_fact(self, env):
        hms, _ = env
        plan = analyze(hms, self.SQL)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        assert len(optimized.semijoin_reducers) == 1
        reducer = optimized.semijoin_reducers[0]
        assert reducer.target_table == "default.fact"
        assert reducer.target_column == "f_dim"
        fact_scan = next(s for s in rel.find_scans(optimized.root)
                         if s.table_name == "default.fact")
        assert reducer.reducer_id in fact_scan.semijoin_sources

    def test_disabled_by_flag(self, env):
        hms, _ = env
        plan = analyze(hms, self.SQL)
        optimized = Optimizer(hms, HiveConf(
            semijoin_reduction=False)).optimize(plan)
        assert not optimized.semijoin_reducers

    def test_no_reducer_without_dim_filter(self, env):
        hms, _ = env
        plan = analyze(hms, "SELECT SUM(f_amt) FROM fact, dim "
                            "WHERE f_dim = d_key")
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        assert not optimized.semijoin_reducers


class TestSharedWork:
    def test_repeated_subtree_detected(self, env):
        hms, _ = env
        sql = ("SELECT a.c1, b.c1 FROM "
               "(SELECT COUNT(*) c1 FROM fact WHERE f_amt > 50) a, "
               "(SELECT COUNT(*) c1 FROM fact WHERE f_amt > 50) b")
        plan = analyze(hms, sql)
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        assert optimized.shared_digests

    def test_different_subtrees_not_shared(self, env):
        hms, _ = env
        sql = ("SELECT a.c1, b.c1 FROM "
               "(SELECT COUNT(*) c1 FROM fact WHERE f_amt > 50) a, "
               "(SELECT COUNT(*) c1 FROM fact WHERE f_amt > 60) b")
        plan = analyze(hms, sql)
        shared = find_shared_subtrees(
            Optimizer(hms, HiveConf(
                shared_work_optimization=False,
                semijoin_reduction=False)).optimize(plan).root)
        # the two aggregates differ, but the bare fact scan may still
        # be shared if sargs match — with different filters they don't
        aggregate_digests = {n.digest for n in rel.walk(plan)
                             if isinstance(n, rel.Aggregate)}
        assert not (shared & aggregate_digests)


class TestPartitionPruning:
    def test_partitions_filtered_statically(self):
        fs = SimFileSystem()
        hms = HiveMetastore(fs)
        table = hms.create_table(
            "default", "events", Schema([Column("v", INT)]),
            partition_columns=[Column("ds", INT)])
        for ds in range(10):
            hms.add_partition(table, (ds,))
        plan = analyze(hms, "SELECT v FROM events WHERE ds >= 7")
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        scan = rel.find_scans(optimized.root)[0]
        assert scan.pruned_partitions is not None
        assert sorted(scan.pruned_partitions) == [(7,), (8,), (9,)]

    def test_in_predicate_prunes(self):
        fs = SimFileSystem()
        hms = HiveMetastore(fs)
        table = hms.create_table(
            "default", "events", Schema([Column("v", INT)]),
            partition_columns=[Column("ds", INT)])
        for ds in range(5):
            hms.add_partition(table, (ds,))
        plan = analyze(hms, "SELECT v FROM events WHERE ds IN (1, 3)")
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        scan = rel.find_scans(optimized.root)[0]
        assert sorted(scan.pruned_partitions) == [(1,), (3,)]


class TestStages:
    def test_legacy_profile_skips_cbo_stages(self, env):
        hms, _ = env
        plan = analyze(hms, TestPushdownAndPruning.SQL)
        optimized = Optimizer(hms, HiveConf.legacy_profile()).optimize(
            plan)
        assert "join_reordering" not in optimized.stages_applied
        assert "semijoin_reduction" not in optimized.stages_applied
        assert "filter_pushdown" in optimized.stages_applied
