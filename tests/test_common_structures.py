"""Schemas, column vectors and batches."""

import datetime

import numpy as np
import pytest

from repro.common.rows import Column, Schema
from repro.common.types import DATE, DOUBLE, INT, STRING
from repro.common.vector import (ColumnVector, VectorBatch,
                                 rows_to_batches)
from repro.errors import AnalysisError, ExecutionError


class TestSchema:
    def test_lookup_case_insensitive(self, simple_schema):
        assert simple_schema.index_of("A") == 0
        assert "B" in simple_schema
        assert simple_schema.field("C").dtype == DOUBLE

    def test_unknown_column(self, simple_schema):
        with pytest.raises(AnalysisError):
            simple_schema.index_of("zzz")

    def test_duplicate_rejected(self):
        with pytest.raises(AnalysisError):
            Schema([Column("x", INT), Column("X", INT)])

    def test_select_preserves_order(self, simple_schema):
        sub = simple_schema.select(["c", "a"])
        assert sub.names() == ["c", "a"]

    def test_concat_dedupe(self, simple_schema):
        merged = simple_schema.concat(
            Schema([Column("a", INT), Column("z", INT)]), dedupe=True)
        assert merged.names() == ["a", "b", "c", "d", "a_1", "z"]

    def test_concat_clash_raises_without_dedupe(self, simple_schema):
        with pytest.raises(AnalysisError):
            simple_schema.concat(Schema([Column("a", INT)]))

    def test_row_width(self, simple_schema):
        assert simple_schema.row_width_bytes() == 4 + 24 + 8 + 4

    def test_equality_and_hash(self, simple_schema):
        clone = Schema(simple_schema.columns)
        assert clone == simple_schema
        assert hash(clone) == hash(simple_schema)


class TestColumnVector:
    def test_from_values_with_nulls(self):
        vector = ColumnVector.from_values(INT, [1, None, 3])
        assert vector.nulls.tolist() == [False, True, False]
        assert vector.value(0) == 1
        assert vector.value(1) is None

    def test_date_storage(self):
        day = datetime.date(2020, 3, 1)
        vector = ColumnVector.from_values(DATE, [day])
        assert vector.data.dtype == np.dtype(np.int32)
        assert vector.value(0) == day

    def test_take_filter_slice(self):
        vector = ColumnVector.from_values(INT, [10, 20, 30, 40])
        assert vector.take(np.array([3, 0])).to_values() == [40, 10]
        mask = np.array([True, False, True, False])
        assert vector.filter(mask).to_values() == [10, 30]
        assert vector.slice(1, 3).to_values() == [20, 30]

    def test_concat(self):
        a = ColumnVector.from_values(STRING, ["x", None])
        b = ColumnVector.from_values(STRING, ["y"])
        merged = ColumnVector.concat([a, b])
        assert merged.to_values() == ["x", None, "y"]

    def test_concat_empty_list_raises(self):
        with pytest.raises(ExecutionError):
            ColumnVector.concat([])

    def test_nbytes_accounts_strings(self):
        short = ColumnVector.from_values(STRING, ["a"])
        long = ColumnVector.from_values(STRING, ["a" * 1000])
        assert long.nbytes() > short.nbytes()


class TestVectorBatch:
    def test_round_trip(self, simple_schema):
        rows = [(1, "x", 1.5, datetime.date(2020, 1, 1)),
                (None, None, None, None)]
        batch = VectorBatch.from_rows(simple_schema, rows)
        assert batch.num_rows == 2
        assert batch.to_rows() == rows

    def test_ragged_vectors_rejected(self, simple_schema):
        vectors = [ColumnVector.from_values(c.dtype, [None])
                   for c in simple_schema]
        vectors[0] = ColumnVector.from_values(INT, [1, 2])
        with pytest.raises(ExecutionError):
            VectorBatch(simple_schema, vectors)

    def test_schema_width_mismatch(self, simple_schema):
        with pytest.raises(ExecutionError):
            VectorBatch(simple_schema, [])

    def test_project(self, simple_schema):
        batch = VectorBatch.from_rows(
            simple_schema, [(1, "x", 1.5, None)])
        out = batch.project([1, 0], simple_schema.select(["b", "a"]))
        assert out.to_rows() == [("x", 1)]

    def test_concat_batches(self, simple_schema):
        one = VectorBatch.from_rows(simple_schema, [(1, "a", 1.0, None)])
        two = VectorBatch.from_rows(simple_schema, [(2, "b", 2.0, None)])
        merged = VectorBatch.concat(simple_schema, [one, two])
        assert merged.num_rows == 2

    def test_concat_empty(self, simple_schema):
        merged = VectorBatch.concat(simple_schema, [])
        assert merged.num_rows == 0
        assert merged.schema == simple_schema

    def test_rows_to_batches_chunks(self, simple_schema):
        rows = [(i, "s", float(i), None) for i in range(10)]
        batches = list(rows_to_batches(simple_schema, rows, batch_size=4))
        assert [b.num_rows for b in batches] == [4, 4, 2]

    def test_column_by_name(self, simple_schema):
        batch = VectorBatch.from_rows(simple_schema, [(7, "x", 0.5, None)])
        assert batch.column("a").value(0) == 7
