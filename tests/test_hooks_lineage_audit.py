"""Execution hooks, column lineage and the per-tenant audit log
(ISSUE 10 tentpole).

Covers the hook registry (isolation: raising and over-budget hooks
never change a statement's outcome), EXPLAIN LINEAGE and the lineage
graph (column-level edges for every output column, determinism under
the concurrent serving harness), metastore table provenance (CTAS →
INSERT → MV chains, rename survival, drop tombstones) and the audit
log (exactly one row per statement with tenant attribution, denied
and killed statements included), plus the RL013 lint rule.
"""

import json
import threading
import time

import pytest

from repro.config import HiveConf
from repro.errors import AnalysisError, CatalogError, ServiceError
from repro.lint.reprolint import lint_source
from repro.server.driver import HiveServer2
from repro.service import HiveService, LoadClient, run_load


@pytest.fixture
def server():
    return HiveServer2(conf=HiveConf.v3_profile())


@pytest.fixture
def service():
    svc = HiveService(conf=HiveConf.v3_profile())
    yield svc
    svc.shutdown()


def seed_tables(session):
    session.execute(
        "CREATE TABLE store_sales (ss_item_sk INT, ss_store_sk INT, "
        "ss_quantity INT, ss_net_paid DOUBLE)")
    session.execute(
        "CREATE TABLE item (i_item_sk INT, i_brand STRING)")
    session.execute(
        "INSERT INTO store_sales VALUES (1, 10, 2, 19.9), "
        "(2, 10, 1, 5.0), (1, 11, 4, 39.8)")
    session.execute(
        "INSERT INTO item VALUES (1, 'acme'), (2, 'zenith')")


JOIN_AGG = ("SELECT i.i_brand, SUM(s.ss_net_paid) AS paid, "
            "COUNT(*) AS cnt "
            "FROM store_sales s JOIN item i "
            "ON s.ss_item_sk = i.i_item_sk "
            "WHERE s.ss_quantity > 1 "
            "GROUP BY i.i_brand")


# --------------------------------------------------------------------------- #
class TestHookIsolation:
    def test_raising_hook_leaves_results_bit_identical(self):
        """ISSUE 10 acceptance: a raising hook leaves results
        bit-identical with hooks.errors incremented."""
        def run(install_bad_hook):
            conf = HiveConf.v3_profile()
            conf.faults_seed = 42
            conf.faults_task_fail_rate = 0.05
            server = HiveServer2(conf=conf)
            if install_bad_hook:
                def bad_hook(phase, ctx):
                    raise RuntimeError("boom")
                server.register_hook("bad", bad_hook)
            session = server.connect()
            seed_tables(session)
            outputs = []
            for _ in range(4):
                outputs.append(session.execute(JOIN_AGG).rows)
            return outputs, server

        clean, _ = run(install_bad_hook=False)
        hooked, server = run(install_bad_hook=True)
        assert hooked == clean
        errors = server.obs.registry.total("hooks.errors", hook="bad")
        assert errors > 0
        # the raising hook is NOT quarantined — errors alone never
        # disable a hook, only timeouts do
        entry = {h.name: h for h in server.obs.hooks.hooks()}["bad"]
        assert entry.disabled is False
        assert entry.failures > 0

    def test_blocking_hook_is_quarantined_not_fatal(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("SET hive.hook.timeout.s = 0.01")

        def slow_hook(phase, ctx):
            time.sleep(0.05)

        server.register_hook("slow", slow_hook, phases=("post_exec",))
        result = session.execute("INSERT INTO t VALUES (1)")
        assert result.rows_affected == 1    # statement unaffected
        entry = {h.name: h for h in server.obs.hooks.hooks()}["slow"]
        assert entry.disabled is True       # quarantined after the run
        assert server.obs.registry.total("hooks.timeouts",
                                         hook="slow") == 1.0
        # subsequent statements skip it entirely
        session.execute("INSERT INTO t VALUES (2)")
        entry = {h.name: h for h in server.obs.hooks.hooks()}["slow"]
        assert entry.calls == 1
        # re-registering lifts the quarantine
        server.register_hook("slow", slow_hook)
        entry = {h.name: h for h in server.obs.hooks.hooks()}["slow"]
        assert entry.disabled is False

    def test_hook_failure_status_fires_on_failure_phase(self, server):
        phases = []

        def spy(phase, ctx):
            phases.append((phase, ctx.status))

        server.register_hook("spy", spy)
        session = server.connect()
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM missing_table")
        assert ("pre_exec", "ok") in phases
        assert ("on_failure", "error") in phases

    def test_unregister_builtin_disables_auditing(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        before = len(server.obs.audit_log)
        assert server.obs.hooks.unregister("audit") is True
        session.execute("INSERT INTO t VALUES (1)")
        assert len(server.obs.audit_log) == before


# --------------------------------------------------------------------------- #
class TestExplainLineage:
    def test_join_agg_covers_every_output_column(self, server):
        """ISSUE 10 acceptance: EXPLAIN LINEAGE on a TPC-DS-style
        join+agg renders column-level edges for every output column."""
        session = server.connect()
        seed_tables(session)
        result = session.execute(f"EXPLAIN LINEAGE {JOIN_AGG}")
        text = "\n".join(row[0] for row in result.rows)
        for column in ("i_brand", "paid", "cnt"):
            assert f"column {column}" in text
        assert "default.item.i_brand [PROJECTION]" in text
        assert "default.store_sales.ss_net_paid [AGGREGATION]" in text
        # join keys and the filter land in the predicates section
        assert "default.store_sales.ss_item_sk [JOIN-KEY]" in text
        assert "default.item.i_item_sk [JOIN-KEY]" in text
        assert "default.store_sales.ss_quantity [FILTER]" in text

    def test_expression_kind_upgrade(self, server):
        session = server.connect()
        seed_tables(session)
        result = session.execute(
            "EXPLAIN LINEAGE SELECT ss_quantity * 2 AS q2 "
            "FROM store_sales")
        text = "\n".join(row[0] for row in result.rows)
        assert "default.store_sales.ss_quantity [EXPRESSION]" in text

    def test_sys_lineage_edges_matches_explain(self, server):
        session = server.connect()
        seed_tables(session)
        session.execute(JOIN_AGG)
        rows = session.execute(
            "SELECT dst_column, src_table, src_column, kind "
            "FROM sys.lineage_edges "
            "WHERE dst_column = 'paid'").rows
        assert ("paid", "default.store_sales", "ss_net_paid",
                "AGGREGATION") in rows

    def test_lineage_disabled_by_knob(self, server):
        session = server.connect()
        seed_tables(session)
        session.execute("SET hive.lineage.enabled = false")
        session.execute(JOIN_AGG)
        assert len(server.obs.lineage_graph) == 0
        session.execute("SET hive.lineage.enabled = true")
        # a repeat of JOIN_AGG would hit the results cache and skip
        # compilation; a fresh statement records again
        session.execute("SELECT i_brand FROM item")
        assert len(server.obs.lineage_graph) > 0

    def test_graph_is_bounded_lru(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        session.execute("SET hive.lineage.capacity = 2")
        # literals are fingerprint-normalized, so vary the column set
        for column in ("a", "b", "c", "d"):
            session.execute(f"SELECT {column} FROM t")
        assert len(server.obs.lineage_graph) <= 2
        assert server.obs.lineage_graph.evictions > 0


# --------------------------------------------------------------------------- #
class TestTableProvenance:
    def test_ctas_insert_mv_three_node_path(self, server):
        """ISSUE 10 acceptance: a CTAS → INSERT → MV chain yields a
        queryable 3-node provenance path in sys.lineage_tables."""
        session = server.connect()
        seed_tables(session)
        session.execute("CREATE TABLE sales_copy AS "
                        "SELECT ss_item_sk, ss_net_paid "
                        "FROM store_sales")
        session.execute("CREATE TABLE daily_agg (k INT, paid DOUBLE)")
        session.execute("INSERT INTO daily_agg "
                        "SELECT ss_item_sk, SUM(ss_net_paid) "
                        "FROM sales_copy GROUP BY ss_item_sk")
        session.execute("CREATE MATERIALIZED VIEW mv_agg AS "
                        "SELECT k, SUM(paid) AS paid FROM daily_agg "
                        "GROUP BY k")
        rows = session.execute(
            "SELECT dst_table, src_table, kind "
            "FROM sys.lineage_tables").rows
        chain = {(d, s, k) for d, s, k in rows}
        assert ("default.sales_copy", "default.store_sales",
                "ctas") in chain
        assert ("default.daily_agg", "default.sales_copy",
                "insert") in chain
        assert ("default.mv_agg", "default.daily_agg", "mv") in chain
        # walk the 3-node path store_sales -> ... -> mv_agg
        hops, node = [], "default.mv_agg"
        for _ in range(3):
            parents = [s for d, s, _ in chain if d == node]
            assert parents, f"no upstream for {node}"
            node = parents[0]
            hops.append(node)
        assert hops[-1] == "default.store_sales"

    def test_provenance_survives_rename(self, server):
        session = server.connect()
        seed_tables(session)
        session.execute("CREATE TABLE c AS SELECT * FROM item")
        session.execute("ALTER TABLE c RENAME TO c2")
        rows = session.execute(
            "SELECT dst_table, src_table, tombstoned "
            "FROM sys.lineage_tables").rows
        assert ("default.c2", "default.item", False) in rows
        assert not any(dst == "default.c" for dst, _, _ in rows)

    def test_drop_tombstones_edges(self, server):
        session = server.connect()
        seed_tables(session)
        session.execute("CREATE TABLE c AS SELECT * FROM item")
        session.execute("DROP TABLE c")
        rows = session.execute(
            "SELECT dst_table, tombstoned FROM sys.lineage_tables").rows
        assert ("default.c", True) in rows

    def test_rename_invalidates_cached_plans(self, server):
        session = server.connect()
        session.execute("CREATE TABLE r1 (a INT)")
        session.execute("INSERT INTO r1 VALUES (1)")
        session.execute("SELECT a FROM r1")
        session.execute("ALTER TABLE r1 RENAME TO r2")
        with pytest.raises(Exception):
            session.execute("SELECT a FROM r1")
        assert session.execute("SELECT a FROM r2").rows == [(1,)]

    def test_src_plan_version_tracks_ddl(self, server):
        session = server.connect()
        seed_tables(session)
        session.execute("CREATE TABLE c AS SELECT * FROM item")
        v1 = session.execute(
            "SELECT src_plan_version FROM sys.lineage_tables "
            "WHERE dst_table = 'default.c'").rows[0][0]
        session.execute("INSERT INTO item VALUES (3, 'newco')")
        v2 = session.execute(
            "SELECT src_plan_version FROM sys.lineage_tables "
            "WHERE dst_table = 'default.c'").rows[0][0]
        assert v2 > v1


# --------------------------------------------------------------------------- #
class TestAuditLog:
    def test_one_row_per_statement_with_tenant(self, service):
        service.register_tenant("bi", token="bi-token")
        admin = service.server.connect()
        admin.execute("CREATE TABLE t (a INT)")
        admin.execute("INSERT INTO t VALUES (1), (2)")
        session = service.open_session(token="bi-token")
        op = service.execute(session.session_id, "SELECT a FROM t")
        rows = [r for r in service.server.obs.audit_log.all_entries()
                if r.query_id == op.query_id]
        assert len(rows) == 1
        record = rows[0]
        assert record.tenant == "bi"
        assert record.session == session.session_id
        assert record.status == "ok"
        assert record.rows_returned == 2
        assert record.input_tables == ["default.t"]
        assert "default.t.a" in record.columns

    def test_denied_session_open_is_audited(self, service):
        service.register_tenant("bi", token="bi-token")
        with pytest.raises(ServiceError):
            service.open_session(token="wrong-token")
        denied = [r for r in service.server.obs.audit_log.entries()
                  if r.status == "denied"]
        assert len(denied) == 1
        assert denied[0].operation == "open_session"

    def test_killed_statement_is_audited(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        with pytest.raises(AnalysisError):
            session.execute("KILL QUERY 99999")
        killed_or_error = [
            r for r in server.obs.audit_log.entries()
            if r.status == "error" and "99999" in r.error]
        assert len(killed_or_error) == 1

    def test_sys_audit_log_queryable_by_tenant(self, service):
        service.register_tenant("bi", token="bi-token")
        service.register_tenant("etl", token="etl-token")
        admin = service.server.connect()
        admin.execute("CREATE TABLE t (a INT)")
        s1 = service.open_session(token="bi-token")
        s2 = service.open_session(token="etl-token")
        service.execute(s1.session_id, "SELECT COUNT(*) FROM t")
        service.execute(s2.session_id, "SELECT COUNT(*) FROM t")
        rows = admin.execute(
            "SELECT tenant, COUNT(*) FROM sys.audit_log "
            "WHERE operation = 'select' AND status = 'ok' "
            "GROUP BY tenant ORDER BY tenant").rows
        assert ("bi", 1) in rows and ("etl", 1) in rows

    def test_ring_overflow_spills_not_drops(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("SET hive.audit.capacity = 4")
        for i in range(10):
            session.execute(f"INSERT INTO t VALUES ({i})")
        log = server.obs.audit_log
        assert len(log) <= 4
        assert log.overflow.spilled > 0
        assert len(log.all_entries()) == log.recorded

    def test_explain_analyze_footer_matches_audit(self, server):
        """Satellite: the EXPLAIN ANALYZE inputs/outputs footer comes
        from the same hook-context resolution the audit log records."""
        session = server.connect()
        seed_tables(session)
        result = session.execute(f"EXPLAIN ANALYZE {JOIN_AGG}")
        text = "\n".join(row[0] for row in result.rows)
        assert ("-- inputs: default.item, default.store_sales"
                in text)
        record = server.obs.audit_log.entries()[-1]
        assert record.input_tables == ["default.item",
                                       "default.store_sales"]

    def test_trace_attrs_carry_fingerprint_and_tenant(self, server):
        """Satellite: spans join against sys.query_store and
        sys.audit_log via fingerprint/tenant attrs."""
        session = server.connect()
        session.tenant = "bi"
        session.execute("CREATE TABLE t (a INT)")
        result = session.execute("SELECT a FROM t")
        attrs = result.trace.root.attrs
        assert attrs["tenant"] == "bi"
        assert attrs["fingerprint"]
        record = [r for r in server.obs.audit_log.entries()
                  if r.query_id == result.query_id][0]
        assert record.fingerprint == attrs["fingerprint"]
        trace_doc = json.loads(server.obs.to_chrome_trace())
        joined = [e for e in trace_doc["traceEvents"]
                  if e.get("args", {}).get("fingerprint")
                  == record.fingerprint
                  and e["args"].get("tenant") == "bi"]
        assert joined, "no span joins audit row by fingerprint+tenant"


# --------------------------------------------------------------------------- #
class TestConcurrentAuditAndLineage:
    def test_exactly_one_audit_row_per_statement_64_threads(self):
        """ISSUE 10 acceptance: every statement through the 64-thread
        service test produces exactly one audit row, correctly
        attributed, none lost or duplicated."""
        conf = HiveConf.v3_profile()
        conf.faults_seed = 42
        conf.audit_capacity = 5000
        service = HiveService(conf=conf)
        try:
            admin = service.server.connect()
            admin.execute("CREATE TABLE t (a INT, b STRING)")
            admin.execute("INSERT INTO t VALUES " + ", ".join(
                f"({i}, 'v{i}')" for i in range(20)))
            for tenant in ("bi", "etl", "adhoc"):
                service.register_tenant(tenant)
            clients = [
                LoadClient(token=("bi", "etl", "adhoc")[i % 3],
                           statements=[
                               f"SELECT a FROM t WHERE a > {i % 5}",
                               "SELECT b, COUNT(*) FROM t GROUP BY b",
                           ])
                for i in range(64)
            ]
            report = run_load(service, clients, repeat=2,
                              timeout_s=240.0)
            assert report.lost == 0 and report.duplicates == 0
            assert report.errors == 0, report.error_messages[:3]
            audit = [r for r in
                     service.server.obs.audit_log.all_entries()
                     if r.operation == "selectstatement"
                     or r.operation == "select"]
            assert len(audit) == report.submitted
            ids = [r.query_id for r in audit]
            assert len(ids) == len(set(ids))    # no duplicates
            by_tenant = {}
            for r in audit:
                by_tenant[r.tenant] = by_tenant.get(r.tenant, 0) + 1
            # 64 clients round-robin 3 tenants: 22/21/21 x 2 stmts x 2
            assert set(by_tenant) == {"bi", "etl", "adhoc"}
            assert sum(by_tenant.values()) == report.submitted
        finally:
            service.shutdown()

    def test_lineage_deterministic_across_16_threads(self, service):
        """Satellite: lineage extraction is deterministic across the
        16-thread service harness — one fingerprint, one edge set."""
        admin = service.server.connect()
        admin.execute("CREATE TABLE t (a INT, b INT)")
        admin.execute("INSERT INTO t VALUES (1, 2), (3, 4)")
        sql = "SELECT a, SUM(b) AS sb FROM t GROUP BY a"
        baseline = service.server.connect()
        baseline.execute(sql)
        graph = service.server.obs.lineage_graph
        assert len(graph.records()) >= 1
        expected = {r.fingerprint: list(r.edges)
                    for r in graph.records()}
        errors = []

        def worker(index):
            try:
                session = service.open_session(token=f"u{index}")
                for _ in range(2):
                    service.execute(session.session_id, sql)
                service.close_session(session.session_id)
            except Exception as error:   # pragma: no cover - surfaced
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,),
                                    daemon=True) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        after = {r.fingerprint: list(r.edges)
                 for r in graph.records()}
        for fingerprint, edges in expected.items():
            assert after[fingerprint] == edges


# --------------------------------------------------------------------------- #
class TestRL013:
    def test_flags_stray_registration(self):
        findings = lint_source(
            "server.obs.hooks.register('mine', fn)\n",
            "repro/service/rogue.py")
        assert [f.rule for f in findings] == ["RL013"]

    def test_allows_hooks_module_builtins(self):
        findings = lint_source(
            "registry.register('lineage', fn, builtin=True)\n",
            "src/repro/obs/hooks.py")
        assert findings == []

    def test_allows_register_hook_wrapper(self):
        source = ("def register_hook(self, name, fn):\n"
                  "    return self.obs.hooks.register(name, fn)\n")
        findings = lint_source(source, "repro/server/driver.py")
        assert findings == []

    def test_ignores_unrelated_register_calls(self):
        findings = lint_source(
            "atexit.register(cleanup)\n"
            "registry.register_callback('x.y', fn, help='h')\n",
            "repro/service/foo.py")
        assert findings == []

    def test_suppression_comment_works(self):
        findings = lint_source(
            "hooks.register('x', fn)  # reprolint: disable=RL013\n",
            "repro/service/foo.py")
        assert findings == []
