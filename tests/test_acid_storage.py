"""ACID layout, snapshot readers, writers and compaction."""

import pytest

from repro.acid.compactor import (CompactionCleaner, CompactionInitiator,
                                  CompactionWorker)
from repro.acid.layout import parse_acid_dirs, select_acid_state
from repro.acid.reader import AcidReader, row_ids_from_batch
from repro.acid.writer import AcidWriter, RowId
from repro.common.rows import Column, Schema
from repro.common.types import INT, STRING
from repro.config import HiveConf
from repro.errors import HiveError
from repro.formats.orc import SargPredicate
from repro.fs import SimFileSystem
from repro.metastore.compaction import CompactionType, should_compact
from repro.metastore.hms import HiveMetastore
from repro.metastore.txn import ValidWriteIdList


@pytest.fixture
def schema():
    return Schema([Column("id", INT), Column("name", STRING)])


@pytest.fixture
def env(schema):
    fs = SimFileSystem()
    hms = HiveMetastore(fs)
    table = hms.create_table("default", "t", schema, is_acid=True)
    return fs, hms, table


def commit_insert(hms, writer, table, schema, rows):
    tm = hms.txn_manager
    txn = tm.open_transaction()
    wid = tm.allocate_write_id(txn, table.qualified_name)
    writer.write_insert_delta(table.location, wid, schema, rows)
    tm.commit(txn)
    return wid


def current_valid(hms, table):
    tm = hms.txn_manager
    return tm.valid_write_ids(tm.get_snapshot(), table.qualified_name)


class TestLayout:
    def test_parse_names(self):
        bases, deltas = parse_acid_dirs(
            ["base_100", "delta_101_105", "delete_delta_103_103",
             "delta_110_110", "tmp_junk"])
        assert [b.write_id for b in bases] == [100]
        assert [(d.min_write_id, d.max_write_id, d.is_delete)
                for d in deltas] == [(101, 105, False), (103, 103, True),
                                     (110, 110, False)]

    def test_malformed_range(self):
        with pytest.raises(HiveError):
            parse_acid_dirs(["delta_9_3"])

    def test_select_state_base_and_deltas(self):
        valid = ValidWriteIdList("t", 110, frozenset())
        state = select_acid_state(
            ["base_100", "delta_90_90", "delta_105_105",
             "delete_delta_108_108", "base_50"], valid)
        assert state.base.write_id == 100
        assert [d.name for d in state.insert_deltas] == ["delta_105_105"]
        assert [d.name for d in state.delete_deltas] == [
            "delete_delta_108_108"]
        assert set(state.obsolete) == {"base_50", "delta_90_90"}

    def test_open_txn_delta_skipped(self):
        valid = ValidWriteIdList("t", 110, frozenset({105}))
        state = select_acid_state(["delta_105_105", "delta_106_106"],
                                  valid)
        assert [d.name for d in state.insert_deltas] == ["delta_106_106"]

    def test_future_data_invisible_but_not_obsolete(self):
        valid = ValidWriteIdList("t", 100, frozenset())
        state = select_acid_state(["base_150", "delta_120_120"], valid)
        assert state.base is None
        assert state.insert_deltas == []
        assert state.obsolete == []


class TestReadWrite:
    def test_insert_visible_after_commit_only(self, env, schema):
        fs, hms, table = env
        writer, reader = AcidWriter(fs), AcidReader(fs)
        tm = hms.txn_manager
        txn = tm.open_transaction()
        wid = tm.allocate_write_id(txn, table.qualified_name)
        writer.write_insert_delta(table.location, wid, schema,
                                  [(1, "a"), (2, "b")])
        before, _ = reader.read(table.location,
                                current_valid(hms, table))
        assert before.num_rows == 0
        tm.commit(txn)
        after, _ = reader.read(table.location, current_valid(hms, table))
        assert sorted(after.to_rows()) == [(1, "a"), (2, "b")]

    def test_aborted_txn_rows_never_visible(self, env, schema):
        fs, hms, table = env
        writer, reader = AcidWriter(fs), AcidReader(fs)
        tm = hms.txn_manager
        txn = tm.open_transaction()
        wid = tm.allocate_write_id(txn, table.qualified_name)
        writer.write_insert_delta(table.location, wid, schema, [(9, "x")])
        tm.abort(txn)
        batch, _ = reader.read(table.location, current_valid(hms, table))
        assert batch.num_rows == 0

    def test_delete_by_row_id(self, env, schema):
        fs, hms, table = env
        writer, reader = AcidWriter(fs), AcidReader(fs)
        commit_insert(hms, writer, table, schema,
                      [(i, f"n{i}") for i in range(6)])
        batch, _ = reader.read(table.location, current_valid(hms, table),
                               include_row_ids=True)
        ids = row_ids_from_batch(batch)
        victims = [rid for rid, row in zip(ids, batch.to_rows())
                   if row[3] % 2 == 0]
        tm = hms.txn_manager
        txn = tm.open_transaction()
        wid = tm.allocate_write_id(txn, table.qualified_name)
        writer.write_delete_delta(table.location, wid, victims)
        tm.commit(txn)
        final, metrics = reader.read(table.location,
                                     current_valid(hms, table))
        assert sorted(r[0] for r in final.to_rows()) == [1, 3, 5]
        assert metrics.rows_deleted == 3

    def test_snapshot_isolation_reader_unaffected_by_later_commit(
            self, env, schema):
        fs, hms, table = env
        writer, reader = AcidWriter(fs), AcidReader(fs)
        commit_insert(hms, writer, table, schema, [(1, "a")])
        old_valid = current_valid(hms, table)     # snapshot taken now
        commit_insert(hms, writer, table, schema, [(2, "b")])
        batch, _ = reader.read(table.location, old_valid)
        assert batch.to_rows() == [(1, "a")]

    def test_sargs_prune_row_groups(self, env, schema):
        fs, hms, table = env
        writer = AcidWriter(fs, row_group_size=10)
        reader = AcidReader(fs)
        commit_insert(hms, writer, table, schema,
                      [(i, "x") for i in range(100)])
        batch, metrics = reader.read(
            table.location, current_valid(hms, table),
            sargs=[SargPredicate("id", "between", (20, 25))])
        assert metrics.row_groups_read < metrics.row_groups_total
        assert {r[0] for r in batch.to_rows()} >= set(range(20, 26))

    def test_row_ids_unique(self, env, schema):
        fs, hms, table = env
        writer, reader = AcidWriter(fs), AcidReader(fs)
        commit_insert(hms, writer, table, schema, [(1, "a"), (2, "b")])
        commit_insert(hms, writer, table, schema, [(3, "c")])
        batch, _ = reader.read(table.location, current_valid(hms, table),
                               include_row_ids=True)
        ids = [r.as_tuple() for r in row_ids_from_batch(batch)]
        assert len(set(ids)) == len(ids) == 3


class TestCompactionPolicy:
    def test_threshold_triggers_minor(self):
        assert should_compact(12, 0, 100, 10_000, 10, 0.5) \
            is CompactionType.MINOR

    def test_ratio_triggers_major(self):
        assert should_compact(2, 0, 600, 1000, 10, 0.5) \
            is CompactionType.MAJOR

    def test_no_base_many_deltas_major(self):
        assert should_compact(11, 0, 500, 0, 10, 0.1) \
            is CompactionType.MAJOR

    def test_quiet_table_none(self):
        assert should_compact(2, 1, 10, 10_000, 10, 0.5) is None


class TestCompactionExecution:
    def _fill(self, env, schema, batches=12, rows=5):
        fs, hms, table = env
        writer = AcidWriter(fs)
        for b in range(batches):
            commit_insert(hms, writer, table, schema,
                          [(b * rows + i, "v") for i in range(rows)])
        return writer

    def test_minor_merges_deltas(self, env, schema):
        fs, hms, table = env
        self._fill(env, schema)
        hms.compaction_queue.enqueue(table.qualified_name, None,
                                     CompactionType.MINOR)
        report = CompactionWorker(hms).run_one()
        assert report.merged_rows == 60
        assert "delta_1_12" in report.output_dir
        CompactionCleaner(hms).run()
        names = [d.rsplit("/", 1)[-1]
                 for d in fs.list_dirs(table.location)]
        assert names == ["delta_1_12"]
        batch, _ = AcidReader(fs).read(table.location,
                                       current_valid(hms, table))
        assert batch.num_rows == 60

    def test_major_folds_to_base_and_applies_deletes(self, env, schema):
        fs, hms, table = env
        writer = self._fill(env, schema)
        reader = AcidReader(fs)
        batch, _ = reader.read(table.location, current_valid(hms, table),
                               include_row_ids=True)
        tm = hms.txn_manager
        txn = tm.open_transaction()
        wid = tm.allocate_write_id(txn, table.qualified_name)
        writer.write_delete_delta(table.location, wid,
                                  row_ids_from_batch(batch)[:10])
        tm.commit(txn)
        hms.compaction_queue.enqueue(table.qualified_name, None,
                                     CompactionType.MAJOR)
        CompactionWorker(hms).run_one()
        CompactionCleaner(hms).run()
        names = [d.rsplit("/", 1)[-1]
                 for d in fs.list_dirs(table.location)]
        assert names == [f"base_{wid}"]
        final, metrics = reader.read(table.location,
                                     current_valid(hms, table))
        assert final.num_rows == 50
        assert metrics.delete_keys == 0   # history deleted

    def test_cleaner_waits_for_old_readers(self, env, schema):
        fs, hms, table = env
        self._fill(env, schema, batches=3)
        # a reader opened *before* compaction is still running
        old_reader_txn = hms.txn_manager.open_transaction()
        hms.compaction_queue.enqueue(table.qualified_name, None,
                                     CompactionType.MAJOR)
        CompactionWorker(hms).run_one()
        assert CompactionCleaner(hms).run() == 0     # barrier holds
        dirs = fs.list_dirs(table.location)
        assert len(dirs) == 4                        # 3 deltas + base
        hms.txn_manager.commit(old_reader_txn)
        assert CompactionCleaner(hms).run() == 3
        assert len(fs.list_dirs(table.location)) == 1

    def test_initiator_enqueues_on_threshold(self, env, schema):
        fs, hms, table = env
        self._fill(env, schema, batches=12)
        conf = HiveConf(compaction_delta_threshold=10)
        requests = CompactionInitiator(hms, conf).check_table(table)
        assert len(requests) == 1
        # coalescing: a second check does not enqueue a duplicate
        again = CompactionInitiator(hms, conf).check_table(table)
        assert again[0].request_id == requests[0].request_id

    def test_compaction_preserves_snapshot_reads(self, env, schema):
        """A snapshot taken before compaction reads the same rows after

        the worker ran (cleaning has not happened yet)."""
        fs, hms, table = env
        self._fill(env, schema, batches=4)
        reader = AcidReader(fs)
        valid = current_valid(hms, table)
        before, _ = reader.read(table.location, valid)
        hms.compaction_queue.enqueue(table.qualified_name, None,
                                     CompactionType.MAJOR)
        CompactionWorker(hms).run_one()
        after, _ = reader.read(table.location, valid)
        assert sorted(before.to_rows()) == sorted(after.to_rows())
