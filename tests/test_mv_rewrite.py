"""Materialized-view rewriting: full/partial containment, PK-joined

extra tables, freshness — exercised through the SQL driver so the whole
Section 4.4 path (registry → rewrite → execution) is covered.
"""

import pytest

import repro
from repro.config import HiveConf


@pytest.fixture
def session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    s = server.connect()
    s.execute("""CREATE TABLE store_sales (
        ss_sold_date_sk INT, ss_item_sk INT, ss_sales_price DOUBLE)""")
    s.execute("""CREATE TABLE date_dim (
        d_date_sk INT, d_year INT, d_moy INT, d_dom INT,
        PRIMARY KEY (d_date_sk) DISABLE NOVALIDATE)""")
    dates = ", ".join(f"({sk}, {2016 + sk // 12}, {sk % 12 + 1}, 1)"
                      for sk in range(36))
    s.execute(f"INSERT INTO date_dim VALUES {dates}")
    sales = ", ".join(f"({i % 36}, {i % 7}, {float(i % 50) + 0.5})"
                      for i in range(500))
    s.execute(f"INSERT INTO store_sales VALUES {sales}")
    s.conf.results_cache_enabled = False
    return s


MV = """CREATE MATERIALIZED VIEW mat_view AS
    SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) AS sum_sales
    FROM store_sales, date_dim
    WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
    GROUP BY d_year, d_moy, d_dom"""


def reference(session, sql):
    """Run with rewriting off to get the ground truth."""
    session.conf.mv_rewriting = False
    rows = session.execute(sql).rows
    session.conf.mv_rewriting = True
    return rows


class TestFullContainment:
    def test_figure4b_full_rewrite(self, session):
        session.execute(MV)
        sql = ("SELECT SUM(ss_sales_price) AS sum_sales "
               "FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018 "
               "AND d_moy IN (1, 2, 3)")
        expected = reference(session, sql)
        result = session.execute(sql)
        assert result.views_used == ["default.mat_view"]
        assert result.rows == expected
        # the rewritten plan no longer touches the fact table
        from repro.plan.relnodes import find_scans
        tables = {s.table_name for s in find_scans(result.optimized.root)}
        assert tables == {"default.mat_view"}

    def test_rollup_to_coarser_grouping(self, session):
        session.execute(MV)
        sql = ("SELECT d_year, SUM(ss_sales_price) s "
               "FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017 "
               "GROUP BY d_year ORDER BY d_year")
        expected = reference(session, sql)
        result = session.execute(sql)
        assert result.views_used
        assert result.rows == expected

    def test_same_grouping_no_reaggregation(self, session):
        session.execute(MV)
        sql = ("SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) s "
               "FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017 "
               "GROUP BY d_year, d_moy, d_dom ORDER BY 1, 2, 3")
        expected = reference(session, sql)
        result = session.execute(sql)
        assert result.views_used
        assert result.rows == expected

    def test_not_contained_query_untouched(self, session):
        session.execute(MV)
        # d_year > 2016 is wider than the view's d_year > 2017 on BOTH
        # sides and not aggregable -> partial rewrite handles it; but a
        # filter on a column missing from the view cannot be answered
        sql = ("SELECT SUM(ss_sales_price) FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_dom > 0 "
               "AND ss_item_sk = 3")
        result = session.execute(sql)
        assert result.views_used == []

    def test_disabled_rewrite_flag(self, session):
        session.execute("DROP TABLE IF EXISTS mat_view")
        session.execute(MV.replace(
            "mat_view AS", "mat_view DISABLE REWRITE AS"))
        sql = ("SELECT SUM(ss_sales_price) FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018")
        result = session.execute(sql)
        assert result.views_used == []


class TestPartialContainment:
    def test_figure4c_union_rewrite(self, session):
        session.execute(MV)
        sql = ("SELECT d_year, d_moy, SUM(ss_sales_price) AS sum_sales "
               "FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year > 2016 "
               "GROUP BY d_year, d_moy ORDER BY d_year, d_moy")
        expected = reference(session, sql)
        result = session.execute(sql)
        assert result.views_used == ["default.mat_view"]
        assert result.rows == expected
        # the plan unions the view with the uncovered source delta
        from repro.plan.relnodes import Union, find_scans, walk
        assert any(isinstance(n, Union)
                   for n in walk(result.optimized.root))
        tables = {s.table_name for s in find_scans(result.optimized.root)}
        assert "default.mat_view" in tables
        assert "default.store_sales" in tables


class TestFreshness:
    def test_stale_view_skipped_then_rebuilt(self, session):
        session.execute(MV)
        sql = ("SELECT SUM(ss_sales_price) FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018")
        assert session.execute(sql).views_used
        session.execute("INSERT INTO store_sales VALUES (20, 1, 5.0)")
        stale = session.execute(sql)
        assert stale.views_used == []
        session.execute("ALTER MATERIALIZED VIEW mat_view REBUILD")
        fresh = session.execute(sql)
        assert fresh.views_used
        assert fresh.rows == stale.rows

    def test_incremental_rebuild_used_for_inserts(self, session):
        session.execute(MV)
        session.execute("INSERT INTO store_sales VALUES (30, 2, 7.5)")
        result = session.execute("ALTER MATERIALIZED VIEW mat_view REBUILD")
        assert "incremental" in result.message

    def test_update_forces_full_rebuild(self, session):
        session.execute(MV)
        session.execute(
            "UPDATE store_sales SET ss_sales_price = 1.0 "
            "WHERE ss_item_sk = 0")
        result = session.execute("ALTER MATERIALIZED VIEW mat_view REBUILD")
        assert "full" in result.message

    def test_rebuild_noop_when_fresh(self, session):
        session.execute(MV)
        result = session.execute("ALTER MATERIALIZED VIEW mat_view REBUILD")
        assert "nothing to do" in result.message


class TestPkExtraTables:
    def test_query_on_subset_of_view_tables(self, session):
        """A denormalized view joining extra PK-bound dimensions still

        answers queries that touch only some tables (the SSB case)."""
        session.execute("""CREATE TABLE item (
            i_item_sk INT, i_cat STRING,
            PRIMARY KEY (i_item_sk) DISABLE NOVALIDATE)""")
        session.execute("INSERT INTO item VALUES (0,'a'),(1,'a'),(2,'b'),"
                        "(3,'b'),(4,'c'),(5,'c'),(6,'d')")
        session.execute("""CREATE MATERIALIZED VIEW flat AS
            SELECT d_year, d_moy, i_cat, ss_sales_price
            FROM store_sales, date_dim, item
            WHERE ss_sold_date_sk = d_date_sk
              AND ss_item_sk = i_item_sk""")
        sql = ("SELECT d_year, SUM(ss_sales_price) s "
               "FROM store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2017 "
               "GROUP BY d_year")
        expected = reference(session, sql)
        result = session.execute(sql)
        assert result.views_used == ["default.flat"]
        assert result.rows == expected

    def test_no_rewrite_without_pk(self, session):
        session.execute("CREATE TABLE nopk (n_item_sk INT, n_cat STRING)")
        session.execute("INSERT INTO nopk VALUES (0,'a'),(1,'b')")
        session.execute("""CREATE MATERIALIZED VIEW flat2 AS
            SELECT d_year, n_cat, ss_sales_price
            FROM store_sales, date_dim, nopk
            WHERE ss_sold_date_sk = d_date_sk
              AND ss_item_sk = n_item_sk""")
        sql = ("SELECT d_year, SUM(ss_sales_price) FROM "
               "store_sales, date_dim "
               "WHERE ss_sold_date_sk = d_date_sk GROUP BY d_year")
        result = session.execute(sql)
        assert result.views_used == []
