"""repro.service: the concurrent serving layer (ISSUE 6 tentpole).

Covers the HS2-style facade end to end: session pooling (auth, quotas,
TTL reaping, conf-snapshot semantics), async operation handles with
paged fetch, admission control (FIFO slots, queue timeout,
kill-while-queued, deterministic virtual waits, p99 timeseries), the
compiled plan cache (hits, DDL/stats invalidation, per-session conf
digests), and the acceptance bar: 64 threads x 1000+ statements x 3
tenants with zero lost and zero duplicated results.
"""

import threading
import time

import pytest

import repro
from repro.config import HiveConf
from repro.errors import ServiceError
from repro.service import HiveService, LoadClient, run_load
from repro.service.plan_cache import plan_conf_digest


@pytest.fixture
def service():
    svc = HiveService(conf=HiveConf.v3_profile())
    yield svc
    svc.shutdown()


def wait_until(predicate, timeout_s=10.0, interval_s=0.002):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def make_table(service, rows=20):
    admin = service.server.connect()
    admin.execute("CREATE TABLE t (a INT, b STRING)")
    values = ", ".join(f"({i}, 'v{i}')" for i in range(rows))
    admin.execute(f"INSERT INTO t VALUES {values}")
    return admin


# --------------------------------------------------------------------------- #
class TestSessions:
    def test_open_execute_close(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        op = service.execute(session.session_id, "SELECT COUNT(*) FROM t")
        assert op.state == "finished"
        assert op.rows == [(20,)]
        service.close_session(session.session_id)
        with pytest.raises(ServiceError) as err:
            service.submit(session.session_id, "SELECT 1")
        assert err.value.code == "not_found"

    def test_auth_rejects_unknown_token(self, service):
        service.register_tenant("bi", token="secret-bi")
        session = service.open_session(token="secret-bi")
        assert session.tenant == "bi"
        with pytest.raises(ServiceError) as err:
            service.open_session(token="wrong")
        assert err.value.code == "auth"

    def test_per_tenant_session_quota(self, service):
        service.server.conf.server2_max_sessions_per_tenant = 3
        held = [service.open_session(token="alice") for _ in range(3)]
        with pytest.raises(ServiceError) as err:
            service.open_session(token="alice")
        assert err.value.code == "quota"
        # another tenant is unaffected; closing frees the quota
        service.open_session(token="bob")
        service.close_session(held[0].session_id)
        service.open_session(token="alice")

    def test_sys_sessions_rows(self, service):
        make_table(service)
        session = service.open_session(token="alice", application="dash")
        service.execute(session.session_id, "SELECT a FROM t")
        reader = service.server.connect()
        result = reader.execute("SELECT * FROM sys.sessions")
        rows = [dict(zip(result.column_names, row))
                for row in result.rows]
        mine = [r for r in rows
                if r["session_id"] == session.session_id]
        assert mine and mine[0]["tenant"] == "alice"
        assert mine[0]["application"] == "dash"
        assert mine[0]["state"] == "open"
        assert mine[0]["statements"] == 1

    def test_ttl_reaps_idle_sessions(self, service):
        service.server.conf.server2_session_ttl_s = 5.0
        session = service.open_session(token="alice")
        idle_at = session.last_used_s
        assert service.sessions.reap_expired(idle_at + 4.0) == []
        assert service.sessions.reap_expired(idle_at + 6.0) == \
            [session.session_id]
        assert session.state == "expired"
        with pytest.raises(ServiceError):
            service.submit(session.session_id, "SELECT 1")

    def test_ttl_never_reaps_mid_statement_session(self, service):
        service.server.conf.server2_session_ttl_s = 0.001
        session = service.open_session(token="alice")
        with session.lock:   # simulates a statement in flight
            assert service.sessions.reap_expired(1e9) == []
        assert session.state == "open"

    def test_housekeeper_tick_expires_sessions(self, service):
        """TTL reaping rides the driver's per-statement housekeeper."""
        make_table(service)
        service.server.conf.server2_session_ttl_s = 0.5
        idle = service.open_session(token="alice")
        # a *different* session keeps executing, advancing the global
        # clock past the idle session's TTL; its ticks run the reaper
        busy = service.server.connect()
        busy.conf.results_cache_enabled = False
        for _ in range(30):
            busy.execute("SELECT COUNT(*) FROM t WHERE a < 5")
            if idle.state != "open":
                break
            busy.now_s += 0.2
        assert idle.state == "expired"


class TestConfSnapshot:
    def test_server_set_does_not_retro_apply(self, service):
        """Satellite 1: conf is copied at open; later server-wide
        changes only affect sessions opened afterwards."""
        before = service.open_session(token="alice")
        service.server.conf.cbo_enabled = False
        after = service.open_session(token="alice")
        assert before.driver.conf.cbo_enabled is True
        assert after.driver.conf.cbo_enabled is False

    def test_session_set_is_private(self, service):
        make_table(service)
        one = service.open_session(token="alice")
        two = service.open_session(token="bob")
        service.execute(one.session_id, "SET hive.cbo.enable=false")
        assert one.driver.conf.cbo_enabled is False
        assert two.driver.conf.cbo_enabled is True
        assert service.server.conf.cbo_enabled is True

    def test_plan_cache_digest_uses_session_conf(self, service):
        """Sessions whose plan-relevant conf differs must not share
        cached plans: their digests (the cache key) differ."""
        one = service.open_session(token="alice")
        two = service.open_session(token="bob")
        service.execute(one.session_id, "SET hive.cbo.enable=false")
        three = service.open_session(token="carol")
        assert one.driver._plan_conf_digest() != \
            two.driver._plan_conf_digest()
        assert two.driver._plan_conf_digest() == \
            three.driver._plan_conf_digest()
        # the digest is a pure function of the plan-relevant conf
        assert plan_conf_digest(one.driver.conf) != \
            plan_conf_digest(two.driver.conf)


# --------------------------------------------------------------------------- #
class TestOperations:
    def test_submit_returns_handle_immediately(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        op = service.submit(session.session_id, "SELECT a FROM t")
        assert op.op_id == f"{op.query_id:x}"
        assert wait_until(lambda: op.finished)
        payload = service.poll(op.op_id)
        assert payload["state"] == "finished"
        assert payload["row_count"] == 20

    def test_fetch_pages_all_rows(self, service):
        make_table(service, rows=25)
        session = service.open_session(token="alice")
        op = service.execute(session.session_id,
                             "SELECT a FROM t ORDER BY a")
        rows, offset = [], 0
        while True:
            page = service.fetch(op.op_id, offset=offset, limit=7)
            rows.extend(page["rows"])
            offset += page["returned"]
            if not page["has_more"]:
                break
        assert rows == [(i,) for i in range(25)]
        assert page["total"] == 25

    def test_fetch_before_finish_is_not_ready(self, service):
        op = service.operations.create("s0", "alice", "SELECT 1", 99,
                                       submitted_s=0.0)
        with pytest.raises(ServiceError) as err:
            service.operations.fetch(op.op_id)
        assert err.value.code == "not_ready"

    def test_failed_statement_surfaces_error(self, service):
        session = service.open_session(token="alice")
        op = service.execute(session.session_id,
                             "SELECT a FROM missing_table")
        assert op.state == "error"
        assert "missing_table" in op.error
        with pytest.raises(ServiceError):
            service.fetch(op.op_id)

    def test_unknown_operation(self, service):
        with pytest.raises(ServiceError) as err:
            service.poll("deadbeef")
        assert err.value.code == "not_found"


# --------------------------------------------------------------------------- #
class TestAdmission:
    def _occupy_default_pool(self, service):
        service.server.conf.server2_default_parallelism = 1
        service.admission.acquire("default", query_id=10**9,
                                  arrival_s=0.0)

    def test_queue_timeout_rejects(self, service):
        make_table(service)
        self._occupy_default_pool(service)
        service.server.conf.server2_queue_timeout_s = 0.1
        session = service.open_session(token="alice")
        op = service.submit(session.session_id, "SELECT a FROM t")
        assert wait_until(lambda: op.finished)
        assert op.state == "error"
        assert op.error_code == "queue_timeout"
        registry = service.server.obs.registry
        assert registry.value("service.admission.timeouts",
                              pool="default") >= 1
        service.admission.release("default", 0.0)

    def test_cancel_while_queued(self, service):
        """Satellite 2: KILL removes a queued operation immediately,
        marks it killed, and leaves a wm_events audit row."""
        make_table(service)
        self._occupy_default_pool(service)
        session = service.open_session(token="alice")
        op = service.submit(session.session_id, "SELECT a FROM t")
        assert wait_until(
            lambda: service.admission.queue_depth("default") == 1)
        assert service.cancel(op.op_id, reason="operator kill") is True
        assert wait_until(lambda: op.finished)
        assert op.state == "killed"
        assert "killed while queued" in op.error
        service.admission.release("default", 0.0)
        reader = service.server.connect()
        audits = reader.execute(
            "SELECT query_id, trigger_name FROM sys.wm_events").rows
        assert (op.query_id, "kill_query") in audits
        # cancelling a terminal operation is a no-op
        assert service.cancel(op.op_id) is False

    def test_kill_query_statement_reaches_queued_ops(self, service):
        """The SQL surface (KILL QUERY n) drives the same listener."""
        make_table(service)
        self._occupy_default_pool(service)
        session = service.open_session(token="alice")
        op = service.submit(session.session_id, "SELECT a FROM t")
        assert wait_until(
            lambda: service.admission.queue_depth("default") == 1)
        admin = service.server.connect()
        admin.execute(f"KILL QUERY {op.query_id}")
        assert wait_until(lambda: op.finished)
        assert op.state == "killed"
        service.admission.release("default", 0.0)

    def test_tenant_pool_mapping_overrides_plan(self, service):
        admin = service.server.connect()
        for sql in [
            "CREATE RESOURCE PLAN prod",
            "CREATE POOL prod.bi WITH alloc_fraction=0.7, "
            "query_parallelism=2",
            "CREATE POOL prod.etl WITH alloc_fraction=0.3, "
            "query_parallelism=4",
            "ALTER PLAN prod SET DEFAULT POOL = etl",
            "ALTER RESOURCE PLAN prod ENABLE ACTIVATE",
        ]:
            admin.execute(sql)
        service.register_tenant("dash", pool="bi")
        assert service.admission.route("dash") == "bi"
        assert service.admission.route("other") == "etl"
        assert service.admission._limit("bi") == 2
        assert service.admission._limit("etl") == 4

    def test_virtual_wait_model_charges_queue_delay(self, service):
        """The WM-style heap model: with the pool virtually full, an
        arrival waits for the earliest modeled finisher."""
        service.server.conf.server2_default_parallelism = 2
        adm = service.admission
        assert adm.acquire("default", 1, arrival_s=0.0) == 0.0
        assert adm.acquire("default", 2, arrival_s=0.0) == 0.0
        adm.release("default", finish_s=10.0)
        adm.release("default", finish_s=12.0)
        # arrival at t=1 with finishers at 10 and 12 -> waits 9 virtual
        # seconds, however fast the wall clock admitted it
        assert adm.acquire("default", 3, arrival_s=1.0) == \
            pytest.approx(9.0)
        adm.release("default", finish_s=15.0)
        # a late arrival (past every modeled finish) waits nothing
        assert adm.acquire("default", 4, arrival_s=20.0) == 0.0
        adm.release("default", finish_s=21.0)

    def test_virtual_wait_is_deterministic(self):
        """The wait charged to the session clock depends only on the
        arrival schedule and pool limit — two fresh services replaying
        the same sequence agree exactly (seeded runs reproduce)."""
        def replay():
            conf = HiveConf.v3_profile()
            conf.faults_seed = 42
            conf.server2_default_parallelism = 2
            svc = HiveService(conf=conf)
            try:
                make_table(svc)
                session = svc.open_session(token="alice")
                waits, clocks = [], []
                for i in range(8):
                    op = svc.execute(session.session_id,
                                     f"SELECT a FROM t WHERE a > {i}")
                    waits.append(op.admission_wait_s)
                    clocks.append(round(session.driver.now_s, 9))
                return waits, clocks
            finally:
                svc.shutdown()

        assert replay() == replay()

    def test_admission_wait_p99_in_timeseries(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        for i in range(3):
            service.execute(session.session_id,
                            f"SELECT a FROM t WHERE a > {i}")
        reader = service.server.connect()
        rows = reader.execute(
            "SELECT name, labels, value FROM sys.timeseries "
            "WHERE name = 'service.admission.wait_s.p99'").rows
        assert rows, "p99 admission wait must be published per admission"
        assert all("pool=default" in labels for _, labels, _ in rows)
        assert reader.execute(
            "SELECT COUNT(*) FROM sys.timeseries "
            "WHERE name = 'service.admission.wait_s.p95'").rows[0][0] > 0


# --------------------------------------------------------------------------- #
class TestPlanCache:
    def test_repeat_statement_hits(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        sql = "SELECT a, b FROM t WHERE a > 3"
        first = service.execute(session.session_id, sql)
        second = service.execute(session.session_id, sql)
        assert first.plan_cached is False
        assert second.plan_cached is True
        stats = service.server.plan_cache.stats
        assert stats.hits >= 1 and stats.stores >= 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_hit_skips_compile_cost(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        session.driver.conf.results_cache_enabled = False
        sql = "SELECT COUNT(*) FROM t"
        conf = service.server.conf
        cold = service.execute(session.session_id, sql)
        warm = service.execute(session.session_id, sql)
        assert cold.total_s > warm.total_s
        assert warm.total_s < cold.total_s - (
            conf.cost.compile_overhead_s
            - conf.cost.plan_cache_hit_compile_s) + 1e-9

    def test_ddl_invalidates(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        sql = "SELECT a FROM t WHERE a > 1"
        service.execute(session.session_id, sql)
        admin = service.server.connect()
        # a DDL on an *unrelated* table leaves the entry valid
        admin.execute("CREATE TABLE scratch (x INT)")
        hit = service.execute(session.session_id, sql)
        assert hit.plan_cached is True
        stats = service.server.plan_cache.stats
        before = stats.invalidations
        admin.execute("INSERT INTO t VALUES (100, 'x')")
        recompiled = service.execute(session.session_id, sql)
        assert recompiled.plan_cached is False
        assert stats.invalidations == before + 1
        rehit = service.execute(session.session_id, sql)
        assert rehit.plan_cached is True

    def test_stats_change_invalidates(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        sql = "SELECT b FROM t WHERE a > 2"
        service.execute(session.session_id, sql)
        stats = service.server.plan_cache.stats
        before = stats.invalidations
        admin = service.server.connect()
        admin.execute("ANALYZE TABLE t COMPUTE STATISTICS FOR COLUMNS")
        recompiled = service.execute(session.session_id, sql)
        assert recompiled.plan_cached is False
        assert stats.invalidations == before + 1

    def test_sys_plan_cache_rows(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        sql = "SELECT a FROM t WHERE a > 7"
        service.execute(session.session_id, sql)
        service.execute(session.session_id, sql)
        reader = service.server.connect()
        result = reader.execute("SELECT * FROM sys.plan_cache")
        rows = [dict(zip(result.column_names, row))
                for row in result.rows]
        mine = [r for r in rows
                if r["statement"] == "SELECT a FROM t WHERE (a > 7)"]
        assert mine and mine[0]["db"] == "default"
        assert mine[0]["tables"] == "default.t"
        assert mine[0]["hits"] == 1

    def test_conf_change_misses(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        sql = "SELECT a FROM t WHERE a > 5"
        service.execute(session.session_id, sql)
        service.execute(session.session_id,
                        "SET hive.cbo.enable=false")
        other_conf = service.execute(session.session_id, sql)
        assert other_conf.plan_cached is False

    def test_disabled_by_conf(self, service):
        make_table(service)
        session = service.open_session(token="alice")
        service.execute(session.session_id,
                        "SET hive.server2.plan.cache.enabled=false")
        sql = "SELECT a FROM t"
        service.execute(session.session_id, sql)
        repeat = service.execute(session.session_id, sql)
        assert repeat.plan_cached is False
        assert len(service.server.plan_cache) == 0


# --------------------------------------------------------------------------- #
class TestConcurrentServing:
    def test_32_threads_no_lost_or_duplicated(self, service):
        make_table(service, rows=30)
        clients = [
            LoadClient(token=f"tenant-{i % 4}",
                       statements=[
                           f"SELECT a FROM t WHERE a > {i % 7}",
                           "SELECT COUNT(*) FROM t",
                       ])
            for i in range(32)
        ]
        report = run_load(service, clients, repeat=2)
        assert report.submitted == 32 * 2 * 2
        assert report.errors == 0, report.error_messages[:3]
        assert report.lost == 0
        assert report.duplicates == 0
        assert report.finished == report.submitted
        assert report.plan_cache_hits > 0

    def test_concurrent_sessions_share_one_timeline(self, service):
        make_table(service)
        errors = []

        def worker(index):
            try:
                session = service.open_session(token=f"u{index}")
                for _ in range(3):
                    op = service.execute(session.session_id,
                                         "SELECT COUNT(*) FROM t")
                    assert op.state == "finished"
                service.close_session(session.session_id)
            except Exception as error:   # pragma: no cover - surfaced
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert service.operations.live_count() == 0

    def test_acceptance_64_threads_1000_statements_3_tenants(self):
        """ISSUE 6 acceptance: 64 client threads, 3 tenants, 1000+
        statements, zero lost and zero duplicated results."""
        conf = HiveConf.v3_profile()
        conf.faults_seed = 42
        service = HiveService(conf=conf)
        try:
            make_table(service, rows=40)
            for tenant in ("bi", "etl", "adhoc"):
                service.register_tenant(tenant)
            statements = [
                "SELECT COUNT(*) FROM t",
                "SELECT a FROM t WHERE a > 10",
                "SELECT b, COUNT(*) FROM t GROUP BY b",
                "SELECT a FROM t ORDER BY a",
            ]
            clients = [
                LoadClient(token=("bi", "etl", "adhoc")[i % 3],
                           statements=[statements[i % 4],
                                       statements[(i + 1) % 4]])
                for i in range(64)
            ]
            report = run_load(service, clients, repeat=4,
                              timeout_s=240.0)
            assert report.submitted == 64 * 2 * 4   # 1024 statements
            assert report.lost == 0
            assert report.duplicates == 0
            assert report.errors == 0, report.error_messages[:3]
            assert report.killed == 0
            assert report.finished == report.submitted
            # the dashboard workload must benefit from the plan cache
            assert report.plan_cache_hits + report.results_cache_hits \
                > report.submitted // 2
            assert service.sessions.open_count() == 0
        finally:
            service.shutdown()
