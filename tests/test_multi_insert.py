"""Hive multi-insert: FROM src INSERT INTO t1 ... INSERT INTO t2 ...

(§3.2: "it is possible to write to multiple tables within a single
transaction using Hive multi-insert statements").
"""

import pytest

import repro
from repro.errors import AnalysisError, TransactionError


@pytest.fixture
def session():
    s = repro.connect()
    s.conf.results_cache_enabled = False
    s.execute("CREATE TABLE src (a INT, b STRING)")
    s.execute("INSERT INTO src VALUES (1,'x'), (2,'y'), (3,'z')")
    s.execute("CREATE TABLE t1 (a INT, b STRING)")
    s.execute("CREATE TABLE t2 (b STRING)")
    return s


def test_branches_with_filters_and_expressions(session):
    result = session.execute(
        "FROM src INSERT INTO t1 SELECT a, b WHERE a > 1 "
        "INSERT INTO t2 SELECT upper(b)")
    assert result.rows_affected == 5
    assert sorted(session.execute("SELECT * FROM t1").rows) == [
        (2, "y"), (3, "z")]
    assert sorted(session.execute("SELECT * FROM t2").rows) == [
        ("X",), ("Y",), ("Z",)]


def test_single_transaction_spans_targets(session):
    session.execute("FROM src INSERT INTO t1 SELECT a, b "
                    "INSERT INTO t2 SELECT b")
    tm = session.server.hms.txn_manager
    # one transaction allocated one WriteId per table — and both landed
    assert tm.current_write_id("default.t1") == 1
    assert tm.current_write_id("default.t2") == 1


def test_atomicity_on_failure(session):
    # second branch targets a missing table: nothing commits anywhere
    with pytest.raises(Exception):
        session.execute("FROM src INSERT INTO t1 SELECT a, b "
                        "INSERT INTO missing SELECT b")
    assert session.execute("SELECT COUNT(*) FROM t1").rows == [(0,)]


def test_partitioned_target(session):
    session.execute("CREATE TABLE p (v STRING) PARTITIONED BY (ds INT)")
    session.execute("FROM src INSERT INTO p PARTITION (ds=7) SELECT b")
    assert session.execute(
        "SELECT COUNT(*) FROM p WHERE ds = 7").rows == [(3,)]


def test_subquery_source(session):
    result = session.execute(
        "FROM (SELECT a * 10 big, b FROM src) s "
        "INSERT INTO t1 SELECT big, b WHERE big >= 20")
    assert result.rows_affected == 2
    assert sorted(session.execute("SELECT a FROM t1").rows) == [
        (20,), (30,)]


def test_star_branch(session):
    session.execute("FROM src INSERT INTO t1 SELECT *")
    assert session.execute("SELECT COUNT(*) FROM t1").rows == [(3,)]


def test_inside_multi_statement_transaction(session):
    session.execute("BEGIN")
    session.execute("FROM src INSERT INTO t1 SELECT a, b "
                    "INSERT INTO t2 SELECT b")
    # own writes visible, others isolated until COMMIT
    assert session.execute("SELECT COUNT(*) FROM t1").rows == [(3,)]
    other = session.server.connect()
    other.conf.results_cache_enabled = False
    assert other.execute("SELECT COUNT(*) FROM t1").rows == [(0,)]
    session.execute("COMMIT")
    assert other.execute("SELECT COUNT(*) FROM t2").rows == [(3,)]


def test_overwrite_rejected(session):
    with pytest.raises(TransactionError):
        session.execute("FROM src INSERT OVERWRITE TABLE t1 SELECT a, b")
