"""Concurrency analysis: static lock-order pass + runtime sanitizer.

The seeded fixtures — a deliberate ABBA deadlock, an unguarded read of
a write-guarded attribute, and a clean module — must be caught (or
passed) by *both* layers: ``repro.lint.concurrency`` from the AST, and
``repro.lint.sanitizer`` from real interleavings.  The merge gates:
``tools/concheck`` exits 0 on ``src/`` and its JSON report is
byte-identical across runs.
"""

import json
import os
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.common import sync
from repro.lint.concurrency import (RULES, analyze_paths,
                                    analyze_source)
from repro.lint.concurrency import main as concheck_main
from repro.lint.sanitizer import (WAIT_ALLOWED_HOLDING, LockSanitizer,
                                  current, install_instance,
                                  install_sanitizer,
                                  uninstall_sanitizer)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def analyze(code, path="x.py", rules=None):
    return analyze_source(textwrap.dedent(code), path, rules)


def rule_ids(report):
    return [f.rule for f in report.findings]


# --------------------------------------------------------------------------- #
# the seeded fixtures

ABBA_FIXTURE = """
    import threading

    class Ledger:
        def __init__(self):
            self._lock = threading.Lock()
            self.journal = None

        def post(self):
            with self._lock:
                self.journal.append_entry()

        def balance(self):
            with self._lock:
                return 0


    class Journal:
        def __init__(self):
            self._lock = threading.Lock()
            self.ledger = None

        def append_entry(self):
            with self._lock:
                pass

        def replay(self):
            with self._lock:
                self.ledger.balance()
    """

UNGUARDED_READ_FIXTURE = """
    import threading

    class Meter:
        def __init__(self):
            self._lock = threading.Lock()
            self._total = 0

        def add(self, n):
            with self._lock:
                self._total += n

        def snapshot(self):
            return self._total
    """

CLEAN_FIXTURE = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def put(self, item):
            with self._lock:
                self._items.append(item)

        def drain(self):
            with self._lock:
                out = list(self._items)
                self._items.clear()
                return out
    """


# --------------------------------------------------------------------------- #
# static pass

class TestStaticAnalysis:
    def test_abba_fixture_reports_cycle(self):
        report = analyze(ABBA_FIXTURE, "abba.py")
        assert "CC001" in rule_ids(report)
        (finding,) = [f for f in report.findings if f.rule == "CC001"]
        assert "Ledger._lock" in finding.message
        assert "Journal._lock" in finding.message

    def test_abba_edges_in_both_directions(self):
        report = analyze(ABBA_FIXTURE, "abba.py")
        pairs = report.edge_pairs()
        assert ("Ledger._lock", "Journal._lock") in pairs
        assert ("Journal._lock", "Ledger._lock") in pairs

    def test_unguarded_read_fixture_reports_cc002(self):
        report = analyze(UNGUARDED_READ_FIXTURE, "meter.py")
        assert rule_ids(report) == ["CC002"]
        (finding,) = report.findings
        assert "_total" in finding.message
        assert "snapshot" in finding.message

    def test_clean_fixture_passes(self):
        report = analyze(CLEAN_FIXTURE, "box.py")
        assert report.findings == []

    def test_self_deadlock_via_call_chain(self):
        report = analyze("""
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.helper()

                def helper(self):
                    with self._lock:
                        pass
        """)
        assert "CC003" in rule_ids(report)

    def test_rlock_self_nesting_is_not_cc003(self):
        # SimFileSystem.create() nests mkdirs() under an RLock by
        # design — re-entrancy is the point of the RLock kind
        report = analyze("""
            import threading

            class FS:
                def __init__(self):
                    self._lock = threading.RLock()

                def create(self):
                    with self._lock:
                        self.mkdirs()

                def mkdirs(self):
                    with self._lock:
                        pass
        """)
        assert "CC003" not in rule_ids(report)

    def test_effectively_locked_helper_not_flagged(self):
        # a private helper whose every call site holds the lock reads
        # guarded state legally ("caller holds self._lock" convention)
        report = analyze("""
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._slots = {}

                def grab(self):
                    with self._lock:
                        return self._pick()

                def put_back(self, s):
                    with self._lock:
                        self._slots[s] = True
                        self._pick()

                def _pick(self):
                    return next(iter(self._slots), None)
        """)
        assert report.findings == []

    def test_sync_seam_factories_declare_locks(self):
        report = analyze("""
            from repro.common import sync

            class S:
                def __init__(self):
                    self._lock = sync.new_lock("S._lock")
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    return self._n
        """)
        assert rule_ids(report) == ["CC002"]

    def test_line_suppression(self):
        code = UNGUARDED_READ_FIXTURE.replace(
            "return self._total",
            "return self._total  # concheck: disable=CC002")
        assert analyze(code).findings == []

    def test_file_suppression(self):
        code = ("# concheck: disable-file=CC002\n"
                + textwrap.dedent(UNGUARDED_READ_FIXTURE))
        assert analyze_source(code, "meter.py").findings == []

    def test_rules_filter(self):
        report = analyze(UNGUARDED_READ_FIXTURE, rules=["CC001"])
        assert report.findings == []

    def test_rule_catalog_shape(self):
        assert set(RULES) == {"CC001", "CC002", "CC003"}


class TestConcheckCli:
    def test_src_is_clean(self, capsys):
        assert concheck_main([SRC_REPRO]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_nonzero_exit_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent(UNGUARDED_READ_FIXTURE))
        assert concheck_main([str(bad)]) == 1
        assert "CC002" in capsys.readouterr().out

    def test_json_report_deterministic(self, tmp_path):
        # byte-identical across two separate processes: no
        # timestamps, no hash-order leakage, stable sort keys
        cmd = [sys.executable, os.path.join(REPO_ROOT, "tools",
                                            "concheck"),
               "--format", "json", SRC_REPRO]
        first = subprocess.run(cmd, capture_output=True, text=True,
                               check=True, cwd=REPO_ROOT)
        second = subprocess.run(cmd, capture_output=True, text=True,
                                check=True, cwd=REPO_ROOT)
        assert first.stdout == second.stdout
        payload = json.loads(first.stdout)
        assert payload["tool"] == "concheck"
        assert payload["total"] == 0
        assert payload["lock_order_edges"]

    def test_graph_flag_prints_edges(self, tmp_path, capsys):
        mod = tmp_path / "two.py"
        mod.write_text(textwrap.dedent("""
            import threading

            class A:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.b = None

                def go(self):
                    with self._lock:
                        self.b.poke()

            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass
        """))
        concheck_main([str(mod), "--graph"])
        out = capsys.readouterr().out
        assert "A._lock -> B._lock" in out


# --------------------------------------------------------------------------- #
# runtime sanitizer

@pytest.fixture
def sanitizer():
    # save/restore: under CI's HIVE_SANITIZE=1 run an env-installed
    # sanitizer is already active and must keep observing afterwards
    previous = current()
    uninstall_sanitizer()
    san = install_sanitizer(longhold_s=5.0)
    yield san
    uninstall_sanitizer()
    if previous is not None:
        install_instance(previous)


class TestSanitizerRuntime:
    def test_abba_inversion_detected(self, sanitizer):
        """The ABBA fixture, executed: thread one takes ledger->journal,
        thread two journal->ledger.  Sequential threads (no real
        deadlock) — the order graph still crosses."""
        ledger = sync.new_lock("Ledger._lock")
        journal = sync.new_lock("Journal._lock")

        def post():          # ledger -> journal
            with ledger:
                with journal:
                    pass

        def replay():        # journal -> ledger  (the inversion)
            with journal:
                with ledger:
                    pass

        t1 = threading.Thread(target=post, daemon=True)
        t1.start(); t1.join()
        t2 = threading.Thread(target=replay, daemon=True)
        t2.start(); t2.join()

        findings = sanitizer.findings("order")
        assert len(findings) == 1
        assert set(findings[0].locks) == {"Ledger._lock",
                                          "Journal._lock"}

    def test_same_order_twice_is_clean(self, sanitizer):
        a = sync.new_lock("A._lock")
        b = sync.new_lock("B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitizer.findings() == []
        assert ("A._lock", "B._lock") in sanitizer.edges()

    def test_inversion_against_static_graph(self, sanitizer):
        # the other order never executes in this run; the static
        # analysis proved it exists in the source
        sanitizer.merge_static_edges([("Hms._lock", "Txn._lock")])
        txn = sync.new_lock("Txn._lock")
        hms = sync.new_lock("Hms._lock")
        with txn:
            with hms:
                pass
        findings = sanitizer.findings("order")
        assert len(findings) == 1
        assert "static graph" in findings[0].detail

    def test_per_instance_locks_aggregate_by_site(self, sanitizer):
        # two gate instances share the "_Gate.cond" site: an order
        # observed on one instance applies to all of them
        gate1 = sync.new_lock("_Gate.cond")
        gate2 = sync.new_lock("_Gate.cond")
        reg = sync.new_lock("LiveQueryRegistry._lock")
        with gate1:
            with reg:
                pass
        with reg:
            with gate2:
                pass
        assert len(sanitizer.findings("order")) == 1

    def test_wait_while_holding_foreign_lock_flagged(self, sanitizer):
        other = sync.new_lock("TransactionManager._lock")
        cond = sync.new_condition("LockManager._cond")

        def waiter():
            with other:
                with cond:
                    cond.wait(timeout=0.01)

        t = threading.Thread(target=waiter, daemon=True)
        t.start(); t.join()
        findings = sanitizer.findings("blocking")
        assert len(findings) == 1
        assert "TransactionManager._lock" in findings[0].locks

    def test_wait_holding_session_lock_allowlisted(self, sanitizer):
        assert "ServiceSession.lock" in WAIT_ALLOWED_HOLDING
        session = sync.new_lock("ServiceSession.lock")
        cond = sync.new_condition("LockManager._cond")
        with session:
            with cond:
                cond.wait(timeout=0.01)
        assert sanitizer.findings("blocking") == []

    def test_condition_wait_notify_roundtrip(self, sanitizer):
        # the instrumented Condition must still *work*: full release
        # on wait, reacquire on wake, no spurious findings
        cond = sync.new_condition("LockManager._cond")
        ready = []

        def producer():
            with cond:
                ready.append(1)
                cond.notify_all()

        t = threading.Thread(target=producer, daemon=True)
        with cond:
            t.start()
            assert cond.wait_for(lambda: ready, timeout=5.0)
        t.join()
        assert sanitizer.findings() == []

    def test_longhold_detected(self):
        previous = current()
        uninstall_sanitizer()
        san = install_sanitizer(longhold_s=0.001)
        try:
            lock = sync.new_lock("SlowPath._lock")
            with lock:
                time.sleep(0.01)
            findings = san.findings("longhold")
            assert len(findings) == 1
            assert findings[0].locks == ("SlowPath._lock",)
        finally:
            uninstall_sanitizer()
            if previous is not None:
                install_instance(previous)

    def test_rlock_reentrancy_one_acquisition(self, sanitizer):
        rlock = sync.new_rlock("SimFileSystem._lock")
        with rlock:
            with rlock:        # create() nests mkdirs()
                pass
        (stats,) = sanitizer.site_rows()
        assert stats.acquisitions == 1
        assert sanitizer.findings() == []

    def test_contention_counted(self, sanitizer):
        lock = sync.new_lock("Busy._lock")
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert entered.wait(timeout=5.0)
        waiter = threading.Thread(target=lambda: lock.acquire()
                                  or lock.release(), daemon=True)
        waiter.start()
        time.sleep(0.02)       # let the waiter block on the held lock
        release.set()
        waiter.join(timeout=5.0)
        t.join(timeout=5.0)
        assert sanitizer.totals()["contended"] >= 1

    def test_unguarded_read_fixture_runtime(self, sanitizer):
        """Runtime view of the CC002 fixture: the writer thread takes
        the site lock on every update, the reader thread never touches
        it — the sanitizer's per-site ledger shows the bypass."""
        lock = sync.new_lock("Meter._lock")
        state = {"total": 0}

        def writer():
            for _ in range(50):
                with lock:
                    state["total"] += 1

        def reader():
            seen = 0
            for _ in range(50):
                seen = max(seen, state["total"])   # no lock: the bug
            return seen

        tw = threading.Thread(target=writer, daemon=True)
        tr = threading.Thread(target=reader, daemon=True)
        tw.start(); tr.start(); tw.join(); tr.join()
        (stats,) = sanitizer.site_rows()
        assert stats.name == "Meter._lock"
        assert stats.acquisitions == 50   # all of them from the writer

    def test_findings_deduplicate_with_count(self, sanitizer):
        a = sync.new_lock("A._lock")
        b = sync.new_lock("B._lock")

        def cross(first, second):
            with first:
                with second:
                    pass

        cross(a, b)
        for _ in range(3):
            cross(b, a)
        # an inversion edge is recorded once; repeats do not multiply
        assert len(sanitizer.findings("order")) == 1

    def test_uninstall_restores_raw_primitives(self):
        previous = current()
        uninstall_sanitizer()
        try:
            assert current() is None
            lock = sync.new_lock("X._lock")
            assert type(lock).__module__ == "_thread"
        finally:
            if previous is not None:
                install_instance(previous)


# --------------------------------------------------------------------------- #
# server integration: sys.lint_findings, lint.* metrics, SET knob

class TestServerIntegration:
    @pytest.fixture
    def sanitized_server(self):
        previous = current()
        uninstall_sanitizer()
        install_sanitizer(longhold_s=5.0)
        import repro
        server = repro.HiveServer2()
        try:
            yield server, server.connect()
        finally:
            uninstall_sanitizer()
            if previous is not None:
                install_instance(previous)

    def test_lint_metrics_live(self, sanitized_server):
        _, session = sanitized_server
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1)")
        rows = dict(session.execute(
            "SELECT name, value FROM sys.metrics "
            "WHERE name LIKE 'lint.sanitizer%'").rows)
        assert rows["lint.sanitizer.enabled"] == 1.0
        assert rows["lint.sanitizer.sites"] > 0
        assert rows["lint.sanitizer.acquisitions"] > 0

    def test_lint_findings_table(self, sanitized_server)  :
        _, session = sanitized_server
        # seed one inversion through the seam, then query it via SQL
        a = sync.new_lock("FixtureA._lock")
        b = sync.new_lock("FixtureB._lock")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        rows = session.execute(
            "SELECT source, kind, locks FROM sys.lint_findings").rows
        assert ("sanitizer", "order",
                "FixtureA._lock->FixtureB._lock") in rows \
            or ("sanitizer", "order",
                "FixtureB._lock->FixtureA._lock") in rows

    def test_longhold_knob_set_statement(self, sanitized_server):
        _, session = sanitized_server
        session.execute("SET hive.lint.sanitize.longhold.s = 0.25")
        assert current().longhold_s == 0.25
        with pytest.raises(Exception):
            session.execute("SET hive.lint.sanitize.longhold.s = 0")

    def test_suite_smoke_has_no_order_findings(self, sanitized_server):
        _, session = sanitized_server
        session.execute("CREATE TABLE t (a INT, b STRING)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        session.execute("SELECT b, COUNT(*) FROM t GROUP BY b")
        session.execute("SELECT * FROM sys.query_log")
        assert current().findings("order") == []

    def test_metrics_zero_without_sanitizer(self):
        previous = current()
        uninstall_sanitizer()
        try:
            import repro
            server = repro.HiveServer2()
            session = server.connect()
            rows = dict(session.execute(
                "SELECT name, value FROM sys.metrics "
                "WHERE name = 'lint.sanitizer.enabled'").rows)
            assert rows["lint.sanitizer.enabled"] == 0.0
            assert session.execute(
                "SELECT COUNT(*) FROM sys.lint_findings").rows == [(0,)]
        finally:
            if previous is not None:
                install_instance(previous)


class TestEnvInstall:
    def test_hive_sanitize_env_installs(self):
        code = ("import repro\n"
                "from repro.lint.sanitizer import current\n"
                "assert current() is not None\n"
                "server = repro.HiveServer2()\n"
                "s = server.connect()\n"
                "s.execute('CREATE TABLE t (a INT)')\n"
                "assert current().findings('order') == []\n"
                "print('sanitized-ok')\n")
        env = dict(os.environ, HIVE_SANITIZE="1",
                   HIVE_SANITIZE_STATIC="1",
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "sanitized-ok" in proc.stdout

    def test_no_env_no_overhead(self):
        code = ("import repro\n"
                "from repro.lint.sanitizer import current\n"
                "from repro.common import sync\n"
                "assert current() is None\n"
                "assert sync.active() is None\n"
                "print('raw-ok')\n")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop("HIVE_SANITIZE", None)
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "raw-ok" in proc.stdout
