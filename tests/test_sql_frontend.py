"""Lexer and parser: token streams, AST shapes, unparse, profile gating."""

import datetime

import pytest

from repro.config import HiveConf
from repro.errors import ParseError, UnsupportedFeatureError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_query, parse_statement


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM Bar")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.KEYWORD, TokenType.IDENT, TokenType.KEYWORD,
            TokenType.IDENT]
        assert tokens[0].value == "SELECT"
        assert tokens[3].value == "Bar"

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["1", "2.5", "1e3", "2.5E-2"]

    def test_comments_stripped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block\n*/ FROM t")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1", "FROM",
                                                  "t"]

    def test_multichar_operators(self):
        tokens = tokenize("a <> b >= c || d")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == ["<>", ">=", "||"]

    def test_backquoted_identifier(self):
        tokens = tokenize("`select`")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "select"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")

    def test_line_tracking(self):
        tokens = tokenize("SELECT\n\nx")
        assert tokens[1].line == 3


class TestQueryParsing:
    def test_basic_shape(self):
        query = parse_query(
            "SELECT a, b AS bee FROM t WHERE a > 1 GROUP BY a, b "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 7")
        spec = query.body
        assert [i.alias for i in spec.select_items] == [None, "bee"]
        assert spec.where is not None
        assert len(spec.group_by) == 2
        assert spec.having is not None
        assert query.order_by[0].ascending is False
        assert query.limit == 7

    def test_join_kinds(self):
        query = parse_query(
            "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x "
            "RIGHT JOIN c ON b.y = c.y CROSS JOIN d")
        ref = query.body.from_refs[0]
        assert isinstance(ref, ast.JoinRef) and ref.kind == "cross"
        assert ref.left.kind == "right"
        assert ref.left.left.kind == "left"

    def test_operator_precedence(self):
        expr = parse_query("SELECT 1 FROM t WHERE a OR b AND NOT c").body.where
        assert expr.op == "OR"
        assert expr.right.op == "AND"
        assert expr.right.right.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = parse_query("SELECT a + b * c FROM t").body.select_items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_date_literal(self):
        expr = parse_query("SELECT DATE '2020-02-03' FROM t"
                           ).body.select_items[0].expr
        assert expr.value == datetime.date(2020, 2, 3)

    def test_between_not_in_like(self):
        where = parse_query(
            "SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b NOT IN (1,2) "
            "AND c NOT LIKE 'x%' AND d IS NOT NULL").body.where
        parts = []

        def flatten(e):
            if isinstance(e, ast.BinaryOp) and e.op == "AND":
                flatten(e.left)
                flatten(e.right)
            else:
                parts.append(e)

        flatten(where)
        assert isinstance(parts[0], ast.Between)
        assert isinstance(parts[1], ast.InList) and parts[1].negated
        assert isinstance(parts[2], ast.Like) and parts[2].negated
        assert isinstance(parts[3], ast.IsNull) and parts[3].negated

    def test_case_simple_form_desugars(self):
        expr = parse_query(
            "SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END FROM t"
        ).body.select_items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert expr.whens[0][0].op == "="

    def test_count_star(self):
        expr = parse_query("SELECT COUNT(*) FROM t").body.select_items[0].expr
        assert expr.name == "count" and expr.args == ()

    def test_distinct_aggregate(self):
        expr = parse_query("SELECT SUM(DISTINCT a) FROM t"
                           ).body.select_items[0].expr
        assert expr.distinct

    def test_window_spec(self):
        expr = parse_query(
            "SELECT RANK() OVER (PARTITION BY a ORDER BY b DESC) FROM t"
        ).body.select_items[0].expr
        assert len(expr.window.partition_by) == 1
        assert not expr.window.order_by[0].ascending

    def test_union_precedence(self):
        body = parse_query(
            "SELECT 1 FROM a UNION ALL SELECT 2 FROM b "
            "INTERSECT SELECT 3 FROM c").body
        assert body.op == "union"
        assert body.right.op == "intersect"

    def test_cte(self):
        query = parse_query("WITH x AS (SELECT 1 a FROM t), "
                            "y AS (SELECT 2 b FROM u) SELECT * FROM x")
        assert [c.name for c in query.ctes] == ["x", "y"]

    def test_qualified_star(self):
        item = parse_query("SELECT t.* FROM t").body.select_items[0]
        assert isinstance(item.expr, ast.Star)
        assert item.expr.qualifier == "t"

    def test_unparse_stable(self):
        sql = ("SELECT a, SUM(b) AS s FROM t WHERE a IN (1, 2) "
               "GROUP BY a ORDER BY s DESC LIMIT 3")
        once = parse_query(sql).unparse()
        twice = parse_query(once).unparse()
        assert once == twice

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT 1 FROM t extra garbage ,")


class TestStatementParsing:
    def test_create_table_full(self):
        statement = parse_statement("""
            CREATE TABLE db.t (
                a INT NOT NULL, b DECIMAL(7,2), c STRING,
                PRIMARY KEY (a) DISABLE NOVALIDATE,
                FOREIGN KEY (c) REFERENCES dim (d) DISABLE)
            PARTITIONED BY (ds INT) STORED AS ORC
            TBLPROPERTIES ('transactional'='true', 'k'='v')""")
        assert statement.name == "db.t"
        assert statement.columns[0].not_null
        assert statement.columns[1].type_params == (7, 2)
        assert statement.primary_key == ("a",)
        assert statement.foreign_keys[0].ref_table == "dim"
        assert statement.partition_columns[0].name == "ds"
        assert dict(statement.properties)["transactional"] == "true"

    def test_create_external_stored_by(self):
        statement = parse_statement(
            "CREATE EXTERNAL TABLE d STORED BY 'druid' "
            "TBLPROPERTIES ('druid.datasource'='x')")
        assert statement.external
        assert statement.storage_handler == "druid"
        assert statement.columns == ()

    def test_insert_variants(self):
        values = parse_statement(
            "INSERT INTO t PARTITION (ds=3) (a, b) VALUES (1, 'x')")
        assert values.partition_spec == (("ds", 3),)
        assert values.columns == ("a", "b")
        select = parse_statement("INSERT OVERWRITE TABLE t SELECT * FROM u")
        assert select.overwrite and select.query is not None

    def test_merge_clauses(self):
        statement = parse_statement("""
            MERGE INTO t dst USING (SELECT * FROM s) src
            ON dst.k = src.k
            WHEN MATCHED AND src.flag = 1 THEN DELETE
            WHEN MATCHED THEN UPDATE SET v = src.v
            WHEN NOT MATCHED THEN INSERT VALUES (src.k, src.v)""")
        actions = [(c.matched, c.action) for c in statement.when_clauses]
        assert actions == [(True, "delete"), (True, "update"),
                           (False, "insert")]

    def test_workload_ddl_roundtrip(self):
        for sql, kind in [
            ("CREATE RESOURCE PLAN daytime", ast.CreateResourcePlan),
            ("CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
             "query_parallelism=5", ast.CreatePool),
            ("CREATE RULE dg IN daytime WHEN total_runtime > 3000 "
             "THEN MOVE etl", ast.CreateTriggerRule),
            ("ADD RULE dg TO bi", ast.AddRuleToPool),
            ("CREATE APPLICATION MAPPING app IN daytime TO bi",
             ast.CreateApplicationMapping),
            ("ALTER PLAN daytime SET DEFAULT POOL = etl", ast.AlterPlan),
            ("ALTER RESOURCE PLAN daytime ENABLE ACTIVATE",
             ast.AlterPlan),
        ]:
            assert isinstance(parse_statement(sql), kind)

    def test_explain_wraps(self):
        statement = parse_statement("EXPLAIN SELECT 1 FROM t")
        assert isinstance(statement, ast.Explain)
        assert isinstance(statement.statement, ast.SelectStatement)


class TestProfileGating:
    @pytest.fixture
    def legacy(self):
        return HiveConf.legacy_profile()

    @pytest.mark.parametrize("sql", [
        "SELECT a FROM t INTERSECT SELECT a FROM u",
        "SELECT a FROM t EXCEPT SELECT a FROM u",
        "SELECT d + INTERVAL '3' DAY FROM t",
        "SELECT a FROM t GROUP BY GROUPING SETS ((a), ())",
        "SELECT a FROM t GROUP BY ROLLUP (a)",
    ])
    def test_legacy_rejects(self, legacy, sql):
        with pytest.raises(UnsupportedFeatureError):
            parse_query(sql, legacy)

    def test_v3_accepts_everything(self, sql_list=None):
        v3 = HiveConf.v3_profile()
        for sql in ["SELECT a FROM t INTERSECT SELECT a FROM u",
                    "SELECT d + INTERVAL '3' DAY FROM t"]:
            parse_query(sql, v3)

    def test_union_allowed_on_legacy(self, legacy):
        parse_query("SELECT a FROM t UNION ALL SELECT a FROM u", legacy)
