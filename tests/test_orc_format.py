"""ORC-like columnar format: round trips, pruning, Bloom, corruption."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rows import Column, Schema
from repro.common.types import BOOLEAN, DATE, DOUBLE, INT, STRING
from repro.errors import HiveError
from repro.formats.encoding import ByteReader, ByteWriter, CorruptFileError
from repro.formats.orc import OrcReader, OrcWriter, SargPredicate
from repro.formats.text import TextReader, TextWriter


def write_file(schema, rows, **kwargs) -> bytes:
    writer = OrcWriter(schema, **kwargs)
    writer.write_rows(rows)
    return writer.finish()


class TestEncoding:
    def test_primitives_roundtrip(self):
        writer = ByteWriter()
        writer.write_u8(7)
        writer.write_i32(-5)
        writer.write_i64(2**40)
        writer.write_f64(1.25)
        writer.write_str("héllo")
        writer.write_blob(b"\x00\x01")
        reader = ByteReader(writer.getvalue())
        assert reader.read_u8() == 7
        assert reader.read_i32() == -5
        assert reader.read_i64() == 2**40
        assert reader.read_f64() == 1.25
        assert reader.read_str() == "héllo"
        assert reader.read_blob() == b"\x00\x01"
        assert reader.remaining() == 0

    def test_bounds_checked(self):
        reader = ByteReader(b"\x01")
        with pytest.raises(CorruptFileError):
            reader.read_i64()


class TestOrcRoundtrip:
    def test_all_types(self, simple_schema):
        rows = [(1, "x", 1.5, datetime.date(2020, 1, 1)),
                (-2, "", 0.0, datetime.date(1999, 12, 31)),
                (None, None, None, None)]
        data = write_file(simple_schema, rows)
        reader = OrcReader(data)
        assert reader.num_rows == 3
        assert reader.read_all().to_rows() == rows

    def test_multiple_row_groups(self, simple_schema):
        rows = [(i, f"s{i}", float(i), None) for i in range(1000)]
        data = write_file(simple_schema, rows, row_group_size=100)
        reader = OrcReader(data)
        assert len(reader.row_groups) == 10
        assert reader.read_all().to_rows() == rows

    def test_boolean_column(self):
        schema = Schema([Column("flag", BOOLEAN)])
        rows = [(True,), (False,), (None,)]
        data = write_file(schema, rows)
        assert OrcReader(data).read_all().to_rows() == rows

    def test_column_projection(self, simple_schema):
        rows = [(i, f"s{i}", float(i), None) for i in range(50)]
        data = write_file(simple_schema, rows)
        batch = OrcReader(data).read_all(columns=["c", "a"])
        assert batch.schema.names() == ["c", "a"]
        assert batch.to_rows()[0] == (0.0, 0)

    def test_empty_file(self, simple_schema):
        data = write_file(simple_schema, [])
        reader = OrcReader(data)
        assert reader.num_rows == 0
        assert reader.read_all().num_rows == 0

    def test_writer_single_use(self, simple_schema):
        writer = OrcWriter(simple_schema)
        writer.finish()
        with pytest.raises(HiveError):
            writer.finish()

    @given(st.lists(st.tuples(
        st.one_of(st.none(), st.integers(-2**31, 2**31 - 1)),
        st.one_of(st.none(), st.text(max_size=12)),
        st.one_of(st.none(), st.floats(allow_nan=False,
                                       allow_infinity=False,
                                       width=32))),
        max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows):
        schema = Schema([Column("a", INT), Column("b", STRING),
                         Column("c", DOUBLE)])
        data = write_file(schema, rows, row_group_size=16)
        assert OrcReader(data).read_all().to_rows() == rows


class TestRowGroupPruning:
    @pytest.fixture
    def reader(self):
        schema = Schema([Column("a", INT), Column("b", STRING)])
        rows = [(i, f"val{i // 100}") for i in range(1000)]
        data = write_file(schema, rows, row_group_size=100,
                          bloom_columns=["b"])
        return OrcReader(data)

    def test_equality_pruning(self, reader):
        selected = reader.select_row_groups([SargPredicate("a", "=", 150)])
        assert selected == [1]

    def test_range_pruning(self, reader):
        selected = reader.select_row_groups(
            [SargPredicate("a", ">", 850)])
        assert selected == [8, 9]
        selected = reader.select_row_groups(
            [SargPredicate("a", "<=", 99)])
        assert selected == [0]

    def test_between_and_in(self, reader):
        assert reader.select_row_groups(
            [SargPredicate("a", "between", (250, 260))]) == [2]
        assert reader.select_row_groups(
            [SargPredicate("a", "in", (5, 995))]) == [0, 9]

    def test_conjunction(self, reader):
        selected = reader.select_row_groups(
            [SargPredicate("a", ">", 100), SargPredicate("a", "<", 210)])
        assert selected == [1, 2]

    def test_bloom_pruning(self, reader):
        assert reader.select_row_groups(
            [SargPredicate("b", "=", "no-such-value")]) == []
        hits = reader.select_row_groups(
            [SargPredicate("b", "=", "val3")])
        assert 3 in hits and len(hits) <= 2  # exact + rare FPs

    def test_unknown_column_ignored(self, reader):
        assert len(reader.select_row_groups(
            [SargPredicate("zz", "=", 1)])) == 10

    def test_all_null_group_pruned(self):
        schema = Schema([Column("a", INT)])
        data = write_file(schema, [(None,)] * 10 + [(5,)] * 10,
                          row_group_size=10)
        reader = OrcReader(data)
        assert reader.select_row_groups(
            [SargPredicate("a", "=", 5)]) == [1]


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CorruptFileError):
            OrcReader(b"this is not an orc file----")

    def test_truncated(self, simple_schema):
        data = write_file(simple_schema, [(1, "x", 1.0, None)])
        with pytest.raises(CorruptFileError):
            OrcReader(data[:8])


class TestTextFormat:
    def test_roundtrip(self, simple_schema):
        rows = [(1, "x", 1.5, datetime.date(2020, 1, 1)),
                (None, None, None, None)]
        writer = TextWriter(simple_schema)
        writer.write_rows(rows)
        out = TextReader(simple_schema, writer.finish()).read_rows()
        assert out == rows

    def test_field_count_enforced(self, simple_schema):
        writer = TextWriter(simple_schema)
        with pytest.raises(HiveError):
            writer.write_rows([(1, 2)])

    def test_delimiter_collision_rejected(self):
        schema = Schema([Column("s", STRING)])
        writer = TextWriter(schema, delimiter=",")
        with pytest.raises(HiveError):
            writer.write_rows([("a,b",)])
