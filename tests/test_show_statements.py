"""SHOW DATABASES / PARTITIONS / MATERIALIZED VIEWS utility statements."""

import pytest

import repro


@pytest.fixture
def session():
    s = repro.connect()
    s.execute("CREATE DATABASE extra")
    s.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT, r STRING)")
    s.execute("INSERT INTO p VALUES (1, 5, 'us'), (2, 6, 'eu')")
    s.execute("CREATE TABLE src (a INT)")
    s.execute("INSERT INTO src VALUES (1), (2)")
    s.execute("CREATE MATERIALIZED VIEW mv AS "
              "SELECT a, COUNT(*) c FROM src GROUP BY a")
    return s


def test_show_databases(session):
    assert session.execute("SHOW DATABASES").rows == [
        ("default",), ("extra",)]


def test_show_partitions(session):
    rows = session.execute("SHOW PARTITIONS p").rows
    assert rows == [("ds=5/r=us",), ("ds=6/r=eu",)]


def test_show_partitions_unpartitioned(session):
    assert session.execute("SHOW PARTITIONS src").rows == []


def test_show_materialized_views_freshness(session):
    assert session.execute("SHOW MATERIALIZED VIEWS").rows == [
        ("default.mv", "yes", "fresh")]
    session.execute("INSERT INTO src VALUES (3)")
    assert session.execute("SHOW MATERIALIZED VIEWS").rows == [
        ("default.mv", "yes", "stale")]
    session.execute("ALTER MATERIALIZED VIEW mv REBUILD")
    assert session.execute("SHOW MATERIALIZED VIEWS").rows == [
        ("default.mv", "yes", "fresh")]


def test_show_tables_excludes_other_databases(session):
    assert session.execute("SHOW TABLES").rows == [
        ("mv",), ("p",), ("src",)]
