"""Tez-style runtime: DAG construction, vertex merging, cost accounting,

dynamic semijoin execution, re-optimization (Section 4.2).
"""

import pytest

import repro
from repro.config import HiveConf
from repro.errors import OutOfMemoryError
from repro.plan import relnodes as rel
from repro.runtime.tez import build_dag, merge_shared_vertices


@pytest.fixture
def session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    s = server.connect()
    s.execute("CREATE TABLE fact (k INT, d INT, amt DOUBLE)")
    s.execute("CREATE TABLE dim (d INT, cat STRING)")
    rows = ", ".join(f"({i % 50}, {i % 8}, {float(i)})"
                     for i in range(400))
    s.execute(f"INSERT INTO fact VALUES {rows}")
    s.execute("INSERT INTO dim VALUES (0,'a'),(1,'a'),(2,'b'),(3,'b'),"
              "(4,'c'),(5,'c'),(6,'d'),(7,'d')")
    s.conf.results_cache_enabled = False
    return s


class TestDagConstruction:
    def test_filter_project_fuse_into_scan_vertex(self, session):
        result = session.execute(
            "EXPLAIN SELECT amt * 2 FROM fact WHERE k > 10")
        dag = build_dag(result.optimized.root)
        assert len(dag.vertices) == 1
        assert dag.vertices[0].is_map

    def test_join_creates_reducer(self, session):
        result = session.execute(
            "EXPLAIN SELECT cat, SUM(amt) FROM fact, dim "
            "WHERE fact.d = dim.d GROUP BY cat")
        dag = build_dag(result.optimized.root)
        maps = [v for v in dag.vertices if v.is_map]
        reducers = [v for v in dag.vertices if not v.is_map]
        assert len(maps) == 2
        assert len(reducers) >= 2     # join + aggregate

    def test_topological_order(self, session):
        result = session.execute(
            "EXPLAIN SELECT cat, SUM(amt) FROM fact, dim "
            "WHERE fact.d = dim.d GROUP BY cat ORDER BY 2 DESC LIMIT 3")
        dag = build_dag(result.optimized.root)
        seen = set()
        for vertex in dag.topological():
            assert all(i in seen for i in vertex.inputs)
            seen.add(vertex.vertex_id)

    def test_merge_shared_vertices(self, session):
        sql = ("SELECT a.c, b.c FROM "
               "(SELECT COUNT(*) c FROM fact WHERE k > 5) a, "
               "(SELECT COUNT(*) c FROM fact WHERE k > 5) b")
        result = session.execute("EXPLAIN " + sql)
        dag = build_dag(result.optimized.root)
        merged = merge_shared_vertices(dag,
                                       result.optimized.shared_digests)
        assert len(merged.vertices) < len(dag.vertices)


class TestMetrics:
    def test_breakdown_populated(self, session):
        result = session.execute(
            "SELECT cat, SUM(amt) FROM fact, dim WHERE fact.d = dim.d "
            "GROUP BY cat")
        metrics = result.metrics
        assert metrics.total_s > 0
        assert metrics.compile_s > 0
        assert metrics.cpu_s > 0
        assert metrics.vertices
        assert metrics.rows_produced == 4

    def test_llap_vs_container_startup(self, session):
        query = "SELECT COUNT(*) FROM fact"
        llap_result = session.execute(query)
        session.conf.llap_enabled = False
        session.conf.llap_cache_enabled = False
        container_result = session.execute(query)
        assert (container_result.metrics.startup_s
                > llap_result.metrics.startup_s)
        assert (container_result.metrics.total_s
                > llap_result.metrics.total_s)

    def test_vectorization_lowers_cpu(self, session):
        query = "SELECT SUM(amt) FROM fact WHERE k > 0"
        fast = session.execute(query)
        session.conf.vectorized_execution = False
        slow = session.execute(query)
        assert slow.metrics.cpu_s > fast.metrics.cpu_s
        assert slow.rows == fast.rows

    def test_data_scale_magnifies_work(self, session):
        small = session.execute("SELECT SUM(amt) FROM fact")
        session.conf.cost.data_scale = 1000
        big = session.execute("SELECT SUM(amt) FROM fact")
        assert big.metrics.cpu_s > small.metrics.cpu_s * 100


class TestSemijoinRuntime:
    def test_filter_skips_fact_rows(self, session):
        result = session.execute(
            "SELECT SUM(amt) FROM fact, dim "
            "WHERE fact.d = dim.d AND cat = 'a'")
        assert result.optimized.semijoin_reducers
        # runtime filtered fact rows before the join
        reducers = result.optimized.semijoin_reducers
        assert reducers[0].target_column == "d"

    def test_results_match_without_semijoin(self, session):
        sql = ("SELECT SUM(amt) FROM fact, dim "
               "WHERE fact.d = dim.d AND cat = 'b'")
        with_sj = session.execute(sql)
        session.conf.semijoin_reduction = False
        without = session.execute(sql)
        assert with_sj.rows == without.rows


class TestReexecution:
    def test_oom_triggers_reoptimize(self, session):
        """A hash join whose build side exceeds the memory budget fails,

        is re-planned with the *captured runtime statistics* (which show
        the dimension is actually tiny), and succeeds — Section 4.2's
        reoptimize strategy."""
        from repro.metastore.stats import TableStatistics
        # poison HMS statistics: dim looks enormous, so the optimizer
        # puts the fact table on the (memory-bound) build side
        dim = session.hms.get_table("dim")
        fake = TableStatistics(row_count=1_000_000, total_bytes=1 << 30)
        session.hms.set_statistics(dim, fake)
        session.conf.hash_join_memory_rows = 150
        session.conf.semijoin_reduction = False
        sql = ("SELECT COUNT(*) FROM dim, fact WHERE dim.d = fact.d "
               "AND cat = 'a'")
        result = session.execute(sql)
        assert result.reexecuted
        assert result.rows == [(100,)]

    def test_reexecution_off_propagates(self, session):
        session.conf.hash_join_memory_rows = 50
        session.conf.join_reordering = False
        session.conf.reexecution_strategy = "off"
        with pytest.raises(OutOfMemoryError):
            session.execute("SELECT COUNT(*) FROM dim, fact "
                            "WHERE dim.d = fact.d AND cat = 'a'")

    def test_overlay_strategy(self, session):
        session.conf.hash_join_memory_rows = 50
        session.conf.join_reordering = False
        session.conf.reexecution_strategy = "overlay"
        session.conf.reexecution_overlay = {
            "hash_join_memory_rows": None}
        result = session.execute("SELECT COUNT(*) FROM dim, fact "
                                 "WHERE dim.d = fact.d AND cat = 'a'")
        assert result.reexecuted
        assert result.rows == [(100,)]
