"""Relational operator execution: joins, aggregates, sorts, set ops,

windows — directly against the interpreter with hand-built plans.
"""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import BIGINT, DOUBLE, INT, STRING
from repro.common.vector import VectorBatch
from repro.errors import ExecutionError, OutOfMemoryError
from repro.exec.operators import ExecutionContext, execute
from repro.plan import relnodes as rel
from repro.plan.rexnodes import (AggregateCall, RexInputRef, RexLiteral,
                                 make_call)

LEFT = Schema([Column("id", INT), Column("tag", STRING)])
RIGHT = Schema([Column("rid", INT), Column("val", DOUBLE)])

LEFT_ROWS = [(1, "a"), (2, "b"), (3, "c"), (None, "n"), (2, "b2")]
RIGHT_ROWS = [(2, 20.0), (3, 30.0), (3, 33.0), (None, 0.0), (9, 90.0)]


def make_ctx():
    data = {"l": VectorBatch.from_rows(LEFT, LEFT_ROWS),
            "r": VectorBatch.from_rows(RIGHT, RIGHT_ROWS)}
    return ExecutionContext(scan_executor=lambda n: data[n.table_name])


def scan(name, schema):
    return rel.TableScan(name, schema)


def join(kind, condition=None):
    if condition is None:
        condition = make_call("=", RexInputRef(0, INT),
                              RexInputRef(2, INT))
    return rel.Join(scan("l", LEFT), scan("r", RIGHT), kind, condition)


class TestJoins:
    def test_inner(self):
        rows = execute(join("inner"), make_ctx()).to_rows()
        assert sorted(rows) == [(2, "b", 2, 20.0), (2, "b2", 2, 20.0),
                                (3, "c", 3, 30.0), (3, "c", 3, 33.0)]

    def test_null_keys_never_match(self):
        rows = execute(join("inner"), make_ctx()).to_rows()
        assert not any(r[0] is None for r in rows)

    def test_left_outer(self):
        rows = execute(join("left"), make_ctx()).to_rows()
        unmatched = [r for r in rows if r[2] is None]
        assert sorted(r[0] is None or r[0] for r in unmatched) == [
            1, True]  # id=1 and the NULL-key row pad with NULLs

    def test_right_outer(self):
        rows = execute(join("right"), make_ctx()).to_rows()
        unmatched = [r for r in rows if r[0] is None]
        assert len(unmatched) == 2   # rid NULL and rid 9

    def test_full_outer(self):
        rows = execute(join("full"), make_ctx()).to_rows()
        assert len(rows) == 4 + 2 + 2

    def test_semi_and_anti(self):
        semi = execute(join("semi"), make_ctx()).to_rows()
        assert sorted(semi) == [(2, "b"), (2, "b2"), (3, "c")]
        anti = execute(join("anti"), make_ctx()).to_rows()
        assert sorted(anti, key=repr) == sorted(
            [(1, "a"), (None, "n")], key=repr)

    def test_cross_join(self):
        node = rel.Join(scan("l", LEFT), scan("r", RIGHT), "inner", None)
        rows = execute(node, make_ctx()).to_rows()
        assert len(rows) == len(LEFT_ROWS) * len(RIGHT_ROWS)

    def test_non_equi_residual(self):
        condition = make_call(
            "AND",
            make_call("=", RexInputRef(0, INT), RexInputRef(2, INT)),
            make_call(">", RexInputRef(3, DOUBLE),
                      RexLiteral(25.0, DOUBLE)))
        rows = execute(rel.Join(scan("l", LEFT), scan("r", RIGHT),
                                "inner", condition), make_ctx()).to_rows()
        assert sorted(rows) == [(3, "c", 3, 30.0), (3, "c", 3, 33.0)]

    def test_pure_theta_join(self):
        condition = make_call("<", RexInputRef(0, INT),
                              RexInputRef(2, INT))
        rows = execute(rel.Join(scan("l", LEFT), scan("r", RIGHT),
                                "inner", condition), make_ctx()).to_rows()
        assert all(r[0] < r[2] for r in rows)

    def test_oom_trigger(self):
        ctx = make_ctx()
        ctx.hash_join_memory_rows = 2
        with pytest.raises(OutOfMemoryError):
            execute(join("inner"), ctx)


class TestAggregates:
    def agg(self, calls, keys=()):
        return rel.Aggregate(scan("r", RIGHT), keys, tuple(calls))

    def test_global_aggregate(self):
        node = self.agg([AggregateCall("count", None, BIGINT, "n"),
                         AggregateCall("sum", 1, DOUBLE, "s"),
                         AggregateCall("min", 1, DOUBLE, "lo"),
                         AggregateCall("max", 1, DOUBLE, "hi"),
                         AggregateCall("avg", 1, DOUBLE, "av")])
        rows = execute(node, make_ctx()).to_rows()
        assert rows == [(5, 173.0, 0.0, 90.0, 173.0 / 5)]

    def test_count_skips_nulls_count_star_does_not(self):
        node = self.agg([AggregateCall("count", 0, BIGINT, "c"),
                         AggregateCall("count", None, BIGINT, "n")])
        assert execute(node, make_ctx()).to_rows() == [(4, 5)]

    def test_group_by_with_null_group(self):
        node = self.agg([AggregateCall("count", None, BIGINT, "n")],
                        keys=(0,))
        rows = dict(execute(node, make_ctx()).to_rows())
        assert rows[3] == 2 and rows[None] == 1

    def test_empty_input_global(self):
        empty = Schema([Column("x", INT)])
        ctx = ExecutionContext(
            scan_executor=lambda n: VectorBatch.empty(empty))
        node = rel.Aggregate(scan("e", empty), (),
                             (AggregateCall("count", None, BIGINT, "n"),
                              AggregateCall("sum", 0, BIGINT, "s")))
        assert execute(node, ctx).to_rows() == [(0, None)]

    def test_count_distinct(self):
        node = self.agg([AggregateCall("count", 0, BIGINT, "d",
                                       distinct=True)])
        assert execute(node, make_ctx()).to_rows() == [(3,)]

    def test_stddev(self):
        node = self.agg([AggregateCall("stddev", 1, DOUBLE, "sd")])
        (row,) = execute(node, make_ctx()).to_rows()
        assert row[0] == pytest.approx(30.016, abs=0.01)


class TestSortLimit:
    def test_sort_desc_nulls_last(self):
        node = rel.Sort(scan("l", LEFT), (rel.SortKey(0, False),))
        rows = execute(node, make_ctx()).to_rows()
        assert [r[0] for r in rows] == [3, 2, 2, 1, None]

    def test_multi_key(self):
        node = rel.Sort(scan("r", RIGHT),
                        (rel.SortKey(0, True), rel.SortKey(1, False)))
        rows = execute(node, make_ctx()).to_rows()
        assert [r[1] for r in rows if r[0] == 3] == [33.0, 30.0]

    def test_topn(self):
        node = rel.Sort(scan("r", RIGHT), (rel.SortKey(1, False),),
                        fetch=2)
        rows = execute(node, make_ctx()).to_rows()
        assert [r[1] for r in rows] == [90.0, 33.0]

    def test_limit(self):
        node = rel.Limit(scan("l", LEFT), 3)
        assert execute(node, make_ctx()).num_rows == 3

    def test_sort_stability(self):
        node = rel.Sort(scan("l", LEFT), (rel.SortKey(0, True),))
        rows = execute(node, make_ctx()).to_rows()
        twos = [r[1] for r in rows if r[0] == 2]
        assert twos == ["b", "b2"]     # input order preserved on ties


class TestSetOps:
    def both(self, kind, all=False):
        left = rel.Project(scan("l", LEFT),
                           (RexInputRef(0, INT),), ("id",))
        right = rel.Project(scan("r", RIGHT),
                            (RexInputRef(0, INT),), ("id",))
        return rel.SetOp(kind, left, right, all)

    def test_intersect(self):
        rows = execute(self.both("intersect"), make_ctx()).to_rows()
        assert {r[0] for r in rows} == {2, 3, None}
        assert len(rows) == 3      # set semantics: duplicates collapse

    def test_except(self):
        rows = execute(self.both("except"), make_ctx()).to_rows()
        assert [r[0] for r in rows] == [1]

    def test_union_all(self):
        left = rel.Project(scan("l", LEFT), (RexInputRef(0, INT),),
                           ("id",))
        right = rel.Project(scan("r", RIGHT), (RexInputRef(0, INT),),
                            ("id",))
        node = rel.Union((left, right), all=True)
        assert execute(node, make_ctx()).num_rows == 10


class TestWindow:
    def test_rank_and_row_number(self):
        calls = (
            rel.WindowCall("rank", None, (), (rel.SortKey(1, False),),
                           BIGINT, "rnk"),
            rel.WindowCall("row_number", None, (),
                           (rel.SortKey(1, False),), BIGINT, "rn"),
        )
        node = rel.Window(scan("r", RIGHT), calls)
        rows = execute(node, make_ctx()).to_rows()
        by_val = {r[1]: (r[2], r[3]) for r in rows}
        assert by_val[90.0] == (1, 1)
        assert by_val[33.0] == (2, 2)
        assert by_val[30.0] == (3, 3)

    def test_partitioned_running_sum(self):
        calls = (rel.WindowCall("sum", 1, (0,), (rel.SortKey(1, True),),
                                DOUBLE, "rs"),)
        node = rel.Window(scan("r", RIGHT), calls)
        rows = execute(node, make_ctx()).to_rows()
        threes = sorted((r[1], r[2]) for r in rows if r[0] == 3)
        assert threes == [(30.0, 30.0), (33.0, 63.0)]

    def test_whole_partition_agg_without_order(self):
        calls = (rel.WindowCall("max", 1, (), (), DOUBLE, "m"),)
        node = rel.Window(scan("r", RIGHT), calls)
        rows = execute(node, make_ctx()).to_rows()
        assert all(r[2] == 90.0 for r in rows)


class TestMemoization:
    def test_shared_digest_executes_once(self):
        calls = {"count": 0}
        batch = VectorBatch.from_rows(LEFT, LEFT_ROWS)

        def counting_scan(node):
            calls["count"] += 1
            return batch

        left = scan("l", LEFT)
        right = scan("l", LEFT)
        node = rel.Union((left, right), all=True)
        ctx = ExecutionContext(scan_executor=counting_scan,
                               memo_digests=frozenset({left.digest}))
        result = execute(node, ctx)
        assert result.num_rows == 10
        assert calls["count"] == 1


class TestFusionAndKernels:
    """scan→filter→project fusion and compiled-kernel execution must be
    invisible: same rows, same runtime stats, only faster."""

    def _plan(self):
        condition = make_call(">", RexInputRef(0, INT),
                              RexLiteral(1, INT))
        filt = rel.Filter(scan("l", LEFT), condition)
        exprs = (RexInputRef(1, STRING),
                 make_call("+", RexInputRef(0, INT),
                           RexLiteral(100, INT)))
        return rel.Project(filt, exprs, ("tag", "idplus"))

    def test_fused_matches_unfused(self):
        plan = self._plan()
        fused = execute(plan, make_ctx()).to_rows()
        ctx = make_ctx()
        ctx.fuse = False
        assert fused == execute(plan, ctx).to_rows()
        assert fused == [("b", 102), ("c", 103), ("b2", 102)]

    def test_fusion_records_bypassed_filter(self):
        plan = self._plan()
        ctx = make_ctx()
        execute(plan, ctx)
        # the Filter never ran as an operator, but reoptimization and
        # EXPLAIN ANALYZE still need its output cardinality
        assert ctx.runtime_stats[plan.input.digest] == 3

    def test_kernels_match_interpreter(self):
        from repro.exec.compile import KernelCache
        plan = self._plan()
        interpreted = execute(plan, make_ctx()).to_rows()
        ctx = make_ctx()
        ctx.kernels = KernelCache()
        assert execute(plan, ctx).to_rows() == interpreted
        assert ctx.kernels.compiled > 0

    def test_fusion_skipped_for_memoized_filter(self):
        plan = self._plan()
        ctx = make_ctx()
        ctx.memo_digests = frozenset({plan.input.digest})
        rows = execute(plan, ctx).to_rows()
        assert rows == [("b", 102), ("c", 103), ("b2", 102)]
        # shared-work reuse: the filter result must be in the memo
        assert plan.input.digest in ctx.memo


class TestVectorizedAggregationParity:
    """The factorized fast path must equal the row-wise fallback —
    including group order (first occurrence) and float accumulation."""

    def test_group_order_is_first_occurrence(self):
        schema = Schema([Column("g", INT), Column("v", INT)])
        data = [(3, 1), (1, 2), (3, 3), (2, 4), (1, 5), (None, 6)]
        batch = VectorBatch.from_rows(schema, data)
        ctx = ExecutionContext(scan_executor=lambda n: batch)
        plan = rel.Aggregate(
            rel.TableScan("t", schema), (0,),
            (AggregateCall("sum", 1, BIGINT, "s"),
             AggregateCall("count", 1, BIGINT, "c"),
             AggregateCall("min", 1, INT, "lo"),
             AggregateCall("max", 1, INT, "hi")),
            ("g",))
        rows = execute(plan, ctx).to_rows()
        # legacy dict-insertion order: 3, 1, 2, NULL — exactly
        assert rows == [(3, 4, 2, 1, 3), (1, 7, 2, 2, 5),
                        (2, 4, 1, 4, 4), (None, 6, 1, 6, 6)]

    def test_string_group_key_and_min_max_fallback(self):
        # grouping by a string key factorizes; a string min/max
        # aggregate forces the row-wise fallback — results must agree
        schema = Schema([Column("g", STRING), Column("v", INT)])
        data = [("b", 1), ("a", 2), ("b", 3), (None, 4), ("a", 5)]
        batch = VectorBatch.from_rows(schema, data)
        plan_sum = rel.Aggregate(
            rel.TableScan("t", schema), (0,),
            (AggregateCall("sum", 1, BIGINT, "s"),), ("g",))
        plan_min = rel.Aggregate(
            rel.TableScan("t", schema), (1,),
            (AggregateCall("min", 0, STRING, "lo"),), ("v",))
        ctx = ExecutionContext(scan_executor=lambda n: batch)
        assert execute(plan_sum, ctx).to_rows() == [
            ("b", 4), ("a", 7), (None, 4)]
        ctx2 = ExecutionContext(scan_executor=lambda n: batch)
        assert execute(plan_min, ctx2).to_rows() == [
            (1, "b"), (2, "a"), (3, "b"), (4, None), (5, "a")]

    def test_fast_path_bit_matches_rowwise(self):
        import numpy as np
        from repro.exec import operators as ops
        rng = np.random.default_rng(3)
        n = 500
        schema = Schema([Column("g", INT), Column("v", DOUBLE)])
        data = [(int(rng.integers(0, 7)), float(rng.normal(0, 10)))
                for _ in range(n)]
        batch = VectorBatch.from_rows(schema, data)
        node = rel.Aggregate(
            rel.TableScan("t", schema), (0,),
            (AggregateCall("sum", 1, DOUBLE, "s"),
             AggregateCall("avg", 1, DOUBLE, "a"),
             AggregateCall("stddev", 1, DOUBLE, "sd"),
             AggregateCall("min", 1, DOUBLE, "lo"),
             AggregateCall("max", 1, DOUBLE, "hi")),
            ("g",))
        fast = ops._aggregate_vectorized(node, batch, (0,), None)
        slow = ops._aggregate_rowwise(node, batch, (0,), None)
        assert fast is not None
        assert fast == slow                    # bit-equal floats

    def test_global_aggregate_bit_matches_rowwise(self):
        import numpy as np
        from repro.exec import operators as ops
        rng = np.random.default_rng(4)
        schema = Schema([Column("v", DOUBLE)])
        data = [(float(rng.normal(0, 1)),) for _ in range(257)]
        batch = VectorBatch.from_rows(schema, data)
        node = rel.Aggregate(
            rel.TableScan("t", schema), (),
            (AggregateCall("sum", 0, DOUBLE, "s"),
             AggregateCall("count", None, BIGINT, "c"),
             AggregateCall("variance", 0, DOUBLE, "var")), ())
        fast = ops._aggregate_vectorized(node, batch, (), None)
        slow = ops._aggregate_rowwise(node, batch, (), None)
        assert fast is not None
        assert fast == slow

    def test_distinct_falls_back(self):
        from repro.exec import operators as ops
        schema = Schema([Column("g", INT), Column("v", INT)])
        batch = VectorBatch.from_rows(schema, [(1, 2), (1, 2), (2, 3)])
        node = rel.Aggregate(
            rel.TableScan("t", schema), (0,),
            (AggregateCall("count", 1, BIGINT, "c", distinct=True),),
            ("g",))
        assert ops._aggregate_vectorized(node, batch, (0,), None) is None
