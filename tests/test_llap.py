"""LLAP cache (LRFU, validity), I/O elevator, metadata cache."""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import INT, STRING
from repro.formats.orc import OrcWriter
from repro.fs import SimFileSystem
from repro.llap.cache import ChunkKey, LlapCache
from repro.llap.elevator import DirectReaderFactory, LlapReaderFactory


def key(file_id=1, group=0, column="a", length=100):
    return ChunkKey(file_id, length, group, column)


class TestLlapCacheBasics:
    def test_miss_then_hit(self):
        cache = LlapCache(1000)
        assert cache.get(key()) is None
        cache.put(key(), "payload", 100)
        assert cache.get(key()) == "payload"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_capacity_enforced(self):
        cache = LlapCache(250)
        for i in range(5):
            cache.put(key(file_id=i), f"p{i}", 100)
        assert cache.used_bytes <= 250
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_oversized_chunk_never_admitted(self):
        cache = LlapCache(50)
        assert not cache.put(key(), "big", 100)
        assert len(cache) == 0

    def test_file_identity_in_key(self):
        cache = LlapCache(1000)
        cache.put(key(file_id=1, length=100), "old", 10)
        # a rewritten file has a new id/length: old chunk unreachable
        assert cache.get(key(file_id=2, length=120)) is None

    def test_invalidate_file(self):
        cache = LlapCache(1000)
        cache.put(key(file_id=7, group=0), "a", 10)
        cache.put(key(file_id=7, group=1), "b", 10)
        cache.put(key(file_id=8), "c", 10)
        assert cache.invalidate_file(7) == 2
        assert cache.get(key(file_id=8)) == "c"

    def test_invalidation_counts_as_eviction(self):
        """invalidate_file and capacity evictions move the same stats;
        otherwise evicted_bytes drifts from the resident set."""
        cache = LlapCache(1000)
        cache.put(key(file_id=7, group=0), "a", 30)
        cache.put(key(file_id=7, group=1), "b", 20)
        cache.put(key(file_id=8), "c", 10)
        cache.invalidate_file(7)
        assert cache.stats.evictions == 2
        assert cache.stats.evicted_bytes == 50
        assert cache.used_bytes == 10
        # capacity-pressure evictions accumulate into the same counters
        small = LlapCache(100)
        small.put(key(file_id=1), "x", 80)
        small.put(key(file_id=2), "y", 80)   # evicts file 1
        small.invalidate_file(2)
        assert small.stats.evictions == 2
        assert small.stats.evicted_bytes == 160
        assert small.used_bytes == 0


class TestLrfuEviction:
    def test_frequent_chunk_survives(self):
        cache = LlapCache(300, lrfu_lambda=0.1)
        cache.put(key(file_id=1), "hot", 100)
        cache.put(key(file_id=2), "cold", 100)
        for _ in range(10):
            cache.get(key(file_id=1))
        cache.put(key(file_id=3), "new", 100)
        cache.put(key(file_id=4), "newer", 100)
        assert key(file_id=1) in cache        # frequency protected it
        assert key(file_id=2) not in cache

    def test_pure_lru_behaviour_at_high_lambda(self):
        cache = LlapCache(200, lrfu_lambda=1.0)
        cache.put(key(file_id=1), "a", 100)
        cache.put(key(file_id=2), "b", 100)
        cache.get(key(file_id=1))             # 1 is now most recent
        cache.put(key(file_id=3), "c", 100)
        assert key(file_id=1) in cache
        assert key(file_id=2) not in cache


@pytest.fixture
def orc_file():
    fs = SimFileSystem()
    schema = Schema([Column("a", INT), Column("b", STRING)])
    writer = OrcWriter(schema, row_group_size=10)
    writer.write_rows([(i, f"s{i}") for i in range(50)])
    fs.create("/data/f1", writer.finish())
    return fs, schema


class TestElevator:
    def test_direct_factory_charges_disk(self, orc_file):
        fs, schema = orc_file
        factory = DirectReaderFactory(fs)
        reader = factory.open("/data/f1")
        reader.read_row_group(0, ["a"])
        assert factory.io.disk_bytes > 0
        assert factory.io.cache_bytes == 0

    def test_llap_factory_caches_chunks(self, orc_file):
        fs, schema = orc_file
        factory = LlapReaderFactory(fs, LlapCache(1 << 20))
        reader = factory.open("/data/f1")
        reader.read_row_group(0, ["a", "b"])
        cold_disk = factory.io.disk_bytes
        reader2 = factory.open("/data/f1")
        batch = reader2.read_row_group(0, ["a", "b"])
        assert batch.num_rows == 10
        assert factory.io.disk_bytes == cold_disk     # no new disk IO
        assert factory.io.cache_bytes > 0

    def test_chunk_granularity(self, orc_file):
        """Caching column 'a' must not mark column 'b' cached."""
        fs, schema = orc_file
        factory = LlapReaderFactory(fs, LlapCache(1 << 20))
        factory.open("/data/f1").read_row_group(0, ["a"])
        disk_after_a = factory.io.disk_bytes
        factory.open("/data/f1").read_row_group(0, ["b"])
        assert factory.io.disk_bytes > disk_after_a

    def test_metadata_cached_separately(self, orc_file):
        fs, schema = orc_file
        factory = LlapReaderFactory(fs, LlapCache(1 << 20))
        factory.open("/data/f1")
        opens_before = fs.stats.files_opened
        factory.open("/data/f1")     # footer from metadata cache
        assert fs.stats.files_opened == opens_before

    def test_new_file_version_not_served_stale(self, orc_file):
        fs, schema = orc_file
        factory = LlapReaderFactory(fs, LlapCache(1 << 20))
        factory.open("/data/f1").read_row_group(0, ["a"])
        fs.delete("/data/f1")
        writer = OrcWriter(schema, row_group_size=10)
        writer.write_rows([(i + 1000, "zz") for i in range(10)])
        fs.create("/data/f1", writer.finish())
        batch = factory.open("/data/f1").read_row_group(0, ["a"])
        assert batch.column("a").value(0) == 1000
