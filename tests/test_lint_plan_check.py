"""repro.lint layer 1: plan-invariant validation.

Covers the structural checks themselves, the optimizer integration
(a deliberately broken rule is caught with a stage-naming diagnostic),
EXPLAIN VALIDATE, and rule idempotence on TPC-DS-style plans.
"""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import BOOLEAN, DOUBLE, INT, STRING
from repro.config import HiveConf
from repro.errors import ConfigError, PlanInvariantError
from repro.fs import SimFileSystem
from repro.lint import check_plan, plan_violations, render_plan_diff
from repro.metastore.hms import HiveMetastore
from repro.metastore.stats import TableStatistics
from repro.optimizer import Optimizer
from repro.optimizer import planner as planner_module
from repro.optimizer.pruning import prune_columns
from repro.optimizer.rules_basic import (fold_constants,
                                         push_down_predicates)
from repro.plan import relnodes as rel
from repro.plan.rexnodes import (RexCall, RexInputRef, RexLiteral,
                                 make_call)
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_query

T = Schema([Column("a", INT), Column("b", STRING), Column("c", DOUBLE)])
U = Schema([Column("k", INT), Column("x", INT)])

# TPC-DS-style star schema for the idempotence tests
STORE_SALES = Schema([Column("ss_sold_date_sk", INT),
                      Column("ss_item_sk", INT),
                      Column("ss_quantity", INT),
                      Column("ss_sales_price", DOUBLE)])
DATE_DIM = Schema([Column("d_date_sk", INT), Column("d_year", INT),
                   Column("d_moy", INT)])
ITEM = Schema([Column("i_item_sk", INT), Column("i_category", STRING)])


def scan(schema=T, name="default.t", **kw):
    return rel.TableScan(name, schema, **kw)


def ref(i, dtype=INT):
    return RexInputRef(i, dtype)


def lit(value, dtype=INT):
    return RexLiteral(value, dtype)


@pytest.fixture
def tpcds_env():
    hms = HiveMetastore(SimFileSystem())
    for name, schema, rows in (
            ("store_sales", STORE_SALES,
             [(d % 30, d % 11, d % 7, float(d)) for d in range(2000)]),
            ("date_dim", DATE_DIM,
             [(d, 1998 + d % 5, 1 + d % 12) for d in range(30)]),
            ("item", ITEM,
             [(i, "cat%d" % (i % 4)) for i in range(11)])):
        table = hms.create_table("default", name, schema)
        hms.set_statistics(table, TableStatistics.from_rows(schema, rows))
    return hms


def analyze(hms, sql):
    return Analyzer(hms, HiveConf()).analyze_query(parse_query(sql))


# --------------------------------------------------------------------------- #
class TestPlanViolations:
    def test_valid_plan_has_no_violations(self):
        plan = rel.Sort(
            rel.Project(
                rel.Filter(scan(), make_call(">", ref(0), lit(1),
                                             dtype=BOOLEAN)),
                (ref(0), ref(2, DOUBLE)), ("a", "c")),
            (rel.SortKey(0),), fetch=10)
        assert plan_violations(plan) == []

    def test_out_of_range_input_ref(self):
        bad = rel.Filter(scan(), make_call(">", ref(7), lit(1),
                                           dtype=BOOLEAN))
        problems = plan_violations(bad)
        assert any("$7" in p and "out of range" in p for p in problems)

    def test_ref_dtype_mismatch(self):
        # column 1 is STRING but the ref claims INT
        bad = rel.Project(scan(), (ref(1, INT),), ("b",))
        assert any("typed" in p and "is" in p
                   for p in plan_violations(bad))

    def test_non_boolean_filter_condition(self):
        bad = rel.Filter(scan(), make_call("+", ref(0), lit(1),
                                           dtype=INT))
        assert any("expected BOOLEAN" in p for p in plan_violations(bad))

    def test_shared_node_object(self):
        shared = scan()
        bad = rel.Join(shared, shared, "inner",
                       make_call("=", ref(0), ref(3), dtype=BOOLEAN))
        assert any("appears twice" in p for p in plan_violations(bad))

    def test_cycle_reported_not_crashed(self):
        a = rel.Limit(scan(), 1)
        object.__setattr__(a, "input", a)  # reprolint: disable=RL003
        assert any("appears twice" in p for p in plan_violations(a))

    def test_aggregate_group_key_out_of_range(self):
        # schema derivation itself dies indexing column 9 — the
        # validator reports that instead of crashing
        bad = rel.Aggregate(scan(), (9,), (), ("g",))
        assert any("schema derivation failed" in p
                   for p in plan_violations(bad))

    def test_aggregate_arg_out_of_range(self):
        call = rel.AggregateCall("sum", 42, DOUBLE, "s")
        bad = rel.Aggregate(scan(), (0,), (call,), ("a",))
        assert any("arg $42" in p for p in plan_violations(bad))

    def test_grouping_set_member_not_a_key_position(self):
        bad = rel.Aggregate(scan(), (0, 1), (), ("a", "b"),
                            grouping_sets=((0,), (5,)))
        assert any("grouping set member 5" in p
                   for p in plan_violations(bad))

    def test_sort_key_out_of_range_and_negative_fetch(self):
        bad = rel.Sort(scan(), (rel.SortKey(11),), fetch=-1)
        problems = plan_violations(bad)
        assert any("sort key $11" in p for p in problems)
        assert any("negative fetch" in p for p in problems)

    def test_negative_limit(self):
        assert any("negative limit" in p
                   for p in plan_violations(rel.Limit(scan(), -3)))

    def test_unknown_join_kind(self):
        bad = rel.Join(scan(), scan(U, "default.u", scan_id=1), "sideways")
        assert any("unknown join kind" in p for p in plan_violations(bad))

    def test_semi_join_condition_sees_both_sides(self):
        # a semi join outputs the left schema only, but its condition is
        # resolved against left ++ right — $3 is legal here
        plan = rel.Join(scan(), scan(U, "default.u", scan_id=1), "semi",
                        make_call("=", ref(0), ref(3), dtype=BOOLEAN))
        assert plan_violations(plan) == []

    def test_union_branch_type_mismatch(self):
        bad = rel.Union((rel.Project(scan(), (ref(0),), ("a",)),
                         rel.Project(scan(T, scan_id=1),
                                     (ref(1, STRING),), ("a",))))
        assert any("column types" in p for p in plan_violations(bad))

    def test_values_row_width(self):
        bad = rel.Values(Schema([Column("a", INT), Column("b", INT)]),
                         ((1, 2), (3,)))
        assert any("row 1" in p for p in plan_violations(bad))

    def test_digest_embedding_object_address(self):
        bad = scan(pushed_query=object())
        assert any("object address" in p for p in plan_violations(bad))

    def test_window_ordinal_out_of_range(self):
        call = rel.WindowCall("rank", None, (8,), (), INT, "r")
        bad = rel.Window(scan(), (call,))
        assert any("ordinal $8" in p for p in plan_violations(bad))

    def test_sarg_must_be_boolean_over_scan_schema(self):
        bad = scan(sarg_conjuncts=(make_call("+", ref(0), lit(1),
                                             dtype=INT),))
        assert any("sarg #0" in p for p in plan_violations(bad))


class TestCheckPlan:
    def test_ok_returns_none(self):
        assert check_plan(scan(), stage="unit") is None

    def test_raises_with_stage_and_diff(self):
        before = rel.Project(scan(), (ref(0), ref(1, STRING)), ("a", "b"))
        after = rel.Sort(rel.Project(scan(), (ref(0),), ("a",)),
                         (rel.SortKey(1),))
        with pytest.raises(PlanInvariantError) as excinfo:
            check_plan(after, stage="bad_rule", before=before)
        err = excinfo.value
        assert err.stage == "bad_rule"
        assert err.violations
        assert "-" in err.diff and "+" in err.diff
        assert "bad_rule" in str(err)

    def test_render_plan_diff_is_unified(self):
        a = rel.Limit(scan(), 5)
        b = rel.Limit(scan(), 7)
        diff = render_plan_diff(a, b)
        assert "--- before" in diff and "+++ after" in diff


# --------------------------------------------------------------------------- #
class TestOptimizerIntegration:
    def test_broken_rule_caught_with_stage_name(self, tpcds_env,
                                                monkeypatch):
        """A rule that drops a projection column out from under a Sort
        is caught immediately after its stage, naming the stage."""
        def drops_a_column(root):
            def fix(node):
                node = node.with_inputs([fix(c) for c in node.inputs])
                if isinstance(node, rel.Sort) \
                        and isinstance(node.input, rel.Project):
                    proj = node.input
                    broken = rel.Project(proj.input, proj.exprs[:-1],
                                         proj.names[:-1])
                    return node.with_inputs([broken])
                return node
            return fix(root)

        monkeypatch.setattr(planner_module, "fold_constants",
                            drops_a_column)
        conf = HiveConf(check_plan="on")
        plan = analyze(tpcds_env, """
            SELECT ss_item_sk, sum(ss_sales_price) AS total
            FROM store_sales GROUP BY ss_item_sk ORDER BY total""")
        with pytest.raises(PlanInvariantError) as excinfo:
            Optimizer(tpcds_env, conf).optimize(plan)
        assert excinfo.value.stage == "constant_folding"
        assert "out of range" in str(excinfo.value)
        assert excinfo.value.diff  # before/after plan diff included

    def test_paranoid_names_the_individual_rule(self, tpcds_env,
                                                monkeypatch):
        def breaks_prune(root):
            if isinstance(root, rel.Sort) \
                    and isinstance(root.input, rel.Project):
                proj = root.input
                return root.with_inputs([rel.Project(
                    proj.input, proj.exprs[:-1], proj.names[:-1])])
            return root

        monkeypatch.setattr(planner_module, "choose_build_sides",
                            lambda root, stats: breaks_prune(root))
        conf = HiveConf(check_plan="paranoid")
        plan = analyze(tpcds_env, """
            SELECT d_year, sum(ss_sales_price) AS total
            FROM store_sales JOIN date_dim
              ON ss_sold_date_sk = d_date_sk
            GROUP BY d_year ORDER BY total""")
        with pytest.raises(PlanInvariantError) as excinfo:
            Optimizer(tpcds_env, conf).optimize(plan)
        assert excinfo.value.stage == "join_reordering.build_sides"

    def test_stages_checked_recorded(self, tpcds_env):
        conf = HiveConf(check_plan="on")
        plan = analyze(tpcds_env,
                       "SELECT ss_item_sk FROM store_sales "
                       "WHERE ss_quantity > 2")
        optimized = Optimizer(tpcds_env, conf).optimize(plan)
        assert "constant_folding" in optimized.stages_checked
        assert "filter_pushdown" in optimized.stages_checked

    def test_off_mode_checks_nothing(self, tpcds_env):
        conf = HiveConf(check_plan="off")
        plan = analyze(tpcds_env, "SELECT ss_item_sk FROM store_sales")
        optimized = Optimizer(tpcds_env, conf).optimize(plan)
        assert optimized.stages_checked == []


class TestCheckPlanConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="check_plan"):
            HiveConf(check_plan="sometimes").validate()
        with pytest.raises(ConfigError, match="check_plan"):
            HiveConf.v3_profile().copy(check_plan="bogus")

    def test_paranoid_flag_escalates(self):
        conf = HiveConf(check_plan="off", check_plan_paranoid=True)
        assert conf.plan_check_mode == "paranoid"

    def test_boolean_synonyms(self):
        assert HiveConf(check_plan="true").plan_check_mode == "on"
        assert HiveConf(check_plan="FALSE").plan_check_mode == "off"

    def test_non_bool_paranoid_rejected(self):
        with pytest.raises(ConfigError, match="paranoid"):
            HiveConf(check_plan_paranoid="yes").validate()

    def test_session_construction_validates(self):
        import repro
        server = repro.HiveServer2(HiveConf.v3_profile())
        server.conf.check_plan = "garbage"
        with pytest.raises(ConfigError):
            server.connect()  # Session copies + validates the conf


class TestExplainValidate:
    CORPUS = [
        "SELECT a, b FROM t WHERE a > 1",
        "SELECT b, count(*) FROM t GROUP BY b HAVING count(*) > 0",
        "SELECT t.a, u.x FROM t JOIN u ON t.a = u.k WHERE u.x > 10",
        "SELECT a FROM t UNION ALL SELECT k FROM u",
        "SELECT a, sum(c) OVER (PARTITION BY b) FROM t",
        "SELECT a, b, count(*) FROM t GROUP BY ROLLUP (a, b)",
        "WITH big AS (SELECT a FROM t WHERE a > 1) "
        "SELECT * FROM big ORDER BY a LIMIT 2",
        "SELECT a FROM t WHERE a IN (SELECT k FROM u)",
    ]

    def test_ok_for_query_corpus(self, loaded_session):
        for sql in self.CORPUS:
            result = loaded_session.execute(f"EXPLAIN VALIDATE {sql}")
            lines = [row[0] for row in result.rows]
            assert lines[-1].startswith("result: OK"), (sql, lines)
            assert any(line.startswith("check: OK") for line in lines)

    def test_runs_even_when_session_checking_is_off(self, loaded_session):
        loaded_session.execute("SET hive.check.plan=off")
        result = loaded_session.execute(
            "EXPLAIN VALIDATE SELECT a FROM t")
        assert result.rows[-1][0].startswith("result: OK")
        assert result.operation == "explain_validate"

    def test_unparse_round_trip(self):
        from repro.sql.parser import parse_statement
        stmt = parse_statement("EXPLAIN VALIDATE SELECT a FROM t",
                               HiveConf())
        assert stmt.validate and not stmt.analyze
        assert stmt.unparse().startswith("EXPLAIN VALIDATE")


# --------------------------------------------------------------------------- #
class TestRuleIdempotence:
    """fold/pushdown/prune must be fixpoints: running a rule on its own

    output changes nothing (digest-identical), and the output is valid."""

    QUERIES = [
        """SELECT d_year, i_category, sum(ss_sales_price) AS total
           FROM store_sales
           JOIN date_dim ON ss_sold_date_sk = d_date_sk
           JOIN item ON ss_item_sk = i_item_sk
           WHERE d_moy = 11 AND 1 + 1 = 2
           GROUP BY d_year, i_category ORDER BY total DESC LIMIT 10""",
        """SELECT ss_item_sk, count(*) FROM store_sales
           WHERE ss_quantity > 2 + 1 AND ss_sales_price < 100.0
           GROUP BY ss_item_sk""",
        """SELECT d_year, avg(ss_quantity)
           FROM store_sales JOIN date_dim
             ON ss_sold_date_sk = d_date_sk
           WHERE d_year BETWEEN 1998 AND 2000
           GROUP BY d_year""",
    ]

    @pytest.mark.parametrize("rule", [fold_constants,
                                      push_down_predicates,
                                      prune_columns],
                             ids=["fold", "pushdown", "prune"])
    def test_rule_twice_is_fixpoint(self, tpcds_env, rule):
        for sql in self.QUERIES:
            plan = analyze(tpcds_env, sql)
            once = rule(plan)
            assert plan_violations(once) == []
            twice = rule(once)
            assert twice.digest == once.digest, rule.__name__

    def test_whole_pipeline_twice_is_fixpoint(self, tpcds_env):
        for sql in self.QUERIES:
            plan = analyze(tpcds_env, sql)
            for rule in (fold_constants, push_down_predicates,
                         prune_columns):
                plan = rule(plan)
            again = plan
            for rule in (fold_constants, push_down_predicates,
                         prune_columns):
                again = rule(again)
            assert again.digest == plan.digest
            assert plan_violations(again) == []
