"""Workload management: plans, pools, mappings, triggers (Section 5.2)."""

import pytest

import repro
from repro.config import HiveConf
from repro.errors import WorkloadManagementError
from repro.llap.workload import (Pool, QueryAdmission, ResourcePlan,
                                 Trigger, TriggerAction, WorkloadManager)


def daytime_plan() -> ResourcePlan:
    plan = ResourcePlan("daytime")
    plan.add_pool(Pool("bi", 0.8, 5))
    plan.add_pool(Pool("etl", 0.2, 20))
    plan.mappings["visualization_app"] = "bi"
    plan.default_pool = "etl"
    plan.enabled = True
    return plan


class TestResourcePlan:
    def test_allocation_fractions_bounded(self):
        plan = ResourcePlan("p")
        plan.add_pool(Pool("a", 0.8, 1))
        with pytest.raises(WorkloadManagementError):
            plan.add_pool(Pool("b", 0.3, 1))

    def test_duplicate_pool(self):
        plan = ResourcePlan("p")
        plan.add_pool(Pool("a", 0.5, 1))
        with pytest.raises(WorkloadManagementError):
            plan.add_pool(Pool("a", 0.1, 1))

    def test_routing(self):
        plan = daytime_plan()
        assert plan.route("visualization_app") == "bi"
        assert plan.route("unknown") == "etl"
        assert plan.route(None) == "etl"

    def test_attach_rule(self):
        plan = daytime_plan()
        plan.unattached_triggers["downgrade"] = Trigger(
            "downgrade", "total_runtime", 3.0, TriggerAction.MOVE, "etl")
        plan.attach_rule("downgrade", "bi")
        assert plan.pools["bi"].triggers[0].name == "downgrade"
        with pytest.raises(WorkloadManagementError):
            plan.attach_rule("nope", "bi")


class TestAdmission:
    def test_pool_capacity_fraction(self):
        wm = WorkloadManager(daytime_plan())
        admission = wm.admit("visualization_app", 0.0)
        assert admission.pool == "bi"
        # etl is idle, so bi borrows its capacity
        assert admission.capacity_fraction == 1.0

    def test_no_borrowing_when_other_pool_busy(self):
        wm = WorkloadManager(daytime_plan())
        etl = wm.admit(None, 0.0)
        wm.complete(etl, 100.0)      # etl busy until t=100
        bi = wm.admit("visualization_app", 1.0)
        assert bi.capacity_fraction == pytest.approx(0.8)

    def test_concurrency_queueing(self):
        plan = ResourcePlan("p")
        plan.add_pool(Pool("only", 1.0, 1))
        plan.enabled = True
        wm = WorkloadManager(plan)
        first = wm.admit(None, 0.0)
        wm.complete(first, 10.0)
        second = wm.admit(None, 2.0)
        assert second.queue_delay_s == pytest.approx(8.0)

    def test_inactive_manager_passthrough(self):
        wm = WorkloadManager(None)
        admission = wm.admit("anything", 0.0)
        assert admission.capacity_fraction == 1.0


class TestTriggers:
    def make_wm(self, action=TriggerAction.MOVE):
        plan = daytime_plan()
        plan.pools["bi"].triggers.append(
            Trigger("downgrade", "total_runtime", 3.0, action, "etl"))
        return WorkloadManager(plan)

    def test_move_trigger(self):
        wm = self.make_wm()
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers(admission, {"total_runtime": 5.0})
        assert admission.moved_to == "etl"
        assert admission.capacity_fraction == pytest.approx(0.2)

    def test_below_threshold_no_move(self):
        wm = self.make_wm()
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers(admission, {"total_runtime": 1.0})
        assert admission.moved_to is None

    def test_kill_trigger(self):
        wm = self.make_wm(TriggerAction.KILL)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        with pytest.raises(WorkloadManagementError):
            wm.check_triggers(admission, {"total_runtime": 9.0})


class TestWorkloadDdlEndToEnd:
    """The paper's Section 5.2 example, verbatim, through the SQL layer."""

    def test_paper_example(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect(application="visualization_app")
        for sql in [
            "CREATE RESOURCE PLAN daytime",
            "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
            "query_parallelism=5",
            "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
            "query_parallelism=20",
            "CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 "
            "THEN MOVE etl",
            "ADD RULE downgrade TO bi",
            "CREATE APPLICATION MAPPING visualization_app IN daytime "
            "TO bi",
            "ALTER PLAN daytime SET DEFAULT POOL = etl",
            "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE",
        ]:
            session.execute(sql)
        wm = server.workload_manager
        assert wm.active
        assert wm.plan.route("visualization_app") == "bi"
        assert wm.plan.route(None) == "etl"
        assert wm.plan.pools["bi"].triggers[0].threshold == 3000

        # a query through the session lands in the mapped pool
        session.execute("CREATE TABLE w (x INT)")
        session.execute("INSERT INTO w VALUES (1), (2)")
        result = session.execute("SELECT COUNT(*) FROM w")
        assert result.metrics.pool == "bi"

    def test_move_trigger_repricing(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect(application="slowapp")
        for sql in [
            "CREATE RESOURCE PLAN prod",
            "CREATE POOL prod.fast WITH alloc_fraction=0.9, "
            "query_parallelism=4",
            "CREATE POOL prod.slow WITH alloc_fraction=0.1, "
            "query_parallelism=4",
            # tiny threshold: every query overruns it and gets moved
            "CREATE RULE demote IN prod WHEN total_runtime > 0 "
            "THEN MOVE slow",
            "ADD RULE demote TO fast",
            "CREATE APPLICATION MAPPING slowapp IN prod TO fast",
            "ALTER RESOURCE PLAN prod ENABLE ACTIVATE",
        ]:
            session.execute(sql)
        session.execute("CREATE TABLE w (x INT)")
        session.execute("INSERT INTO w VALUES (1)")
        result = session.execute("SELECT COUNT(*) FROM w")
        assert result.metrics.moved_to_pool == "slow"
