"""Federation: mini-Druid engine, storage handlers, pushdown (Section 6)."""

import datetime

import pytest

import repro
from repro.common.rows import Column, Schema
from repro.common.types import DATE, DOUBLE, INT, STRING
from repro.config import HiveConf
from repro.errors import FederationError
from repro.federation.druid import (DruidEngine, DruidQuery,
                                    DruidStorageHandler)
from repro.federation.jdbc import JdbcStorageHandler


@pytest.fixture
def engine():
    engine = DruidEngine()
    schema = Schema([Column("__t", DATE), Column("dim1", STRING),
                     Column("dim2", INT), Column("m1", DOUBLE)])
    ds = engine.create_datasource("src", schema, "__t",
                                  ["dim1", "dim2"], ["m1"])
    rows = []
    for i in range(200):
        rows.append((datetime.date(2018, 1 + i % 12, 1 + i % 28),
                     f"d{i % 4}", i % 10, float(i)))
    ds.ingest(rows)
    return engine


class TestDruidEngine:
    def test_segments_partitioned_by_time(self, engine):
        ds = engine.get("src")
        assert len(ds.segments) > 1
        assert ds.num_rows == 200

    def test_scan_query(self, engine):
        query = DruidQuery("scan", "src", columns=["dim1", "m1"])
        rows, cost = engine.execute(query)
        assert len(rows) == 200
        assert cost > 0

    def test_selector_filter_uses_index(self, engine):
        query = DruidQuery("groupBy", "src", dimensions=["dim1"],
                           aggregations=[{"type": "doubleSum",
                                          "name": "s",
                                          "fieldName": "m1"}],
                           filter={"type": "selector",
                                   "dimension": "dim1", "value": "d1"})
        rows, _ = engine.execute(query)
        assert len(rows) == 1 and rows[0][0] == "d1"

    def test_in_and_bound_filters(self, engine):
        query = DruidQuery(
            "groupBy", "src", dimensions=["dim1"],
            aggregations=[{"type": "count", "name": "n"}],
            filter={"type": "and", "fields": [
                {"type": "in", "dimension": "dim2", "values": [1, 2]},
                {"type": "bound", "dimension": "m1", "lower": 50.0},
            ]})
        rows, _ = engine.execute(query)
        assert all(n > 0 for _, n in rows)

    def test_interval_pruning(self, engine):
        everything, cost_all = engine.execute(
            DruidQuery("scan", "src", columns=["m1"]))
        lo = int(datetime.datetime(2018, 1, 1).timestamp() * 1000)
        hi = int(datetime.datetime(2018, 2, 1).timestamp() * 1000)
        some, cost_some = engine.execute(
            DruidQuery("scan", "src", columns=["m1"],
                       intervals=[(lo, hi)]))
        assert len(some) < len(everything)

    def test_limit_spec_ordering(self, engine):
        query = DruidQuery(
            "topN", "src", dimensions=["dim1"],
            aggregations=[{"type": "doubleSum", "name": "s",
                           "fieldName": "m1"}],
            limit_spec={"limit": 2, "columns": [
                {"dimension": "s", "direction": "descending"}]})
        rows, _ = engine.execute(query)
        assert len(rows) == 2
        assert rows[0][1] >= rows[1][1]

    def test_to_json_shape(self, engine):
        query = DruidQuery(
            "groupBy", "src", dimensions=["dim1"],
            aggregations=[{"type": "floatSum", "name": "s",
                           "fieldName": "m1"}],
            limit_spec={"limit": 10, "columns": []})
        text = query.to_json()
        assert '"queryType": "groupBy"' in text
        assert '"dataSource": "src"' in text

    def test_unknown_datasource(self, engine):
        with pytest.raises(FederationError):
            engine.get("missing")


@pytest.fixture
def druid_session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    server.register_storage_handler("druid",
                                    DruidStorageHandler(DruidEngine()))
    session = server.connect()
    session.execute(
        "CREATE EXTERNAL TABLE dt (d DATE, dim STRING, m DOUBLE) "
        "STORED BY 'druid'")
    session.execute(
        "INSERT INTO dt VALUES "
        "(DATE '2018-01-05', 'a', 1.0), (DATE '2018-01-06', 'b', 2.0), "
        "(DATE '2018-02-01', 'a', 4.0), (DATE '2018-03-01', 'c', 8.0)")
    session.conf.results_cache_enabled = False
    return server, session


class TestDruidHandler:
    def test_scan_through_hive(self, druid_session):
        _, session = druid_session
        rows = session.execute("SELECT dim, m FROM dt ORDER BY m").rows
        assert rows == [("a", 1.0), ("b", 2.0), ("a", 4.0), ("c", 8.0)]

    def test_aggregate_pushdown_correctness(self, druid_session):
        server, session = druid_session
        sql = ("SELECT dim, SUM(m) s FROM dt WHERE d >= DATE '2018-01-06'"
               " GROUP BY dim ORDER BY s DESC LIMIT 10")
        pushed = session.execute(sql)
        session.conf.federation_pushdown = False
        local = session.execute(sql)
        assert pushed.rows == local.rows == [
            ("c", 8.0), ("a", 4.0), ("b", 2.0)]
        # the pushed plan contains an engine query, the local one doesn't
        from repro.plan.relnodes import find_scans
        assert any(s.pushed_query is not None
                   for s in find_scans(pushed.optimized.root))
        assert all(s.pushed_query is None
                   for s in find_scans(local.optimized.root))

    def test_count_star_pushdown(self, druid_session):
        _, session = druid_session
        result = session.execute("SELECT COUNT(*) FROM dt WHERE dim = 'a'")
        assert result.rows == [(2,)]

    def test_unpushable_stays_in_hive(self, druid_session):
        _, session = druid_session
        # LIKE is not translatable: Hive filters locally, result correct
        result = session.execute(
            "SELECT COUNT(*) FROM dt WHERE dim LIKE 'a%'")
        assert result.rows == [(2,)]

    def test_schema_inference_from_datasource(self, druid_session):
        server, session = druid_session
        session.execute(
            "CREATE EXTERNAL TABLE dt2 STORED BY 'druid' "
            "TBLPROPERTIES ('druid.datasource'='dt')")
        rows = session.execute("SELECT COUNT(*) FROM dt2").rows
        assert rows == [(4,)]

    def test_join_druid_with_native(self, druid_session):
        _, session = druid_session
        session.execute("CREATE TABLE names (dim STRING, fullname STRING)")
        session.execute(
            "INSERT INTO names VALUES ('a', 'alpha'), ('b', 'beta')")
        rows = session.execute(
            "SELECT n.fullname, SUM(dt.m) FROM dt JOIN names n "
            "ON dt.dim = n.dim GROUP BY n.fullname ORDER BY 1").rows
        assert rows == [("alpha", 5.0), ("beta", 2.0)]

    def test_drop_external_table_drops_datasource(self, druid_session):
        server, session = druid_session
        handler = server.storage_handlers["druid"]
        assert "dt" in handler.engine.datasources
        session.execute("DROP TABLE dt")
        assert "dt" not in handler.engine.datasources


class TestJdbcHandler:
    @pytest.fixture
    def jdbc_session(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        server.register_storage_handler("jdbc", JdbcStorageHandler())
        session = server.connect()
        session.execute("CREATE EXTERNAL TABLE jt (k INT, v STRING, "
                        "amt DOUBLE) STORED BY 'jdbc'")
        session.execute("INSERT INTO jt VALUES (1, 'x', 5.0), "
                        "(2, 'y', 6.0), (3, 'x', 7.5)")
        session.conf.results_cache_enabled = False
        return server, session

    def test_scan(self, jdbc_session):
        _, session = jdbc_session
        rows = session.execute("SELECT k, v FROM jt ORDER BY k").rows
        assert rows == [(1, "x"), (2, "y"), (3, "x")]

    def test_sql_generation_pushdown(self, jdbc_session):
        _, session = jdbc_session
        result = session.execute(
            "SELECT v, SUM(amt) s FROM jt WHERE k > 1 GROUP BY v "
            "ORDER BY v")
        assert result.rows == [("x", 7.5), ("y", 6.0)]
        from repro.plan.relnodes import find_scans
        pushed = [s.pushed_query for s in
                  find_scans(result.optimized.root)
                  if s.pushed_query is not None]
        assert pushed and "GROUP BY" in pushed[0]

    def test_like_pushdown(self, jdbc_session):
        _, session = jdbc_session
        rows = session.execute(
            "SELECT COUNT(*) FROM jt WHERE v LIKE 'x%'").rows
        assert rows == [(2,)]

    def test_rows_visible_in_sqlite(self, jdbc_session):
        server, _ = jdbc_session
        handler = server.storage_handlers["jdbc"]
        count = handler.connection.execute(
            "SELECT COUNT(*) FROM jt").fetchone()[0]
        assert count == 3
