"""The §9 roadmap items implemented as extensions: the Kafka connector,

runtime-statistics feedback into the optimizer, and the materialized-
view advisor.  (Multi-statement transactions have their own test file.)
"""

import pytest

import repro
from repro.advisor import MaterializedViewAdvisor
from repro.config import HiveConf
from repro.errors import FederationError
from repro.federation import KafkaBroker, KafkaStorageHandler
from repro.metastore.stats import TableStatistics
from repro.plan.relnodes import Join, find_scans, walk


# --------------------------------------------------------------------------- #
# Kafka connector

@pytest.fixture
def kafka_session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    broker = KafkaBroker()
    server.register_storage_handler("kafka", KafkaStorageHandler(broker))
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute(
        "CREATE EXTERNAL TABLE events (user_id INT, action STRING) "
        "STORED BY 'kafka' TBLPROPERTIES ('kafka.partitions'='3')")
    session.execute(
        "INSERT INTO events VALUES (1,'click'), (2,'view'), (1,'buy'), "
        "(3,'click'), (2,'buy'), (1,'view')")
    return server, broker, session


class TestKafkaBroker:
    def test_round_robin_production(self):
        broker = KafkaBroker()
        topic = broker.create_topic("t", 3)
        placements = [topic.produce((i,)) for i in range(6)]
        assert [p for p, _ in placements] == [0, 1, 2, 0, 1, 2]
        assert [o for _, o in placements] == [0, 0, 0, 1, 1, 1]
        assert topic.total_records == 6

    def test_offset_seek(self):
        broker = KafkaBroker()
        topic = broker.create_topic("t", 1)
        for i in range(10):
            topic.produce((i,))
        records = topic.consume(0, start_offset=7)
        assert [r.payload[0] for r in records] == [7, 8, 9]

    def test_duplicate_topic(self):
        broker = KafkaBroker()
        broker.create_topic("t")
        with pytest.raises(FederationError):
            broker.create_topic("t")


class TestKafkaHandler:
    def test_metadata_columns_exposed(self, kafka_session):
        server, _, session = kafka_session
        table = server.hms.get_table("events")
        assert [c.name for c in table.schema] == [
            "user_id", "action", "__partition", "__offset",
            "__timestamp"]

    def test_scan_and_aggregate(self, kafka_session):
        _, _, session = kafka_session
        rows = session.execute(
            "SELECT action, COUNT(*) FROM events GROUP BY action "
            "ORDER BY action").rows
        assert rows == [("buy", 2), ("click", 2), ("view", 2)]

    def test_offset_predicate_pushdown(self, kafka_session):
        _, _, session = kafka_session
        result = session.execute(
            "SELECT COUNT(*) FROM events WHERE __offset >= 1")
        assert result.rows == [(3,)]   # second record of each partition
        pushed = [s.pushed_query
                  for s in find_scans(result.optimized.root)
                  if s.pushed_query is not None]
        assert pushed and pushed[0].min_offset == 1

    def test_join_stream_with_table(self, kafka_session):
        _, _, session = kafka_session
        session.execute("CREATE TABLE users (user_id INT, name STRING)")
        session.execute(
            "INSERT INTO users VALUES (1,'ada'), (2,'bob'), (3,'eve')")
        rows = session.execute(
            "SELECT name, COUNT(*) c FROM events, users "
            "WHERE events.user_id = users.user_id "
            "GROUP BY name ORDER BY c DESC, name").rows
        assert rows == [("ada", 3), ("bob", 2), ("eve", 1)]

    def test_streaming_appends_visible(self, kafka_session):
        _, broker, session = kafka_session
        broker.get("events").produce((9, "late"))
        rows = session.execute("SELECT COUNT(*) FROM events").rows
        assert rows == [(7,)]

    def test_drop_removes_topic(self, kafka_session):
        _, broker, session = kafka_session
        session.execute("DROP TABLE events")
        assert "events" not in broker.topics


# --------------------------------------------------------------------------- #
# runtime statistics feedback

class TestRuntimeStatsFeedback:
    @pytest.fixture
    def session(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        s = server.connect()
        s.conf.results_cache_enabled = False
        s.execute("CREATE TABLE fact (k INT)")
        s.execute("CREATE TABLE dim (k INT)")
        s.execute("INSERT INTO fact VALUES "
                  + ", ".join(f"({i % 10})" for i in range(300)))
        s.execute("INSERT INTO dim VALUES "
                  + ", ".join(f"({i})" for i in range(10)))
        # poison the catalog statistics so the first plan is wrong
        server.hms.set_statistics(server.hms.get_table("dim"),
                                  TableStatistics(row_count=1_000_000))
        return server, s

    SQL = "SELECT COUNT(*) FROM dim, fact WHERE dim.k = fact.k"

    def build_table(self, result) -> str:
        join = next(n for n in walk(result.optimized.root)
                    if isinstance(n, Join))
        return join.right.digest

    def test_second_compilation_adapts(self, session):
        server, s = session
        s.conf.runtime_stats_feedback = True
        first = s.execute(self.SQL)
        second = s.execute(self.SQL)
        assert "fact" in self.build_table(first)
        assert "dim" in self.build_table(second)
        assert first.rows == second.rows == [(300,)]
        assert server.hms.runtime_stats()        # persisted in HMS

    def test_disabled_by_default(self, session):
        _, s = session
        first = s.execute(self.SQL)
        second = s.execute(self.SQL)
        assert self.build_table(first) == self.build_table(second)

    def test_clear(self, session):
        server, s = session
        s.conf.runtime_stats_feedback = True
        s.execute(self.SQL)
        server.hms.clear_runtime_stats()
        assert server.hms.runtime_stats() == {}


# --------------------------------------------------------------------------- #
# materialized view advisor

class TestAdvisor:
    @pytest.fixture
    def warehouse(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect()
        session.conf.results_cache_enabled = False
        session.execute("""CREATE TABLE sales (
            item_sk INT, amount DOUBLE, day_sk INT)""")
        session.execute("""CREATE TABLE days (
            day_sk INT, year INT, month INT,
            PRIMARY KEY (day_sk) DISABLE NOVALIDATE)""")
        days = ", ".join(f"({d}, {2020 + d // 12}, {d % 12 + 1})"
                         for d in range(24))
        session.execute(f"INSERT INTO days VALUES {days}")
        sales = ", ".join(f"({i % 9}, {float(i % 30)}, {i % 24})"
                          for i in range(400))
        session.execute(f"INSERT INTO sales VALUES {sales}")
        return server, session

    WORKLOAD = [
        "SELECT year, SUM(amount) FROM sales, days "
        "WHERE sales.day_sk = days.day_sk GROUP BY year",
        "SELECT month, SUM(amount) FROM sales, days "
        "WHERE sales.day_sk = days.day_sk AND year = 2020 "
        "GROUP BY month",
        "SELECT year, month, COUNT(*) FROM sales, days "
        "WHERE sales.day_sk = days.day_sk GROUP BY year, month",
        # a different signature, seen only once: below min_support
        "SELECT COUNT(*) FROM sales",
    ]

    def test_recommends_common_signature(self, warehouse):
        server, _ = warehouse
        advisor = MaterializedViewAdvisor(server, min_support=2)
        for sql in self.WORKLOAD:
            advisor.record(sql)
        assert advisor.workload_size == 4
        recommendations = advisor.recommend()
        assert len(recommendations) == 1
        rec = recommendations[0]
        assert rec.supporting_queries == 3
        assert rec.tables == ("days", "sales")
        assert "GROUP BY" in rec.create_statement
        assert rec.benefit_score > 0

    def test_recommended_view_serves_the_workload(self, warehouse):
        """Closing the loop: create the advised view; the rewriter then

        answers every clustered query from it with identical results."""
        server, session = warehouse
        advisor = MaterializedViewAdvisor(server, min_support=2)
        for sql in self.WORKLOAD[:3]:
            advisor.record(sql)
        expected = [session.execute(sql).rows
                    for sql in self.WORKLOAD[:3]]
        (rec,) = advisor.recommend(top_k=1)
        session.execute(rec.create_statement)
        for sql, rows in zip(self.WORKLOAD[:3], expected):
            result = session.execute(sql)
            assert result.views_used == [f"default.{rec.name}"], sql
            assert sorted(result.rows) == sorted(rows)

    def test_out_of_scope_statements_skipped(self, warehouse):
        server, _ = warehouse
        advisor = MaterializedViewAdvisor(server)
        assert not advisor.record("INSERT INTO sales VALUES (1, 1.0, 1)")
        assert not advisor.record("SELECT * FROM sales")
        assert not advisor.record("not even sql")
        assert advisor.workload_size == 0

    def test_min_support_respected(self, warehouse):
        server, _ = warehouse
        advisor = MaterializedViewAdvisor(server, min_support=5)
        for sql in self.WORKLOAD:
            advisor.record(sql)
        assert advisor.recommend() == []
