"""Fault injection & recovery (repro.faults).

The contract under test: with a fixed ``hive.faults.seed`` the same
faults strike at the same sites, queries pay for retries/failover in
virtual time, and — because the final attempt always succeeds — every
query returns **exactly** the rows a fault-free run returns.  Plus the
recovery-path bugs the faults exposed: transaction-manager error types,
lock fairness, and the results cache's pending-entry takeover.
"""

import threading

import pytest

import repro
from repro.config import HiveConf
from repro.errors import TransactionError
from repro.faults import FaultRegistry
from repro.metastore.locks import LockManager, LockType
from repro.metastore.txn import AcidHouseKeeper, TransactionManager, TxnState
from repro.server.results_cache import QueryResultsCache


def fault_conf(**overrides) -> HiveConf:
    """A conf with every fault knob pinned (environment-independent)."""
    conf = HiveConf.v3_profile()
    conf.faults_seed = 7
    conf.faults_task_fail_rate = 0.0
    conf.faults_io_error_rate = 0.0
    conf.faults_node_fail_rate = 0.0
    conf.faults_slow_node_rate = 0.0
    conf.faults_lock_stall_rate = 0.0
    for key, value in overrides.items():
        setattr(conf, key, value)
    conf.validate()
    return conf


def load_warehouse(server) -> "repro.server.driver.Session":
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute("CREATE TABLE sales (region STRING, amount INT)")
    # separate INSERTs -> separate files -> multi-task map vertices
    session.execute("INSERT INTO sales VALUES ('east', 10), ('west', 20)")
    session.execute("INSERT INTO sales VALUES ('east', 30), ('north', 5)")
    session.execute("INSERT INTO sales VALUES ('west', 40), ('south', 15)")
    session.execute("INSERT INTO sales VALUES ('north', 25), ('east', 50)")
    return session


QUERIES = [
    "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region",
    "SELECT COUNT(*) FROM sales WHERE amount > 12",
    "SELECT * FROM sales ORDER BY amount DESC LIMIT 3",
]


# --------------------------------------------------------------------------- #
# the registry itself

class TestFaultRegistry:
    def test_decisions_are_pure_and_seeded(self):
        a = FaultRegistry(seed=11)
        b = FaultRegistry(seed=11)
        keys = [("digest", i) for i in range(50)]
        assert [a.decide("task.fail", k, 0.3) for k in keys] \
            == [b.decide("task.fail", k, 0.3) for k in keys]
        c = FaultRegistry(seed=12)
        assert [a.decide("task.fail", k, 0.3) for k in keys] \
            != [c.decide("task.fail", k, 0.3) for k in keys]

    def test_failed_attempts_capped(self):
        registry = FaultRegistry(seed=3)
        for key in range(100):
            failures = registry.failed_attempts("task.fail", key, 0.9, 3)
            assert 0 <= failures <= 3

    def test_rate_zero_never_fires(self):
        registry = FaultRegistry(seed=1)
        assert not any(registry.decide("fs.read", k, 0.0)
                       for k in range(200))
        assert registry.failed_attempts("task.fail", 1, 0.0, 5) == 0

    def test_event_log_and_counts(self):
        registry = FaultRegistry(seed=1)
        registry.record("task.fail", "v1", attempts=2, delay_s=0.5)
        registry.record("fs.read", "/a/b", attempts=1)
        assert registry.count() == 2
        assert registry.count("task.fail") == 1
        event = registry.events("task.fail")[0]
        assert event.as_row()[2:5] == ("task.fail", "v1", 2)


# --------------------------------------------------------------------------- #
# tentpole acceptance: identical results under seeded injection

class TestSeededInjection:
    def test_results_identical_to_fault_free(self):
        plain = load_warehouse(repro.HiveServer2(fault_conf()))
        faulty = load_warehouse(repro.HiveServer2(fault_conf(
            faults_task_fail_rate=0.2, faults_io_error_rate=0.6,
            faults_slow_node_rate=0.2)))
        for sql in QUERIES:
            assert faulty.execute(sql).rows == plain.execute(sql).rows
        # faults actually struck and cost virtual time
        registry = faulty.server.faults
        assert registry.count() > 0
        assert registry.count("fs.read") > 0

    def test_same_seed_same_schedule(self):
        runs = []
        for _ in range(2):
            session = load_warehouse(repro.HiveServer2(fault_conf(
                faults_task_fail_rate=0.3, faults_io_error_rate=0.1)))
            rows, times, attempts = [], [], []
            for sql in QUERIES:
                result = session.execute(sql)
                rows.append(result.rows)
                times.append(round(result.virtual_time_s, 9))
                attempts.append([(vm.name, vm.attempts, round(vm.retry_s, 9))
                                 for vm in result.metrics.vertices])
            log = [e.as_row() for e in session.server.faults.events()]
            runs.append((rows, times, attempts, log))
        assert runs[0] == runs[1]

    def test_different_seed_different_schedule(self):
        logs = []
        for seed in (1, 2):
            session = load_warehouse(repro.HiveServer2(fault_conf(
                faults_seed=seed, faults_task_fail_rate=0.3)))
            for sql in QUERIES:
                session.execute(sql)
            logs.append([e.as_row()[2:] for e in
                         session.server.faults.events()])
        assert logs[0] != logs[1]

    def test_retries_visible_in_sys_tables(self):
        session = load_warehouse(repro.HiveServer2(fault_conf(
            faults_task_fail_rate=0.5)))
        for sql in QUERIES:
            session.execute(sql)
        fault_rows = session.execute(
            "SELECT site, attempts FROM sys.fault_log "
            "WHERE site = 'task.fail'").rows
        assert fault_rows and all(a >= 1 for _, a in fault_rows)
        attempt_rows = session.execute(
            "SELECT attempts, failed_attempts FROM sys.vertex_log "
            "WHERE failed_attempts > 0").rows
        assert attempt_rows
        assert all(attempts > failed for attempts, failed in attempt_rows)

    def test_retry_time_charged(self):
        plain = load_warehouse(repro.HiveServer2(fault_conf()))
        faulty = load_warehouse(repro.HiveServer2(fault_conf(
            faults_task_fail_rate=0.5)))
        sql = QUERIES[0]
        base = plain.execute(sql).metrics
        injected = faulty.execute(sql).metrics
        assert injected.retry_s > 0.0
        assert injected.total_s > base.total_s

    def test_explain_analyze_annotates_retries(self):
        session = load_warehouse(repro.HiveServer2(fault_conf(
            faults_task_fail_rate=0.5)))
        lines = [r[0] for r in session.execute(
            "EXPLAIN ANALYZE " + QUERIES[0]).rows]
        assert any("retried=" in line for line in lines)
        assert any(line.startswith("-- faults:") for line in lines)

    def test_io_faults_recharge_reads(self):
        session = load_warehouse(repro.HiveServer2(fault_conf(
            faults_io_error_rate=0.6)))
        before = session.fs.stats.io_retries
        rows = session.execute(QUERIES[1]).rows
        assert rows == [(6,)]
        assert session.fs.stats.io_retries > before
        assert session.fs.stats.retry_bytes > 0


class TestSpeculation:
    def test_straggler_gets_backup_attempt(self):
        plain = load_warehouse(repro.HiveServer2(fault_conf()))
        slow = load_warehouse(repro.HiveServer2(fault_conf(
            faults_slow_node_rate=0.3,
            faults_slow_node_multiplier=8.0)))
        for sql in QUERIES:
            assert slow.execute(sql).rows == plain.execute(sql).rows
        faults = slow.server.faults
        assert faults.count("task.slow") > 0
        assert faults.count("speculation") > 0
        spec_rows = slow.execute(
            "SELECT speculative_tasks, retry_s FROM sys.vertex_log "
            "WHERE speculative_tasks > 0").rows
        assert spec_rows

    def test_speculation_off_leaves_straggler(self):
        base = load_warehouse(repro.HiveServer2(fault_conf(
            faults_slow_node_rate=0.3,
            faults_slow_node_multiplier=8.0)))
        capped = [base.execute(sql).metrics.total_s for sql in QUERIES]
        off = load_warehouse(repro.HiveServer2(fault_conf(
            faults_slow_node_rate=0.3,
            faults_slow_node_multiplier=8.0,
            speculative_execution=False)))
        uncapped = [off.execute(sql).metrics.total_s for sql in QUERIES]
        assert off.server.faults.count("speculation") == 0
        # backup attempts can only shorten queries, never lengthen them
        assert all(c <= u for c, u in zip(capped, uncapped))
        assert any(c < u for c, u in zip(capped, uncapped))


class TestLlapFailover:
    def test_node_death_charges_failover_and_drops_cache(self):
        conf = fault_conf(faults_node_fail_rate=1.0)
        session = load_warehouse(repro.HiveServer2(conf))
        warm = session.execute(QUERIES[0])          # warms the cache too
        assert warm.metrics.failover_s > 0.0
        assert session.server.faults.count("node.death") > 0

    def test_failover_results_match_fault_free(self):
        plain = load_warehouse(repro.HiveServer2(fault_conf()))
        faulty = load_warehouse(repro.HiveServer2(fault_conf(
            faults_node_fail_rate=1.0)))
        for sql in QUERIES:
            assert faulty.execute(sql).rows == plain.execute(sql).rows

    def test_no_failover_without_llap(self):
        conf = fault_conf(faults_node_fail_rate=1.0, llap_enabled=False)
        session = load_warehouse(repro.HiveServer2(conf))
        result = session.execute(QUERIES[0])
        assert result.metrics.failover_s == 0.0


# --------------------------------------------------------------------------- #
# heartbeat reaper

class TestHeartbeatReaper:
    def test_expired_txn_reaped_end_to_end(self):
        conf = fault_conf(txn_timeout_s=0.1,
                          faults_lock_stall_rate=1.0)
        server = repro.HiveServer2(conf)
        dead = load_warehouse(server)
        dead.execute("START TRANSACTION")
        dead.execute("INSERT INTO sales VALUES ('ghost', 999)")
        stalled_txn = dead._active_txn
        assert server.faults.is_stalled(stalled_txn)

        live = server.connect()
        live.conf.results_cache_enabled = False
        # the monitor session's virtual clock is aligned with the dead
        # one (both "wall clocks" run together); its statements then
        # advance the warehouse clock past the 0.1s lease
        live.now_s = dead.now_s
        for _ in range(3):
            live.execute("SELECT COUNT(*) FROM sales")
        assert server.hms.txn_manager.state_of(stalled_txn) \
            is TxnState.ABORTED
        assert server.hms.lock_manager.locks_held(stalled_txn) == []
        reap_rows = live.execute(
            "SELECT target FROM sys.fault_log "
            "WHERE site = 'txn.reaped'").rows
        assert (f"txn {stalled_txn}",) in reap_rows
        # the aborted write-ids stay invisible to every reader
        rows = live.execute(
            "SELECT COUNT(*) FROM sales WHERE region = 'ghost'").rows
        assert rows == [(0,)]
        # and the dead session's next statement fails cleanly
        with pytest.raises(TransactionError):
            dead.execute("COMMIT")

    def test_heartbeat_keeps_txn_alive(self):
        conf = fault_conf(txn_timeout_s=30.0)
        server = repro.HiveServer2(conf)
        session = load_warehouse(server)
        session.execute("START TRANSACTION")
        txn = session._active_txn
        # statements heartbeat; clock moves but the lease is refreshed
        for _ in range(4):
            session.execute("SELECT COUNT(*) FROM sales")
        assert server.hms.txn_manager.state_of(txn) is TxnState.OPEN
        session.execute("COMMIT")
        assert server.hms.txn_manager.state_of(txn) is TxnState.COMMITTED

    def test_housekeeper_races_client_abort(self):
        manager = TransactionManager()
        keeper = AcidHouseKeeper(manager, LockManager(), timeout_s=1.0)
        txn = manager.open_transaction()
        manager.advance_clock(100.0)
        manager.abort(txn)            # client got there first
        assert keeper.run(now_s=100.0) == []
        assert manager.state_of(txn) is TxnState.ABORTED

    def test_reaper_only_takes_expired(self):
        manager = TransactionManager()
        keeper = AcidHouseKeeper(manager, LockManager(), timeout_s=10.0)
        old = manager.open_transaction()
        manager.advance_clock(100.0)
        fresh = manager.open_transaction()   # heartbeat stamped at 100
        assert keeper.run(now_s=105.0) == [old]
        assert manager.state_of(fresh) is TxnState.OPEN


# --------------------------------------------------------------------------- #
# satellite 1: transaction-manager error contract

class TestTransactionErrors:
    def test_unknown_txn_raises_transaction_error(self):
        manager = TransactionManager()
        with pytest.raises(TransactionError):
            manager.state_of(999)
        with pytest.raises(TransactionError):
            manager.abort(999)
        with pytest.raises(TransactionError):
            manager.commit(999)
        with pytest.raises(TransactionError):
            manager.heartbeat(999)

    def test_abort_is_idempotent(self):
        manager = TransactionManager()
        txn = manager.open_transaction()
        manager.abort(txn)
        manager.abort(txn)            # second abort: silent no-op
        assert manager.state_of(txn) is TxnState.ABORTED

    def test_abort_after_commit_raises(self):
        manager = TransactionManager()
        txn = manager.open_transaction()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.abort(txn)

    def test_heartbeat_after_abort_raises(self):
        manager = TransactionManager()
        txn = manager.open_transaction()
        manager.abort(txn)
        with pytest.raises(TransactionError):
            manager.heartbeat(txn)


# --------------------------------------------------------------------------- #
# satellite 2: FIFO-fair lock queue

class TestLockFairness:
    def test_shared_does_not_jump_queued_exclusive(self):
        locks = LockManager(default_timeout_s=5.0)
        locks.acquire(1, "t", None, LockType.SHARED)
        states = {}
        order = []
        order_lock = threading.Lock()

        def exclusive():
            locks.acquire(2, "t", None, LockType.EXCLUSIVE)
            with order_lock:
                order.append("exclusive")
            locks.release_all(2)

        def shared():
            # issued after the exclusive queued; must wait behind it
            locks.acquire(3, "t", None, LockType.SHARED)
            with order_lock:
                order.append("shared")
            locks.release_all(3)

        writer = threading.Thread(target=exclusive)
        writer.start()
        deadline = 50
        while not locks.waiting() and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert ("t", None, LockType.EXCLUSIVE, 2) in locks.waiting()
        reader = threading.Thread(target=shared)
        reader.start()
        threading.Event().wait(0.05)
        states["reader_blocked"] = reader.is_alive()
        locks.release_all(1)          # unblocks the exclusive first
        writer.join(timeout=5)
        reader.join(timeout=5)
        assert states["reader_blocked"]
        assert order == ["exclusive", "shared"]

    def test_timed_out_exclusive_unblocks_shared(self):
        locks = LockManager()
        locks.acquire(1, "t", None, LockType.SHARED)
        from repro.errors import LockTimeoutError
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "t", None, LockType.EXCLUSIVE,
                          timeout_s=0.05)
        # the dead waiter must not bar later shared requests
        locks.acquire(3, "t", None, LockType.SHARED, timeout_s=0.5)
        assert len(locks.locks_held()) == 2

    def test_same_txn_not_self_blocked(self):
        locks = LockManager()
        locks.acquire(1, "t", None, LockType.EXCLUSIVE)
        locks.acquire(1, "t", None, LockType.SHARED, timeout_s=0.5)
        assert len(locks.locks_held(1)) == 2


# --------------------------------------------------------------------------- #
# satellite 3: results-cache pending takeover

class TestResultsCachePending:
    def test_waiter_takes_over_dead_computer(self):
        cache = QueryResultsCache(pending_timeout_s=0.1)
        entry, must = cache.lookup("q", {})
        assert must
        # the elected computer "dies": neither publish nor abandon.
        # a second lookup waits out the lease, then takes over.
        taken, must2 = cache.lookup("q", {})
        assert must2
        assert taken is not entry
        assert cache.stats.pending_takeovers == 1
        assert cache.stats.pending_waits == 1
        # takeover owns a fresh pending entry other callers see
        cache.publish(taken, [(1,)], ["c"], {})
        hit, must3 = cache.lookup("q", {})
        assert not must3 and hit.rows == [(1,)]

    def test_wait_counted_once_per_lookup(self):
        cache = QueryResultsCache(pending_timeout_s=5.0)
        entry, _ = cache.lookup("q", {})
        results = []

        def waiter():
            results.append(cache.lookup("q", {}))

        thread = threading.Thread(target=waiter)
        thread.start()
        threading.Event().wait(0.05)
        # several spurious wakeups must not inflate the episode count
        with cache._lock:
            cache._lock.notify_all()
        threading.Event().wait(0.05)
        cache.publish(entry, [(7,)], ["c"], {})
        thread.join(timeout=5)
        hit, must = results[0]
        assert not must and hit.rows == [(7,)]
        assert cache.stats.pending_waits == 1
        assert cache.stats.pending_takeovers == 0

    def test_wait_disabled_skips_pending(self):
        cache = QueryResultsCache(wait_for_pending=False)
        cache.lookup("q", {})
        _, must = cache.lookup("q", {})
        assert must
        assert cache.stats.pending_waits == 0
