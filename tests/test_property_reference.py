"""Property-based end-to-end correctness: the whole pipeline (parser →

analyzer → optimizer → DAG runtime) against a naive Python reference
implementation over the same randomly generated rows.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import HiveConf


def make_session(rows):
    server = repro.HiveServer2(HiveConf.v3_profile())
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute("CREATE TABLE r (a INT, g INT, x DOUBLE)")
    if rows:
        values = ", ".join(
            f"({a}, {g}, {x!r})" if x is not None else f"({a}, {g}, NULL)"
            for a, g, x in rows)
        session.execute(f"INSERT INTO r VALUES {values}")
    return session


row_strategy = st.tuples(
    st.integers(-20, 20),
    st.integers(0, 4),
    st.one_of(st.none(),
              st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-100, max_value=100)))


@st.composite
def table_and_threshold(draw):
    rows = draw(st.lists(row_strategy, min_size=0, max_size=40))
    threshold = draw(st.integers(-25, 25))
    return rows, threshold


class TestAgainstReference:
    @given(table_and_threshold())
    @settings(max_examples=20, deadline=None)
    def test_filtered_aggregation(self, case):
        rows, threshold = case
        session = make_session(rows)
        result = session.execute(
            f"SELECT g, COUNT(*), COUNT(x), SUM(a) FROM r "
            f"WHERE a > {threshold} GROUP BY g ORDER BY g")
        expected = {}
        for a, g, x in rows:
            if a > threshold:
                count, non_null, total = expected.get(g, (0, 0, 0))
                expected[g] = (count + 1,
                               non_null + (x is not None), total + a)
        assert result.rows == [
            (g, c, nn, s) for g, (c, nn, s) in sorted(expected.items())]

    @given(st.lists(row_strategy, min_size=0, max_size=40),
           st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_topn_matches_sorted(self, rows, limit):
        session = make_session(rows)
        result = session.execute(
            f"SELECT a, g FROM r ORDER BY a DESC, g LIMIT {limit}")
        expected = sorted(((a, g) for a, g, _ in rows),
                          key=lambda t: (-t[0], t[1]))[:limit]
        assert result.rows == expected

    @given(st.lists(row_strategy, min_size=0, max_size=30),
           st.lists(row_strategy, min_size=0, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_join_matches_nested_loops(self, left_rows, right_rows):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect()
        session.conf.results_cache_enabled = False
        session.execute("CREATE TABLE l (a INT, g INT, x DOUBLE)")
        session.execute("CREATE TABLE rr (a INT, g INT, x DOUBLE)")
        for name, rows in (("l", left_rows), ("rr", right_rows)):
            if rows:
                values = ", ".join(
                    f"({a}, {g}, 0.0)" for a, g, _ in rows)
                session.execute(f"INSERT INTO {name} VALUES {values}")
        result = session.execute(
            "SELECT l.a, rr.a FROM l JOIN rr ON l.g = rr.g "
            "ORDER BY 1, 2")
        expected = sorted(
            (la, ra)
            for la, lg, _ in left_rows
            for ra, rg, _ in right_rows if lg == rg)
        assert result.rows == expected

    @given(st.lists(row_strategy, min_size=0, max_size=40))
    @settings(max_examples=15, deadline=None)
    def test_avg_and_sum_nulls(self, rows):
        session = make_session(rows)
        (row,) = session.execute("SELECT SUM(x), AVG(x) FROM r").rows
        values = [x for _, _, x in rows if x is not None]
        if not values:
            assert row == (None, None)
        else:
            assert row[0] == pytest.approx(sum(values), rel=1e-9)
            assert row[1] == pytest.approx(sum(values) / len(values),
                                           rel=1e-9)

    @given(st.lists(row_strategy, min_size=0, max_size=40),
           st.integers(-5, 5))
    @settings(max_examples=15, deadline=None)
    def test_delete_then_count(self, rows, pivot):
        session = make_session(rows)
        deleted = session.execute(
            f"DELETE FROM r WHERE g = {abs(pivot) % 5}")
        expected_deleted = sum(1 for _, g, _ in rows
                               if g == abs(pivot) % 5)
        assert deleted.rows_affected == expected_deleted
        (count,) = session.execute("SELECT COUNT(*) FROM r").rows[0]
        assert count == len(rows) - expected_deleted

    @given(st.lists(row_strategy, min_size=1, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_distinct_matches_set(self, rows):
        session = make_session(rows)
        result = session.execute("SELECT DISTINCT g FROM r ORDER BY g")
        assert result.rows == [(g,) for g in
                               sorted({g for _, g, _ in rows})]
