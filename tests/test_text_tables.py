"""STORED AS TEXTFILE tables: real delimited bytes on disk, full query

path, and the ACID-requires-ORC guard.
"""

import datetime

import pytest

import repro
from repro.errors import AnalysisError


@pytest.fixture
def session():
    s = repro.connect()
    s.conf.results_cache_enabled = False
    return s


def test_text_table_round_trip(session):
    session.execute("CREATE TABLE tt (a INT, b STRING, d DATE) "
                    "STORED AS TEXTFILE")
    table = session.server.hms.get_table("tt")
    assert table.file_format == "text"
    assert not table.is_acid
    session.execute("INSERT INTO tt VALUES "
                    "(1, 'x', DATE '2020-01-01'), (2, NULL, NULL)")
    rows = session.execute("SELECT a, b, d FROM tt ORDER BY a").rows
    assert rows == [(1, "x", datetime.date(2020, 1, 1)),
                    (2, None, None)]


def test_bytes_on_disk_are_delimited_text(session):
    session.execute("CREATE TABLE tt (a INT, b STRING) "
                    "STORED AS TEXTFILE")
    session.execute("INSERT INTO tt VALUES (7, 'seven')")
    table = session.server.hms.get_table("tt")
    (status,) = session.server.fs.list_files(table.location)
    assert session.server.fs.read(status.path) == b"7\x01seven\n"


def test_text_queries_full_pipeline(session):
    session.execute("CREATE TABLE tt (g INT, v DOUBLE) "
                    "STORED AS TEXTFILE")
    values = ", ".join(f"({i % 3}, {float(i)})" for i in range(30))
    session.execute(f"INSERT INTO tt VALUES {values}")
    rows = session.execute("SELECT g, SUM(v) FROM tt WHERE v >= 10 "
                           "GROUP BY g ORDER BY g").rows
    expected = {}
    for i in range(30):
        if i >= 10:
            expected[i % 3] = expected.get(i % 3, 0.0) + float(i)
    assert rows == sorted(expected.items())


def test_text_partitioned(session):
    session.execute("CREATE TABLE tp (v INT) PARTITIONED BY (ds INT) "
                    "STORED AS TEXTFILE")
    session.execute("INSERT INTO tp VALUES (1, 10), (2, 20)")
    assert session.execute(
        "SELECT v FROM tp WHERE ds = 20").rows == [(2,)]


def test_transactional_text_rejected(session):
    with pytest.raises(AnalysisError, match="ORC"):
        session.execute("CREATE TABLE bad (a INT) STORED AS TEXTFILE "
                        "TBLPROPERTIES ('transactional'='true')")


def test_text_join_with_orc(session):
    session.execute("CREATE TABLE t1 (k INT, s STRING) STORED AS TEXTFILE")
    session.execute("CREATE TABLE t2 (k INT, n DOUBLE)")
    session.execute("INSERT INTO t1 VALUES (1, 'one'), (2, 'two')")
    session.execute("INSERT INTO t2 VALUES (1, 0.5), (2, 0.9)")
    rows = session.execute(
        "SELECT s, n FROM t1, t2 WHERE t1.k = t2.k ORDER BY s").rows
    assert rows == [("one", 0.5), ("two", 0.9)]
