"""Optimizer equivalence fuzzing.

Generates random SPJA-ish queries and checks that the fully optimized
plan (pushdown, pruning, reordering, semijoin reduction, shared work)
returns exactly the rows of the unoptimized plan.  This guards the whole
rule set against semantic regressions at once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rows import Column, Schema
from repro.common.types import DOUBLE, INT, STRING
from repro.common.vector import VectorBatch
from repro.config import HiveConf
from repro.exec.operators import ExecutionContext, execute
from repro.fs import SimFileSystem
from repro.metastore.hms import HiveMetastore
from repro.metastore.stats import TableStatistics
from repro.optimizer import Optimizer
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_query

FACT = Schema([Column("k", INT), Column("d", INT), Column("amt", DOUBLE),
               Column("tag", STRING)])
DIM = Schema([Column("d", INT), Column("cat", STRING),
              Column("rank", INT)])

TAGS = ["aa", "bb", "cc"]
CATS = ["x", "y", "z", "w"]


def build_env(seed: int):
    import random
    rng = random.Random(seed)
    fs = SimFileSystem()
    hms = HiveMetastore(fs)
    fact = hms.create_table("default", "fact", FACT)
    dim = hms.create_table("default", "dim", DIM)
    fact_rows = [(rng.randint(0, 40), rng.randint(0, 7),
                  round(rng.uniform(-10, 60), 2), rng.choice(TAGS))
                 for _ in range(250)]
    dim_rows = [(i, CATS[i % 4], i * 3) for i in range(8)]
    hms.set_statistics(fact, TableStatistics.from_rows(FACT, fact_rows))
    hms.set_statistics(dim, TableStatistics.from_rows(DIM, dim_rows))
    data = {"default.fact": VectorBatch.from_rows(FACT, fact_rows),
            "default.dim": VectorBatch.from_rows(DIM, dim_rows)}

    def scan_executor(node):
        batch = data[node.table_name]
        names = [c.name for c in node.schema]
        idx = [batch.schema.index_of(n) for n in names]
        return batch.project(idx, batch.schema.select(names))

    return hms, scan_executor


def _canonical(rows):
    """Sort rows on a float-tolerant key (summation order may differ

    between plans, and float addition is not associative)."""
    def key(row):
        parts = []
        for value in row:
            if value is None:
                parts.append((1, ""))
            elif isinstance(value, float):
                parts.append((0, repr(round(value, 6))))
            else:
                parts.append((0, repr(value)))
        return tuple(parts)
    return sorted(rows, key=key)


def assert_rows_equal(left, right, context=""):
    left, right = _canonical(left), _canonical(right)
    assert len(left) == len(right), context
    for l, r in zip(left, right):
        assert len(l) == len(r), context
        for a, b in zip(l, r):
            if isinstance(a, float) and isinstance(b, float):
                assert a == pytest.approx(b, rel=1e-9, abs=1e-9), context
            else:
                assert a == b, context


# query-generation strategies -------------------------------------------------- #

predicate = st.sampled_from([
    "fact.k > {n}", "fact.k <= {n}", "amt > {n}", "amt < {n}",
    "tag = '{tag}'", "tag <> '{tag}'", "cat = '{cat}'",
    "cat IN ('x', 'y')", "rank >= {n}", "fact.d <> {small}",
    "fact.k BETWEEN {small} AND {n}", "tag LIKE '%a'",
])


@st.composite
def random_query(draw):
    n = draw(st.integers(0, 40))
    small = draw(st.integers(0, 7))
    tag = draw(st.sampled_from(TAGS))
    cat = draw(st.sampled_from(CATS))
    num_predicates = draw(st.integers(0, 3))
    conjuncts = ["fact.d = dim.d"]
    for _ in range(num_predicates):
        template = draw(predicate)
        conjuncts.append(template.format(n=n, small=small, tag=tag,
                                         cat=cat))
    where = " AND ".join(conjuncts)
    shape = draw(st.sampled_from(["agg_by_cat", "agg_by_tag_cat",
                                  "global_agg", "plain", "topn"]))
    if shape == "agg_by_cat":
        sql = (f"SELECT cat, COUNT(*) c, SUM(amt) s FROM fact, dim "
               f"WHERE {where} GROUP BY cat ORDER BY cat")
    elif shape == "agg_by_tag_cat":
        sql = (f"SELECT tag, cat, MIN(amt), MAX(rank) FROM fact, dim "
               f"WHERE {where} GROUP BY tag, cat ORDER BY tag, cat")
    elif shape == "global_agg":
        sql = (f"SELECT COUNT(*), SUM(amt), AVG(rank) FROM fact, dim "
               f"WHERE {where}")
    elif shape == "topn":
        sql = (f"SELECT fact.k, amt FROM fact, dim WHERE {where} "
               f"ORDER BY amt DESC, fact.k LIMIT 7")
    else:
        sql = (f"SELECT fact.k, cat, amt FROM fact, dim WHERE {where} "
               f"ORDER BY fact.k, cat, amt")
    return sql


class TestOptimizerEquivalence:
    @given(random_query(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_optimized_matches_unoptimized(self, sql, seed):
        hms, scan_executor = build_env(seed)
        analyzer = Analyzer(hms, HiveConf())
        plan = analyzer.analyze_query(parse_query(sql))
        raw = execute(plan,
                      ExecutionContext(scan_executor=scan_executor))
        optimized = Optimizer(hms, HiveConf()).optimize(plan)
        # semijoin reducers need the runtime's scan-side filter
        # application (covered by the driver-level tests); compare the
        # purely relational rules here
        if optimized.semijoin_reducers:
            optimized = Optimizer(hms, HiveConf(
                semijoin_reduction=False)).optimize(plan)
        cooked = execute(optimized.root,
                         ExecutionContext(scan_executor=scan_executor))
        assert_rows_equal(raw.to_rows(), cooked.to_rows(), sql)

    @given(random_query())
    @settings(max_examples=15, deadline=None)
    def test_legacy_profile_equivalence(self, sql):
        """The rule-based-only profile must also preserve semantics."""
        hms, scan_executor = build_env(1)
        analyzer = Analyzer(hms, HiveConf())
        plan = analyzer.analyze_query(parse_query(sql))
        raw = execute(plan,
                      ExecutionContext(scan_executor=scan_executor))
        legacy = Optimizer(hms, HiveConf.legacy_profile()).optimize(plan)
        cooked = execute(legacy.root,
                         ExecutionContext(scan_executor=scan_executor))
        assert_rows_equal(raw.to_rows(), cooked.to_rows(), sql)
