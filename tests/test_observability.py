"""The repro.obs subsystem: metrics registry, tracing, query log,

EXPLAIN ANALYZE, and the SQL-queryable ``sys`` catalog."""

import json

import pytest

import repro
from repro.config import HiveConf
from repro.errors import HiveError, WorkloadManagementError
from repro.llap.workload import (Pool, QueryAdmission, ResourcePlan,
                                 Trigger, TriggerAction, WorkloadManager)
from repro.obs import MetricsRegistry, Observability, QueryTrace
from repro.obs.export import BenchObsCollector


# --------------------------------------------------------------------------- #
# metrics registry

class TestMetricsRegistry:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        reg.counter("scan.rows", table="t").inc(10)
        reg.counter("scan.rows", table="t").inc(5)
        reg.counter("scan.rows", table="u").inc(3)
        assert reg.value("scan.rows", table="t") == 15
        assert reg.total("scan.rows") == 18
        assert reg.total("scan.rows", table="u") == 3

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(HiveError):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(7)
        reg.gauge("g").inc(-2)
        assert reg.value("g") == 5

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in [0.002, 0.002, 0.002, 0.002, 0.002, 0.002, 0.002,
                  0.002, 0.002, 10.0]:
            h.observe(v)
        assert h.count == 10
        assert h.mean == pytest.approx(1.0018, rel=1e-3)
        assert h.percentile(50) < h.percentile(95)
        assert h.min == 0.002 and h.max == 10.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(HiveError):
            reg.gauge("m")

    def test_missing_series_is_none(self):
        reg = MetricsRegistry()
        assert reg.value("nope") is None

    def test_callback_gauge_reads_live_value(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        reg.register_callback("live", lambda: state["n"], part="x")
        assert reg.value("live", part="x") == 1
        state["n"] = 42
        assert reg.value("live", part="x") == 42

    def test_drop_removes_one_series(self):
        reg = MetricsRegistry()
        reg.gauge("wm.query.rt", query="1").set(5)
        reg.gauge("wm.query.rt", query="2").set(6)
        reg.drop("wm.query.rt", query="1")
        assert reg.value("wm.query.rt", query="1") is None
        assert reg.value("wm.query.rt", query="2") == 6

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1").inc(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["c"][0]["value"] == 2
        assert snap["c"][0]["labels"] == {"a": "1"}
        assert snap["h"][0]["count"] == 1
        json.loads(reg.to_json())  # round-trips


# --------------------------------------------------------------------------- #
# tracing

class TestQueryTrace:
    def test_nested_spans(self):
        trace = QueryTrace(1, "SELECT 1")
        with trace.span("parse"):
            pass
        with trace.span("execute") as ex:
            trace.add("scan t", virtual_s=0.5, rows=10)
            ex.virtual_s = 2.0
        trace.finish()
        assert trace.find("parse") is not None
        scan = trace.find("scan t")
        assert scan.virtual_s == 0.5 and scan.attrs["rows"] == 10
        assert scan in trace.find("execute").children
        assert trace.root.wall_s > 0
        assert "scan t" in trace.render()

    def test_to_dict_shape(self):
        trace = QueryTrace(3, "Q")
        with trace.span("a"):
            pass
        d = trace.to_dict()
        assert d["query_id"] == 3
        assert d["root"]["children"][0]["name"] == "a"


# --------------------------------------------------------------------------- #
# the full stack: query log, sys tables, EXPLAIN ANALYZE

class TestQueryLogEndToEnd:
    def test_one_row_per_executed_query(self, loaded_session):
        session = loaded_session
        before = len(session.server.obs.query_log)
        session.execute("SELECT COUNT(*) FROM t")
        session.execute("SELECT a FROM t WHERE a > 2")
        result = session.execute("SELECT * FROM sys.query_log")
        # every statement so far is logged, except the sys query itself
        # (its entry lands after its own scan)
        assert len(result.rows) == before + 2
        names = result.column_names
        by_name = [dict(zip(names, row)) for row in result.rows]
        last = by_name[-1]
        assert last["statement"] == "SELECT a FROM t WHERE a > 2"
        assert last["operation"] == "select"
        assert last["status"] == "ok"
        assert last["rows_produced"] == 3
        assert last["total_s"] > 0

    def test_failed_statement_logged_with_error(self, session):
        with pytest.raises(HiveError):
            session.execute("SELECT * FROM missing_table")
        entry = session.server.obs.query_log.last()
        assert entry.status == "error"
        assert "missing_table" in entry.error
        rows = session.execute(
            "SELECT status, COUNT(*) FROM sys.query_log "
            "GROUP BY status").rows
        assert ("error", 1) in rows

    def test_cache_hit_flagged(self, loaded_session):
        loaded_session.execute("SELECT COUNT(*) FROM t")
        loaded_session.execute("SELECT COUNT(*) FROM t")
        entry = loaded_session.server.obs.query_log.last()
        assert entry.from_cache
        reg = loaded_session.server.obs.registry
        assert reg.value("queries.results_cache_hits") == 1

    def test_result_carries_query_id_and_trace(self, loaded_session):
        result = loaded_session.execute("SELECT a FROM t")
        assert result.query_id > 0
        trace = result.trace
        for name in ("parse", "analyze", "optimize", "execute"):
            assert trace.find(name) is not None, name
        scan = trace.find("scan default.t")
        assert scan is not None
        assert scan.attrs["rows"] == 5
        assert trace.find("execute").virtual_s == pytest.approx(
            result.metrics.total_s)


class TestSysTables:
    def test_sys_database_is_lazy(self, session):
        assert "sys" not in session.hms.list_databases()
        session.execute("SELECT * FROM sys.query_log")
        assert "sys" in session.hms.list_databases()

    def test_cache_stats_components(self, loaded_session):
        loaded_session.execute("SELECT SUM(a) FROM t")
        rows = loaded_session.execute(
            "SELECT component, metric, value FROM sys.cache_stats").rows
        components = {r[0] for r in rows}
        assert components == {"llap", "results", "plan"}
        metrics = {r[1] for r in rows if r[0] == "llap"}
        assert {"hits", "misses", "evictions"} <= metrics

    def test_metrics_table_reflects_registry(self, loaded_session):
        loaded_session.execute("SELECT * FROM t")
        rows = loaded_session.execute(
            "SELECT name, labels, value FROM sys.metrics "
            "WHERE name = 'scan.rows'").rows
        assert rows and rows[0][1] == "table=default.t"
        assert rows[0][2] == 5.0

    def test_pools_table(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect()
        for sql in [
            "CREATE RESOURCE PLAN daytime",
            "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
            "query_parallelism=5",
            "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
            "query_parallelism=20",
            "ALTER PLAN daytime SET DEFAULT POOL = etl",
            "ALTER RESOURCE PLAN daytime ENABLE ACTIVATE",
        ]:
            session.execute(sql)
        result = session.execute("SELECT * FROM sys.pools")
        pools = {row[result.column_names.index("pool")]:
                 dict(zip(result.column_names, row)) for row in result.rows}
        assert pools["bi"]["alloc_fraction"] == 0.8
        assert pools["bi"]["is_default"] is False
        assert pools["etl"]["alloc_fraction"] == 0.2
        assert pools["etl"]["is_default"] is True

    def test_compactions_table(self, session):
        session.execute("CREATE TABLE acid_t (a INT)")
        for i in range(12):
            session.execute(f"INSERT INTO acid_t VALUES ({i})")
        session.server.run_compaction()
        rows = session.execute(
            "SELECT table_name, type, state, merged_rows "
            "FROM sys.compactions").rows
        assert rows
        assert rows[0][0] == "default.acid_t"
        assert rows[0][3] > 0    # the worker reported what it merged

    def test_sys_queries_not_results_cached(self, session):
        session.execute("SELECT COUNT(*) FROM sys.query_log")
        again = session.execute("SELECT COUNT(*) FROM sys.query_log")
        assert not again.from_cache
        # and the counts differ: each run logs the previous statement
        assert again.rows[0][0] > 0

    def test_sys_tables_read_only(self, session):
        session.execute("SELECT * FROM sys.query_log")
        with pytest.raises(HiveError):
            session.execute("INSERT INTO sys.query_log VALUES (1)")


class TestExplainAnalyze:
    def test_annotated_plan(self, loaded_session):
        result = loaded_session.execute(
            "EXPLAIN ANALYZE SELECT b, COUNT(*) FROM t "
            "WHERE a > 1 GROUP BY b")
        assert result.operation == "explain_analyze"
        text = "\n".join(r[0] for r in result.rows)
        # per-operator row counts on the actual executed plan
        assert "rows=" in text
        assert "TableScan" in text
        # the virtual-time and io breakdowns
        assert "-- time: total=" in text
        assert "-- io: disk=" in text
        assert "-- vertex" in text
        # the query really ran: its metrics came back too
        assert result.metrics is not None and result.metrics.total_s > 0

    def test_scan_annotations_show_pruning(self, session):
        session.execute("CREATE TABLE p (a INT, v STRING) "
                        "PARTITIONED BY (d STRING)")
        session.execute(
            "INSERT INTO p PARTITION (d='x') VALUES (1, 'a'), (2, 'b')")
        session.execute(
            "INSERT INTO p PARTITION (d='y') VALUES (3, 'c')")
        result = session.execute(
            "EXPLAIN ANALYZE SELECT * FROM p WHERE d = 'x'")
        text = "\n".join(r[0] for r in result.rows)
        assert "partitions=1/2" in text

    def test_plain_explain_does_not_execute(self, loaded_session):
        before = len(loaded_session.server.obs.query_log)
        result = loaded_session.execute("EXPLAIN SELECT * FROM t")
        assert result.operation == "explain"
        text = "\n".join(r[0] for r in result.rows)
        assert "rows=" not in text       # nothing ran, nothing measured
        assert len(loaded_session.server.obs.query_log) == before + 1

    def test_explain_analyze_unparse_roundtrip(self, conf):
        from repro.sql.parser import parse_statement
        stmt = parse_statement("EXPLAIN ANALYZE SELECT 1", conf)
        assert stmt.analyze
        assert stmt.unparse().startswith("EXPLAIN ANALYZE")
        # ANALYZE TABLE is still its own statement
        table_stmt = parse_statement("EXPLAIN ANALYZE TABLE t "
                                     "COMPUTE STATISTICS", conf)
        assert not table_stmt.analyze


# --------------------------------------------------------------------------- #
# workload-manager triggers read from the registry

class TestTriggersViaRegistry:
    def make_wm(self, registry, action=TriggerAction.MOVE):
        plan = ResourcePlan("daytime")
        plan.add_pool(Pool("bi", 0.8, 5))
        plan.add_pool(Pool("etl", 0.2, 20))
        plan.default_pool = "etl"
        plan.enabled = True
        plan.pools["bi"].triggers.append(
            Trigger("downgrade", "total_runtime", 3.0, action, "etl"))
        return WorkloadManager(plan, registry=registry)

    def test_move_via_registry(self):
        reg = MetricsRegistry()
        wm = self.make_wm(reg)
        reg.gauge("wm.query.total_runtime", query="7").set(5.0)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers_from_registry(reg, admission, 7)
        assert admission.moved_to == "etl"
        assert reg.value("wm.trigger.moves", pool="bi") == 1

    def test_missing_series_means_no_fire(self):
        reg = MetricsRegistry()
        wm = self.make_wm(reg)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers_from_registry(reg, admission, 99)
        assert admission.moved_to is None

    def test_kill_via_registry_counted(self):
        reg = MetricsRegistry()
        wm = self.make_wm(reg, TriggerAction.KILL)
        reg.gauge("wm.query.total_runtime", query="7").set(9.0)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        with pytest.raises(WorkloadManagementError):
            wm.check_triggers_from_registry(reg, admission, 7)
        assert reg.value("wm.trigger.kills", pool="bi") == 1

    def test_end_to_end_scratch_series_dropped(self):
        """The runner publishes wm.query.* gauges, the WM reads them from

        the registry, and the scratch series are dropped afterwards."""
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect(application="slowapp")
        for sql in [
            "CREATE RESOURCE PLAN prod",
            "CREATE POOL prod.fast WITH alloc_fraction=0.9, "
            "query_parallelism=4",
            "CREATE POOL prod.slow WITH alloc_fraction=0.1, "
            "query_parallelism=4",
            "CREATE RULE demote IN prod WHEN total_runtime > 0 "
            "THEN MOVE slow",
            "ADD RULE demote TO fast",
            "CREATE APPLICATION MAPPING slowapp IN prod TO fast",
            "ALTER RESOURCE PLAN prod ENABLE ACTIVATE",
        ]:
            session.execute(sql)
        session.execute("CREATE TABLE w (x INT)")
        session.execute("INSERT INTO w VALUES (1)")
        result = session.execute("SELECT COUNT(*) FROM w")
        assert result.metrics.moved_to_pool == "slow"
        reg = server.obs.registry
        assert reg.value("wm.trigger.moves", pool="fast") == 1
        # per-query scratch gauges must not accumulate
        assert reg.total("wm.query.total_runtime") == 0
        assert reg.total("wm.query.rows_produced") == 0


# --------------------------------------------------------------------------- #
# absorption of the pre-existing stats fragments + runtime counters

class TestRegistryAbsorption:
    def test_llap_cache_stats_mirrored(self, conf):
        conf.llap_cache_capacity_bytes = 1 << 20
        server = repro.HiveServer2(conf)
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("SET hive.query.results.cache.enabled=false")
        session.execute("SELECT * FROM t")
        session.execute("SELECT * FROM t")
        reg = server.obs.registry
        assert reg.value("cache.hits", component="llap") == \
            server.llap_cache.stats.hits
        assert reg.value("cache.used_bytes", component="llap") == \
            server.llap_cache.used_bytes

    def test_runtime_counters_published(self, loaded_session):
        loaded_session.execute("SELECT * FROM t")
        reg = loaded_session.server.obs.registry
        assert reg.value("runtime.queries") >= 1
        assert reg.value("runtime.rows_produced") >= 5
        assert reg.value("scan.rows", table="default.t") == 5

    def test_query_latency_histogram(self, loaded_session):
        loaded_session.execute("SELECT COUNT(*) FROM t")
        reg = loaded_session.server.obs.registry
        hist = reg.histogram("query.latency_s", pool="unmanaged")
        assert hist.count >= 1
        assert hist.sum > 0

    def test_federation_counters(self, conf):
        from repro.federation.jdbc import JdbcStorageHandler
        server = repro.HiveServer2(conf)
        server.register_storage_handler("jdbc", JdbcStorageHandler())
        session = server.connect()
        session.execute(
            "CREATE EXTERNAL TABLE j (a INT, b STRING) STORED BY "
            "'org.apache.hive.storage.jdbc.JdbcStorageHandler'")
        session.execute("INSERT INTO j VALUES (1, 'x'), (2, 'y')")
        session.execute("SELECT * FROM j")
        reg = server.obs.registry
        assert reg.total("federation.calls", engine="jdbc") >= 1
        assert reg.total("federation.rows", engine="jdbc") >= 2

    def test_snapshot_export(self, loaded_session):
        loaded_session.execute("SELECT * FROM t")
        payload = json.loads(loaded_session.server.obs.to_json())
        assert payload["queries"]["logged"] >= 1
        assert "scan.rows" in payload["metrics"]


# --------------------------------------------------------------------------- #
# bench export

class TestBenchObsExport:
    def test_collector_summary_and_write(self, tmp_path):
        collector = BenchObsCollector()
        collector.record("warm", "q1", seconds=1.5, rows=10,
                         breakdown={"io_s": 0.5})
        collector.record("warm", "q2", seconds=None, error="Boom")
        out = tmp_path / "BENCH_obs.json"
        payload = collector.write(str(out))
        assert payload["summary"]["warm"]["queries"] == 2
        assert payload["summary"]["warm"]["failed"] == 1
        assert payload["summary"]["warm"]["total_s"] == 1.5
        reread = json.loads(out.read_text())
        assert reread["records"][0]["breakdown"]["io_s"] == 0.5

    def test_harness_feeds_collector(self, loaded_session):
        from repro.bench.harness import run_query_set
        from repro.obs.export import BENCH_COLLECTOR
        BENCH_COLLECTOR.clear()
        run = run_query_set(loaded_session,
                            [("q1", "SELECT COUNT(*) FROM t"),
                             ("bad", "SELECT * FROM nope")],
                            label="smoke", warm_runs=0)
        records = BENCH_COLLECTOR.records()
        BENCH_COLLECTOR.clear()
        assert len(records) == 2
        ok = next(r for r in records if r["query"] == "q1")
        assert ok["seconds"] == run.timing("q1").seconds
        assert ok["breakdown"]["rows_produced"] == 1
        bad = next(r for r in records if r["query"] == "bad")
        assert bad["seconds"] is None and bad["error"]


# --------------------------------------------------------------------------- #
# Chrome trace-event export (chrome://tracing / Perfetto)

class TestChromeTrace:
    def test_empty_export(self):
        doc = json.loads(Observability().to_chrome_trace())
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_events_cover_pipeline_spans(self, loaded_session):
        loaded_session.execute("SELECT a FROM t WHERE a > 1")
        doc = json.loads(loaded_session.server.obs.to_chrome_trace())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"query", "parse", "optimize", "execute"} <= names
        assert any(n.startswith("optimize.") for n in names)
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "virtual_ms" in event["args"]

    def test_one_track_per_query_with_metadata(self, loaded_session):
        loaded_session.execute("SELECT count(*) FROM t")
        loaded_session.execute("SELECT count(*) FROM u")
        doc = json.loads(loaded_session.server.obs.to_chrome_trace())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        tids = {e["tid"] for e in meta}
        assert len(meta) >= 2 and len(tids) == len(meta)
        for event in meta:
            assert event["args"]["name"].startswith("query ")

    def test_child_spans_start_within_parent(self, loaded_session):
        loaded_session.execute("SELECT a FROM t")
        trace = loaded_session.server.obs.traces[-1]
        optimize = trace.find("optimize")
        for child in optimize.children:
            assert child.start_s >= optimize.start_s

    def test_span_start_offsets_recorded(self):
        trace = QueryTrace(1, "SELECT 1")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        leaf = trace.add("leaf")
        outer, inner = trace.root.children[0], \
            trace.root.children[0].children[0]
        assert inner.start_s >= outer.start_s
        assert leaf.start_s >= inner.start_s


# --------------------------------------------------------------------------- #
# concurrency regressions: these mutations raced before they were moved
# under Observability._lock (found by reprolint RL001)

class TestObservabilityThreadSafety:
    def test_concurrent_bind_cache_registers_everything(self):
        import threading

        class Stats:
            hits = 0

        obs = Observability()
        barrier = threading.Barrier(8)

        def bind(i):
            barrier.wait()
            obs.bind_cache(f"component-{i}", Stats())

        threads = [threading.Thread(target=bind, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(obs.cache_components()) == 8

    def test_concurrent_start_trace_unique_ids(self):
        import threading

        obs = Observability(trace_capacity=512)
        barrier = threading.Barrier(8)
        ids = []
        ids_lock = threading.Lock()

        def go():
            barrier.wait()
            for _ in range(25):
                trace = obs.start_trace("SELECT 1")
                with ids_lock:
                    ids.append(trace.query_id)

        threads = [threading.Thread(target=go) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == len(set(ids)) == 200
        assert len(obs.traces) == 200
