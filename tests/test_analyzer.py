"""Semantic analysis: name resolution, plans, subqueries, gating."""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import BOOLEAN, DATE, DOUBLE, INT, STRING
from repro.config import HiveConf
from repro.errors import AnalysisError, UnsupportedFeatureError
from repro.fs import SimFileSystem
from repro.metastore.hms import HiveMetastore
from repro.plan import relnodes as rel
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_query


@pytest.fixture
def hms():
    store = HiveMetastore(SimFileSystem())
    store.create_table("default", "t", Schema(
        [Column("a", INT), Column("b", STRING), Column("c", DOUBLE),
         Column("d", DATE)]))
    store.create_table("default", "u", Schema(
        [Column("k", INT), Column("x", INT), Column("y", STRING)]))
    store.create_table("default", "p", Schema(
        [Column("v", INT)]), partition_columns=[Column("ds", INT)])
    return store


@pytest.fixture
def analyzer(hms):
    return Analyzer(hms, HiveConf())


def plan_for(analyzer, sql) -> rel.RelNode:
    return analyzer.analyze_query(parse_query(sql))


class TestResolution:
    def test_output_schema(self, analyzer):
        plan = plan_for(analyzer, "SELECT a, b AS name, c * 2 dbl FROM t")
        assert plan.schema.names() == ["a", "name", "dbl"]
        assert plan.schema.types() == [INT, STRING, DOUBLE]

    def test_star_expansion(self, analyzer):
        plan = plan_for(analyzer, "SELECT * FROM t")
        assert plan.schema.names() == ["a", "b", "c", "d"]

    def test_qualified_star(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT u.* FROM t JOIN u ON t.a = u.k")
        assert plan.schema.names() == ["k", "x", "y"]

    def test_partition_columns_visible(self, analyzer):
        plan = plan_for(analyzer, "SELECT ds, v FROM p")
        assert plan.schema.names() == ["ds", "v"]

    def test_unknown_column(self, analyzer):
        with pytest.raises(AnalysisError, match="unknown column"):
            plan_for(analyzer, "SELECT zz FROM t")

    def test_unknown_table(self, analyzer):
        with pytest.raises(Exception):
            plan_for(analyzer, "SELECT 1 FROM missing")

    def test_ambiguous_column(self, analyzer):
        with pytest.raises(AnalysisError, match="ambiguous"):
            plan_for(analyzer,
                     "SELECT a FROM t t1 JOIN t t2 ON t1.a = t2.a")

    def test_alias_scoping(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT t1.a, t2.a FROM t t1, t t2")
        assert len(plan.schema) == 2

    def test_select_without_from(self, analyzer):
        plan = plan_for(analyzer, "SELECT 1 one, 'x' s")
        assert plan.schema.names() == ["one", "s"]


class TestTypes:
    def test_comparison_is_boolean(self, analyzer):
        plan = plan_for(analyzer, "SELECT a > 1 FROM t")
        assert plan.schema[0].dtype == BOOLEAN

    def test_division_is_double(self, analyzer):
        plan = plan_for(analyzer, "SELECT a / 2 FROM t")
        assert plan.schema[0].dtype == DOUBLE

    def test_boolean_required_in_where(self, analyzer):
        with pytest.raises(AnalysisError):
            plan_for(analyzer, "SELECT a FROM t WHERE a + 1")

    def test_join_condition_must_be_boolean(self, analyzer):
        with pytest.raises(AnalysisError):
            plan_for(analyzer, "SELECT 1 FROM t JOIN u ON t.a + u.k")

    def test_string_date_comparison_coerces(self, analyzer):
        plan = plan_for(analyzer, "SELECT a FROM t WHERE d > '2020-01-01'")
        assert isinstance(plan, rel.RelNode)  # no error


class TestAggregation:
    def test_group_by_shape(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b")
        aggregates = [n for n in rel.walk(plan)
                      if isinstance(n, rel.Aggregate)]
        assert len(aggregates) == 1
        assert len(aggregates[0].agg_calls) == 2

    def test_ungrouped_column_rejected(self, analyzer):
        with pytest.raises(AnalysisError, match="neither grouped"):
            plan_for(analyzer, "SELECT a, COUNT(*) FROM t GROUP BY b")

    def test_group_expr_reuse(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT a + 1, COUNT(*) FROM t GROUP BY a + 1")
        assert plan.schema.names()[0] == "_c0"

    def test_positional_group_by(self, analyzer):
        plan = plan_for(analyzer, "SELECT b, COUNT(*) FROM t GROUP BY 1")
        assert plan.schema.names() == ["b", "count"]

    def test_having_without_group(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT SUM(a) FROM t HAVING SUM(a) > 10")
        assert any(isinstance(n, rel.Filter) for n in rel.walk(plan))

    def test_grouping_sets_plan(self, analyzer):
        plan = plan_for(
            analyzer, "SELECT b, d, COUNT(*) FROM t "
            "GROUP BY GROUPING SETS ((b, d), (b), ())")
        aggregate = next(n for n in rel.walk(plan)
                         if isinstance(n, rel.Aggregate))
        assert aggregate.grouping_sets == ((0, 1), (0,), ())

    def test_aggregate_in_where_rejected(self, analyzer):
        with pytest.raises(AnalysisError):
            plan_for(analyzer, "SELECT a FROM t WHERE SUM(a) > 1")


class TestSubqueries:
    def test_in_becomes_semi_join(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT a FROM t WHERE a IN (SELECT k FROM u)")
        joins = [n for n in rel.walk(plan) if isinstance(n, rel.Join)]
        assert joins[0].kind == "semi"

    def test_not_in_becomes_anti_join(self, analyzer):
        plan = plan_for(
            analyzer, "SELECT a FROM t WHERE a NOT IN (SELECT k FROM u)")
        joins = [n for n in rel.walk(plan) if isinstance(n, rel.Join)]
        assert joins[0].kind == "anti"

    def test_correlated_exists(self, analyzer):
        plan = plan_for(
            analyzer,
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.a AND u.x > 5)")
        join = next(n for n in rel.walk(plan) if isinstance(n, rel.Join))
        assert join.kind == "semi"
        assert join.condition is not None

    def test_scalar_subquery_uncorrelated(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT a, (SELECT MAX(x) FROM u) m FROM t")
        join = next(n for n in rel.walk(plan) if isinstance(n, rel.Join))
        assert join.kind == "left"

    def test_scalar_subquery_correlated_groups_inner(self, analyzer):
        plan = plan_for(
            analyzer,
            "SELECT a, (SELECT SUM(x) FROM u WHERE u.k = t.a) s FROM t")
        aggregates = [n for n in rel.walk(plan)
                      if isinstance(n, rel.Aggregate)]
        assert any(len(agg.group_keys) == 1 for agg in aggregates)

    def test_scalar_subquery_must_be_single_column(self, analyzer):
        with pytest.raises(AnalysisError):
            plan_for(analyzer, "SELECT (SELECT k, x FROM u) FROM t")


class TestOrdering:
    def test_order_by_alias(self, analyzer):
        plan = plan_for(analyzer, "SELECT a AS z FROM t ORDER BY z")
        assert isinstance(plan, rel.Sort)

    def test_order_by_position(self, analyzer):
        plan = plan_for(analyzer, "SELECT b, a FROM t ORDER BY 2")
        assert isinstance(plan, rel.Sort)
        assert plan.keys[0].index == 1

    def test_order_by_unselected_projects_away(self, analyzer):
        plan = plan_for(analyzer, "SELECT a FROM t ORDER BY c DESC")
        assert plan.schema.names() == ["a"]

    def test_limit_fuses_into_sort(self, analyzer):
        plan = plan_for(analyzer, "SELECT a FROM t ORDER BY a LIMIT 5")
        sorts = [n for n in rel.walk(plan) if isinstance(n, rel.Sort)]
        assert sorts[0].fetch == 5
        assert not any(isinstance(n, rel.Limit) for n in rel.walk(plan))

    def test_bare_limit(self, analyzer):
        plan = plan_for(analyzer, "SELECT a FROM t LIMIT 3")
        assert isinstance(plan, rel.Limit)


class TestSetOps:
    def test_type_alignment_casts(self, analyzer):
        plan = plan_for(analyzer,
                        "SELECT a FROM t UNION ALL SELECT c FROM t")
        assert plan.schema[0].dtype == DOUBLE

    def test_width_mismatch(self, analyzer):
        with pytest.raises(AnalysisError):
            plan_for(analyzer, "SELECT a, b FROM t UNION SELECT a FROM t")

    def test_union_distinct_adds_aggregate(self, analyzer):
        plan = plan_for(analyzer, "SELECT a FROM t UNION SELECT k FROM u")
        assert isinstance(plan, rel.Aggregate)


class TestLegacyGating:
    @pytest.fixture
    def legacy(self, hms):
        return Analyzer(hms, HiveConf.legacy_profile())

    def test_order_by_unselected_gated(self, legacy):
        with pytest.raises(UnsupportedFeatureError):
            legacy.analyze_query(parse_query("SELECT a FROM t ORDER BY c"))

    def test_nonequi_correlation_gated(self, legacy):
        with pytest.raises(UnsupportedFeatureError):
            legacy.analyze_query(parse_query(
                "SELECT a FROM t WHERE EXISTS "
                "(SELECT 1 FROM u WHERE u.x > t.a)"))

    def test_equi_correlation_allowed(self, legacy):
        legacy.analyze_query(parse_query(
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.a)"))
