"""HMS catalog, partitions, additive statistics, resource-plan storage."""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import DOUBLE, INT, STRING
from repro.errors import CatalogError
from repro.fs import SimFileSystem
from repro.metastore.catalog import TableKind
from repro.metastore.hms import HiveMetastore
from repro.metastore.stats import ColumnStatistics, TableStatistics


@pytest.fixture
def hms():
    return HiveMetastore(SimFileSystem())


@pytest.fixture
def schema():
    return Schema([Column("a", INT), Column("b", STRING),
                   Column("c", DOUBLE)])


class TestDatabases:
    def test_default_exists(self, hms):
        assert "default" in hms.list_databases()

    def test_create_duplicate(self, hms):
        hms.create_database("sales")
        with pytest.raises(CatalogError):
            hms.create_database("sales")
        hms.create_database("sales", if_not_exists=True)  # no raise

    def test_missing(self, hms):
        with pytest.raises(CatalogError):
            hms.get_database("nope")


class TestTables:
    def test_create_and_resolve(self, hms, schema):
        table = hms.create_table("default", "t", schema)
        assert hms.get_table("t") is table
        assert hms.get_table("default.t") is table
        assert table.location == "/warehouse/default/t"
        assert hms.fs.is_dir(table.location)

    def test_duplicate_rejected(self, hms, schema):
        hms.create_table("default", "t", schema)
        with pytest.raises(CatalogError):
            hms.create_table("default", "t", schema)

    def test_drop_purges_data(self, hms, schema):
        table = hms.create_table("default", "t", schema)
        hms.fs.create(f"{table.location}/f", b"data")
        hms.drop_table("t")
        assert not hms.fs.exists(table.location)
        assert not hms.table_exists("t")

    def test_partition_columns_must_not_overlap(self, hms, schema):
        with pytest.raises(CatalogError):
            hms.create_table("default", "t", schema,
                             partition_columns=[Column("a", INT)])

    def test_full_schema_appends_partitions(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        assert table.full_schema().names() == ["a", "b", "c", "ds"]

    def test_events_emitted(self, hms, schema):
        hms.create_table("default", "t", schema)
        hms.drop_table("t")
        kinds = [e.event_type for e in hms.events_since(0)]
        assert kinds == ["CREATE_TABLE", "DROP_TABLE"]


class TestPartitions:
    def test_add_and_layout(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        descriptor = hms.add_partition(table, (5,))
        assert descriptor.location == "/warehouse/default/t/ds=5"
        assert hms.fs.is_dir(descriptor.location)
        assert table.get_partition((5,)) is descriptor

    def test_wrong_arity(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        with pytest.raises(CatalogError):
            hms.add_partition(table, (1, 2))

    def test_duplicate_partition(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        hms.add_partition(table, (1,))
        with pytest.raises(CatalogError):
            hms.add_partition(table, (1,))
        assert hms.get_or_add_partition(table, (1,))

    def test_drop_partition_purges(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        descriptor = hms.add_partition(table, (1,))
        hms.fs.create(f"{descriptor.location}/f", b"x")
        hms.drop_partition(table, (1,))
        assert not hms.fs.exists(descriptor.location)


class TestStatistics:
    def test_column_stats_update(self):
        stats = ColumnStatistics()
        stats.update_all([5, 1, None, 9, 1])
        assert stats.null_count == 1
        assert stats.min_value == 1 and stats.max_value == 9
        assert abs(stats.ndv - 3) <= 1

    def test_additive_merge(self):
        left, right = ColumnStatistics(), ColumnStatistics()
        left.update_all(range(100))
        right.update_all(range(50, 150))
        merged = left.merge(right)
        assert merged.min_value == 0 and merged.max_value == 149
        assert abs(merged.ndv - 150) <= 5

    def test_table_stats_from_rows(self, schema):
        rows = [(1, "x", 1.0), (2, "y", None)]
        stats = TableStatistics.from_rows(schema, rows)
        assert stats.row_count == 2
        assert stats.column("b").ndv >= 2
        assert stats.column("c").null_count == 1

    def test_update_statistics_accumulates(self, hms, schema):
        table = hms.create_table("default", "t", schema)
        hms.update_statistics(table, TableStatistics.from_rows(
            schema, [(1, "a", 1.0)]))
        hms.update_statistics(table, TableStatistics.from_rows(
            schema, [(2, "b", 2.0)]))
        stats = hms.get_statistics(table)
        assert stats.row_count == 2
        assert stats.column("a").max_value == 2

    def test_partition_stats_roll_up(self, hms, schema):
        table = hms.create_table("default", "t", schema,
                                 partition_columns=[Column("ds", INT)])
        hms.add_partition(table, (1,))
        hms.update_statistics(table, TableStatistics.from_rows(
            schema, [(1, "a", 1.0)]), partition=(1,))
        assert hms.get_statistics(table).row_count == 1
        assert hms.get_statistics(table, (1,)).row_count == 1


class TestMaterializedViewRegistry:
    def test_listing_and_freshness(self, hms, schema):
        from repro.metastore.catalog import MaterializedViewInfo
        hms.create_table("default", "src", schema)
        info = MaterializedViewInfo(
            definition_sql="SELECT a FROM src",
            source_tables=("default.src",),
            snapshot_write_ids={"default.src": 0})
        view = hms.create_table("default", "v", Schema([Column("a", INT)]),
                                kind=TableKind.MATERIALIZED_VIEW,
                                mv_info=info)
        assert hms.list_materialized_views() == [view]
        assert hms.is_view_fresh(view)
        # simulate a write to the source
        txn = hms.txn_manager.open_transaction()
        hms.txn_manager.allocate_write_id(txn, "default.src")
        hms.txn_manager.commit(txn)
        assert not hms.is_view_fresh(view)

    def test_staleness_window(self, hms, schema):
        from repro.metastore.catalog import MaterializedViewInfo
        hms.create_table("default", "src", schema)
        info = MaterializedViewInfo(
            definition_sql="SELECT a FROM src",
            source_tables=("default.src",),
            snapshot_write_ids={"default.src": 0},
            rebuild_time=100.0, allowed_staleness_s=60.0)
        view = hms.create_table("default", "v", Schema([Column("a", INT)]),
                                kind=TableKind.MATERIALIZED_VIEW,
                                mv_info=info)
        txn = hms.txn_manager.open_transaction()
        hms.txn_manager.allocate_write_id(txn, "default.src")
        hms.txn_manager.commit(txn)
        assert hms.is_view_fresh(view, now_s=120.0)    # within window
        assert not hms.is_view_fresh(view, now_s=200.0)


class TestResourcePlans:
    def test_save_activate(self, hms):
        hms.save_resource_plan("daytime", object())
        with pytest.raises(CatalogError):
            hms.activate_resource_plan("nighttime")
        hms.activate_resource_plan("daytime")
        assert hms.active_resource_plan() is not None
