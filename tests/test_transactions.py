"""Transaction manager: TxnIds, WriteIds, snapshots, conflicts, locks."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (LockTimeoutError, TransactionError,
                          WriteConflictError)
from repro.metastore.locks import LockManager, LockType
from repro.metastore.txn import (DeltaWriteIdList, TransactionManager,
                                 TxnState, ValidWriteIdList)


@pytest.fixture
def tm():
    return TransactionManager()


class TestTxnLifecycle:
    def test_monotonic_ids(self, tm):
        ids = [tm.open_transaction() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_commit_and_state(self, tm):
        txn = tm.open_transaction()
        tm.commit(txn)
        assert tm.state_of(txn) is TxnState.COMMITTED
        with pytest.raises(TransactionError):
            tm.commit(txn)

    def test_abort(self, tm):
        txn = tm.open_transaction()
        tm.abort(txn)
        assert tm.state_of(txn) is TxnState.ABORTED

    def test_unknown_txn(self, tm):
        with pytest.raises(TransactionError):
            tm.commit(12345)

    def test_min_open(self, tm):
        assert tm.min_open_txn() is None
        first = tm.open_transaction()
        second = tm.open_transaction()
        assert tm.min_open_txn() == first
        tm.commit(first)
        assert tm.min_open_txn() == second


class TestWriteIds:
    def test_per_table_monotonic(self, tm):
        t1 = tm.open_transaction()
        t2 = tm.open_transaction()
        assert tm.allocate_write_id(t1, "db.a") == 1
        assert tm.allocate_write_id(t2, "db.a") == 2
        assert tm.allocate_write_id(t2, "db.b") == 1

    def test_same_txn_same_table_reuses(self, tm):
        txn = tm.open_transaction()
        first = tm.allocate_write_id(txn, "db.a")
        assert tm.allocate_write_id(txn, "db.a") == first

    def test_current_write_id(self, tm):
        assert tm.current_write_id("db.a") == 0
        txn = tm.open_transaction()
        tm.allocate_write_id(txn, "db.a")
        assert tm.current_write_id("db.a") == 1


class TestSnapshots:
    def test_visibility_rules(self, tm):
        committed = tm.open_transaction()
        tm.commit(committed)
        open_txn = tm.open_transaction()
        aborted = tm.open_transaction()
        tm.abort(aborted)
        snapshot = tm.get_snapshot()
        assert snapshot.is_visible(committed)
        assert not snapshot.is_visible(open_txn)
        assert not snapshot.is_visible(aborted)
        # future transactions are invisible
        future = tm.open_transaction()
        tm.commit(future)
        assert not snapshot.is_visible(future)

    def test_valid_write_ids_projection(self, tm):
        t1 = tm.open_transaction()
        w1 = tm.allocate_write_id(t1, "db.t")
        tm.commit(t1)
        t2 = tm.open_transaction()          # stays open
        w2 = tm.allocate_write_id(t2, "db.t")
        t3 = tm.open_transaction()
        w3 = tm.allocate_write_id(t3, "db.t")
        tm.abort(t3)
        valid = tm.valid_write_ids(tm.get_snapshot(), "db.t")
        assert valid.is_valid(w1)
        assert not valid.is_valid(w2)       # open
        assert not valid.is_valid(w3)       # aborted
        assert not valid.is_valid(w3 + 10)  # above high watermark

    def test_range_fully_valid(self, tm):
        for _ in range(3):
            txn = tm.open_transaction()
            tm.allocate_write_id(txn, "db.t")
            tm.commit(txn)
        valid = tm.valid_write_ids(tm.get_snapshot(), "db.t")
        assert valid.range_fully_valid(1, 3)
        assert not valid.range_fully_valid(1, 4)

    def test_delta_write_id_list(self):
        base = ValidWriteIdList("db.t", 10, frozenset({4}))
        delta = DeltaWriteIdList("db.t", 10, frozenset({4}),
                                 min_write_id=5)
        assert base.is_valid(3) and not delta.is_valid(3)
        assert delta.is_valid(6)
        assert not delta.is_valid(4)
        assert not delta.range_fully_valid(6, 7)


class TestConflicts:
    def test_first_commit_wins(self, tm):
        first = tm.open_transaction()
        second = tm.open_transaction()
        tm.record_write_set(first, "db.t", (1,), "update")
        tm.record_write_set(second, "db.t", (1,), "update")
        tm.commit(second)            # second commits first: it wins
        with pytest.raises(WriteConflictError):
            tm.commit(first)
        assert tm.state_of(first) is TxnState.ABORTED

    def test_disjoint_partitions_no_conflict(self, tm):
        first = tm.open_transaction()
        second = tm.open_transaction()
        tm.record_write_set(first, "db.t", (1,), "update")
        tm.record_write_set(second, "db.t", (2,), "update")
        tm.commit(second)
        tm.commit(first)             # no overlap

    def test_inserts_never_conflict(self, tm):
        first = tm.open_transaction()
        second = tm.open_transaction()
        tm.record_write_set(first, "db.t", (), "insert")
        tm.record_write_set(second, "db.t", (), "insert")
        tm.commit(second)
        tm.commit(first)

    def test_earlier_commit_does_not_conflict(self, tm):
        writer = tm.open_transaction()
        tm.record_write_set(writer, "db.t", (), "delete")
        tm.commit(writer)
        later = tm.open_transaction()   # opened after the commit
        tm.record_write_set(later, "db.t", (), "delete")
        tm.commit(later)                # sees the earlier write: fine

    def test_bad_operation_rejected(self, tm):
        txn = tm.open_transaction()
        with pytest.raises(TransactionError):
            tm.record_write_set(txn, "db.t", (), "upsert")

    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans()),
                    min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_winner_per_partition(self, ops):
        """Among concurrent updaters of one partition, exactly one of any

        conflicting pair survives (first committer wins)."""
        tm = TransactionManager()
        txns = []
        for partition, _ in ops:
            txn = tm.open_transaction()
            tm.record_write_set(txn, "db.t", (partition,), "update")
            txns.append((txn, partition))
        outcomes = {}
        for txn, partition in txns:
            try:
                tm.commit(txn)
                outcomes.setdefault(partition, []).append(txn)
            except WriteConflictError:
                pass
        # exactly one winner per partition: whoever committed first
        for partition, winners in outcomes.items():
            assert len(winners) == 1


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager(default_timeout_s=0.1)
        locks.acquire(1, "t", None, LockType.SHARED)
        locks.acquire(2, "t", None, LockType.SHARED)
        assert len(locks.locks_held()) == 2

    def test_exclusive_blocks(self):
        locks = LockManager(default_timeout_s=0.05)
        locks.acquire(1, "t", None, LockType.SHARED)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "t", None, LockType.EXCLUSIVE)

    def test_partition_granularity(self):
        locks = LockManager(default_timeout_s=0.05)
        locks.acquire(1, "t", (1,), LockType.EXCLUSIVE)
        locks.acquire(2, "t", (2,), LockType.EXCLUSIVE)  # disjoint: OK
        with pytest.raises(LockTimeoutError):
            locks.acquire(3, "t", (1,), LockType.SHARED)

    def test_table_lock_covers_partitions(self):
        locks = LockManager(default_timeout_s=0.05)
        locks.acquire(1, "t", None, LockType.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "t", (7,), LockType.SHARED)

    def test_reentrant_within_txn(self):
        locks = LockManager(default_timeout_s=0.05)
        locks.acquire(1, "t", None, LockType.EXCLUSIVE)
        locks.acquire(1, "t", (1,), LockType.SHARED)  # same txn

    def test_release_unblocks_waiter(self):
        locks = LockManager(default_timeout_s=2.0)
        locks.acquire(1, "t", None, LockType.EXCLUSIVE)
        acquired = []

        def waiter():
            locks.acquire(2, "t", None, LockType.SHARED)
            acquired.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        locks.release_all(1)
        thread.join(timeout=2)
        assert acquired == [True]
        locks.release_all(2)
        locks.assert_no_locks()
