"""Type system: conversions, coercion lattice, literal inference."""

import datetime

import numpy as np
import pytest

from repro.common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT, STRING,
                                TIMESTAMP, common_type, decimal,
                                infer_literal_type, type_from_name,
                                varchar)
from repro.errors import AnalysisError


class TestStorageConversion:
    def test_int_roundtrip(self):
        assert INT.to_storage(42) == 42
        assert INT.from_storage(42) == 42

    def test_double_roundtrip(self):
        assert DOUBLE.to_storage(1.5) == 1.5
        assert DOUBLE.from_storage(np.float64(1.5)) == 1.5

    def test_date_stored_as_days(self):
        day = datetime.date(2020, 1, 2)
        stored = DATE.to_storage(day)
        assert stored == (day - datetime.date(1970, 1, 1)).days
        assert DATE.from_storage(stored) == day

    def test_date_from_iso_string(self):
        assert DATE.to_storage("2020-01-02") == DATE.to_storage(
            datetime.date(2020, 1, 2))

    def test_timestamp_millis(self):
        moment = datetime.datetime(2020, 5, 1, 12, 30, 15)
        stored = TIMESTAMP.to_storage(moment)
        assert TIMESTAMP.from_storage(stored) == moment

    def test_null_passthrough(self):
        for dtype in (INT, DOUBLE, STRING, DATE, BOOLEAN):
            assert dtype.to_storage(None) is None
            assert dtype.from_storage(None) is None

    def test_boolean(self):
        assert BOOLEAN.to_storage(1) is True
        assert BOOLEAN.from_storage(np.bool_(False)) is False

    def test_decimal_stored_as_float(self):
        money = decimal(7, 2)
        assert money.to_storage(12) == 12.0
        assert money.numpy_dtype == np.dtype(np.float64)


class TestTypeProperties:
    def test_numeric_classification(self):
        assert INT.is_numeric and DOUBLE.is_numeric
        assert decimal(10, 2).is_numeric
        assert not STRING.is_numeric

    def test_integral(self):
        assert INT.is_integral and BIGINT.is_integral
        assert not DOUBLE.is_integral

    def test_string_classification(self):
        assert STRING.is_string
        assert varchar(20).is_string

    def test_temporal(self):
        assert DATE.is_temporal and TIMESTAMP.is_temporal

    def test_widths_positive(self):
        for dtype in (INT, BIGINT, DOUBLE, STRING, DATE, TIMESTAMP,
                      BOOLEAN):
            assert dtype.width_bytes > 0

    def test_str_rendering(self):
        assert str(decimal(7, 2)) == "DECIMAL(7,2)"
        assert str(varchar(30)) == "VARCHAR(30)"
        assert str(INT) == "INT"


class TestCoercion:
    def test_numeric_widening(self):
        assert common_type(INT, BIGINT) == BIGINT
        assert common_type(BIGINT, DOUBLE) == DOUBLE
        assert common_type(INT, decimal(10, 2)) == DOUBLE

    def test_same_type(self):
        assert common_type(STRING, STRING) == STRING
        assert common_type(DATE, DATE) == DATE

    def test_varchar_absorbed_by_string(self):
        assert common_type(varchar(10), STRING).is_string

    def test_string_date_compat(self):
        assert common_type(STRING, DATE) == DATE
        assert common_type(TIMESTAMP, STRING) == TIMESTAMP

    def test_incompatible_raises(self):
        with pytest.raises(AnalysisError):
            common_type(INT, DATE)
        with pytest.raises(AnalysisError):
            common_type(BOOLEAN, STRING)


class TestNameResolution:
    def test_aliases(self):
        assert type_from_name("integer") == INT
        assert type_from_name("LONG") == BIGINT
        assert type_from_name("float") == DOUBLE
        assert type_from_name("text") == STRING
        assert type_from_name("datetime") == TIMESTAMP

    def test_parameterized(self):
        dec = type_from_name("DECIMAL", 7, 2)
        assert dec.precision == 7 and dec.scale == 2
        vc = type_from_name("VARCHAR", 99)
        assert vc.length == 99

    def test_defaults(self):
        assert type_from_name("DECIMAL").precision == 10
        assert type_from_name("NUMERIC").scale == 0

    def test_unknown_raises(self):
        with pytest.raises(AnalysisError):
            type_from_name("BLOB")


class TestLiteralInference:
    def test_basic(self):
        assert infer_literal_type(True) == BOOLEAN
        assert infer_literal_type(5) == INT
        assert infer_literal_type(2**40) == BIGINT
        assert infer_literal_type(1.5) == DOUBLE
        assert infer_literal_type("x") == STRING
        assert infer_literal_type(datetime.date(2020, 1, 1)) == DATE
        assert infer_literal_type(
            datetime.datetime(2020, 1, 1)) == TIMESTAMP

    def test_bool_before_int(self):
        # bool is a subclass of int; must classify as BOOLEAN
        assert infer_literal_type(False) == BOOLEAN

    def test_none_defaults_to_string(self):
        assert infer_literal_type(None) == STRING
