"""Benchmark substrate: generators produce coherent data, every query

parses/analyzes/executes on the v3 profile, and the harness reports
sensible numbers.
"""

import pytest

import repro
from repro.bench import (SSB_QUERIES, TPCDS_QUERIES, SsbScale, TpcdsScale,
                         create_ssb_warehouse, create_tpcds_warehouse,
                         run_query_set)
from repro.bench.harness import (average_speedup, geometric_mean_speedup,
                                 BenchmarkRun, QueryTiming,
                                 render_comparison)
from repro.bench.ssb import SSB_FLAT_MV_SELECT, generate_ssb_data
from repro.bench.tpcds import generate_tpcds_data, legacy_supported_queries
from repro.config import HiveConf


class TestTpcdsGenerator:
    def test_row_counts_match_scale(self):
        scale = TpcdsScale.tiny()
        data = generate_tpcds_data(scale)
        assert len(data["store_sales"]) == scale.store_sales
        assert len(data["date_dim"]) == scale.days
        assert len(data["item"]) == scale.items

    def test_referential_integrity(self):
        scale = TpcdsScale.tiny()
        data = generate_tpcds_data(scale)
        item_keys = {r[0] for r in data["item"]}
        date_keys = {r[0] for r in data["date_dim"]}
        for row in data["store_sales"]:
            assert row[1] in item_keys          # ss_item_sk
            assert row[11] in date_keys         # partition column
        sale_tickets = {r[5] for r in data["store_sales"]}
        for row in data["store_returns"]:
            assert row[2] in sale_tickets       # returns reference sales

    def test_deterministic(self):
        a = generate_tpcds_data(TpcdsScale.tiny())
        b = generate_tpcds_data(TpcdsScale.tiny())
        assert a == b

    def test_half_of_queries_require_v3(self):
        gated = [q for q in TPCDS_QUERIES if q.requires_v3]
        assert len(gated) >= len(TPCDS_QUERIES) // 3
        assert len(legacy_supported_queries()) + len(gated) == len(
            TPCDS_QUERIES)


class TestSsbGenerator:
    def test_shapes(self):
        scale = SsbScale.tiny()
        data = generate_ssb_data(scale)
        assert len(data["lineorder"]) == scale.lineorders
        assert len(data["ssb_customer"]) == scale.customers
        date_keys = {r[0] for r in data["ssb_date"]}
        for row in data["lineorder"]:
            assert row[4] in date_keys

    def test_thirteen_queries(self):
        assert len(SSB_QUERIES) == 13
        names = [name for name, _ in SSB_QUERIES]
        assert names[0] == "q1.1" and names[-1] == "q4.3"


@pytest.fixture(scope="module")
def tpcds_session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    return create_tpcds_warehouse(server, TpcdsScale.tiny())


class TestWorkloadExecution:
    def test_every_tpcds_query_runs_on_v3(self, tpcds_session):
        run = run_query_set(tpcds_session, TPCDS_QUERIES, "v3",
                            warm_runs=0)
        failures = [t for t in run.timings if not t.succeeded]
        assert failures == []

    def test_legacy_failures_match_annotations(self):
        server = repro.HiveServer2(HiveConf.legacy_profile())
        session = create_tpcds_warehouse(server, TpcdsScale.tiny())
        run = run_query_set(session, TPCDS_QUERIES, "legacy", warm_runs=0)
        by_name = {q.name: q.requires_v3 for q in TPCDS_QUERIES}
        for timing in run.timings:
            assert timing.succeeded == (not by_name[timing.name]), \
                timing.name

    def test_ssb_queries_and_mv(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = create_ssb_warehouse(server, SsbScale.tiny())
        session.execute(
            f"CREATE MATERIALIZED VIEW ssb_flat AS {SSB_FLAT_MV_SELECT}")
        run = run_query_set(session, SSB_QUERIES, "ssb", warm_runs=0)
        assert all(t.succeeded for t in run.timings)
        # every query was answered from the flat view
        session.conf.results_cache_enabled = False
        for name, sql in SSB_QUERIES:
            result = session.execute(sql)
            assert result.views_used == ["default.ssb_flat"], name

    def test_ssb_mv_rewrites_are_correct(self):
        """Ground truth: same answers with rewriting disabled."""
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = create_ssb_warehouse(server, SsbScale.tiny())
        session.conf.results_cache_enabled = False
        expected = {}
        for name, sql in SSB_QUERIES:
            expected[name] = session.execute(sql).rows
        session.execute(
            f"CREATE MATERIALIZED VIEW ssb_flat AS {SSB_FLAT_MV_SELECT}")
        for name, sql in SSB_QUERIES:
            result = session.execute(sql)
            assert result.views_used, name
            assert _approx(result.rows, expected[name]), name


def _approx(left, right) -> bool:
    if len(left) != len(right):
        return False
    for l, r in zip(left, right):
        if len(l) != len(r):
            return False
        for a, b in zip(l, r):
            if isinstance(a, float) and isinstance(b, float):
                if abs(a - b) > 1e-6 * max(1.0, abs(a), abs(b)):
                    return False
            elif a != b:
                return False
    return True


class TestHarness:
    def test_render_and_speedups(self):
        base = BenchmarkRun("slow", [QueryTiming("q1", 10.0),
                                     QueryTiming("q2", 4.0),
                                     QueryTiming("q3", None, error="X")])
        fast = BenchmarkRun("fast", [QueryTiming("q1", 2.0),
                                     QueryTiming("q2", 2.0),
                                     QueryTiming("q3", 1.0)])
        assert average_speedup(base, fast) == pytest.approx(3.5)
        assert geometric_mean_speedup(base, fast) == pytest.approx(
            (5 * 2) ** 0.5)
        text = render_comparison([base, fast], "demo")
        assert "FAIL(X)" in text
        assert "q1" in text and "TOTAL" in text

    def test_totals_skip_failures(self):
        run = BenchmarkRun("x", [QueryTiming("a", 1.0),
                                 QueryTiming("b", None, error="E")])
        assert run.total_seconds() == 1.0
        assert run.succeeded_count() == 1
