"""Thread-safety: concurrent sessions against one warehouse.

HS2 serves many sessions; HMS, the transaction manager, lock manager and
the results cache are shared.  These tests hammer them from threads and
assert no row is lost, duplicated, or read inconsistently.
"""

import threading

import pytest

import repro
from repro.config import HiveConf
from repro.errors import HiveError, WriteConflictError


@pytest.fixture
def server():
    return repro.HiveServer2(HiveConf.v3_profile())


def run_threads(workers, count):
    errors = []
    threads = []
    for i in range(count):
        def body(index=i):
            try:
                workers(index)
            except Exception as error:   # pragma: no cover - surfaced
                errors.append(error)
        threads.append(threading.Thread(target=body))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    return errors


class TestConcurrentWrites:
    def test_parallel_inserts_all_land(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (worker INT, seq INT)")

        def worker(index):
            own = server.connect()
            own.conf.results_cache_enabled = False
            for seq in range(5):
                own.execute(
                    f"INSERT INTO t VALUES ({index}, {seq})")

        errors = run_threads(worker, 6)
        assert errors == []
        reader = server.connect()
        reader.conf.results_cache_enabled = False
        assert reader.execute("SELECT COUNT(*) FROM t").rows == [(30,)]
        per_worker = reader.execute(
            "SELECT worker, COUNT(*) FROM t GROUP BY worker "
            "ORDER BY worker").rows
        assert per_worker == [(i, 5) for i in range(6)]

    def test_concurrent_updates_one_winner(self, server):
        session = server.connect()
        session.execute("CREATE TABLE counter (v INT)")
        session.execute("INSERT INTO counter VALUES (0)")
        outcomes = {"ok": 0, "conflict": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(index):
            own = server.connect()
            own.conf.results_cache_enabled = False
            barrier.wait()
            try:
                own.execute("UPDATE counter SET v = v + 1")
                with lock:
                    outcomes["ok"] += 1
            except WriteConflictError:
                with lock:
                    outcomes["conflict"] += 1

        errors = run_threads(worker, 4)
        assert errors == []
        assert outcomes["ok"] >= 1
        assert outcomes["ok"] + outcomes["conflict"] == 4
        reader = server.connect()
        reader.conf.results_cache_enabled = False
        (value,) = reader.execute("SELECT v FROM counter").rows[0]
        # the surviving value equals the number of successful updates
        # only if they serialized; at minimum it is >= 1 and <= ok count
        assert 1 <= value <= outcomes["ok"]


class TestConcurrentReads:
    def test_readers_during_writes_see_consistent_snapshots(self, server):
        session = server.connect()
        session.execute("CREATE TABLE pairs (a INT, b INT)")
        session.execute("INSERT INTO pairs VALUES (0, 0)")
        stop = threading.Event()
        bad = []

        def writer(_):
            own = server.connect()
            own.conf.results_cache_enabled = False
            for i in range(1, 10):
                # each statement inserts a matched pair atomically
                own.execute(f"INSERT INTO pairs VALUES ({i}, {i})")
            stop.set()

        def reader(_):
            own = server.connect()
            own.conf.results_cache_enabled = False
            while not stop.is_set():
                rows = own.execute(
                    "SELECT COUNT(*), SUM(a), SUM(b) FROM pairs").rows
                count, sa, sb = rows[0]
                if sa != sb:          # a torn statement would split them
                    bad.append(rows)
                    return

        errors = run_threads(
            lambda i: writer(i) if i == 0 else reader(i), 3)
        assert errors == []
        assert bad == []

    def test_results_cache_under_concurrency(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        answers = []
        lock = threading.Lock()

        def worker(_):
            own = server.connect()
            rows = own.execute("SELECT SUM(a) FROM t").rows
            with lock:
                answers.append(rows)

        errors = run_threads(worker, 8)
        assert errors == []
        assert all(rows == [(6,)] for rows in answers)
        stats = server.results_cache.stats
        assert stats.hits + stats.misses >= 8
