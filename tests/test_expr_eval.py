"""Vectorized expression evaluation, including NULL semantics."""

import datetime

import numpy as np
import pytest

from repro.common.rows import Column, Schema
from repro.common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT,
                                STRING)
from repro.common.vector import VectorBatch
from repro.exec.expr_eval import evaluate, evaluate_predicate
from repro.plan.rexnodes import RexCall, RexInputRef, RexLiteral, make_call


@pytest.fixture
def batch():
    schema = Schema([Column("i", INT), Column("f", DOUBLE),
                     Column("s", STRING), Column("d", DATE),
                     Column("flag", BOOLEAN)])
    rows = [
        (1, 1.5, "apple", datetime.date(2020, 1, 15), True),
        (2, 2.5, "banana", datetime.date(2020, 6, 30), False),
        (None, None, None, None, None),
        (-4, 0.25, "apricot", datetime.date(2021, 12, 1), True),
    ]
    return VectorBatch.from_rows(schema, rows)


def col(i, dtype):
    return RexInputRef(i, dtype)


def lit(value, dtype):
    return RexLiteral(value, dtype)


class TestArithmetic:
    def test_add_mul(self, batch):
        out = evaluate(RexCall("+", (col(0, INT), lit(10, INT)), INT),
                       batch)
        assert out.to_values() == [11, 12, None, 6]
        out = evaluate(RexCall("*", (col(1, DOUBLE), lit(2, INT)),
                               DOUBLE), batch)
        assert out.to_values() == [3.0, 5.0, None, 0.5]

    def test_divide_by_zero_is_null(self, batch):
        out = evaluate(RexCall("/", (col(0, INT), lit(0, INT)), DOUBLE),
                       batch)
        assert out.to_values() == [None, None, None, None]

    def test_modulo(self, batch):
        out = evaluate(RexCall("%", (col(0, INT), lit(2, INT)), INT),
                       batch)
        assert out.to_values() == [1, 0, None, 0]

    def test_negate(self, batch):
        out = evaluate(RexCall("NEGATE", (col(0, INT),), INT), batch)
        assert out.to_values() == [-1, -2, None, 4]


class TestComparisonAndLogic:
    def test_comparison_null_propagates(self, batch):
        out = evaluate(make_call(">", col(0, INT), lit(1, INT)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_string_compare(self, batch):
        out = evaluate(make_call("=", col(2, STRING),
                                 lit("banana", STRING)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_three_valued_and(self, batch):
        # flag AND (i > 0): null AND false must be false-ish in filters
        expr = make_call("AND", col(4, BOOLEAN),
                         make_call(">", col(0, INT), lit(0, INT)))
        mask = evaluate_predicate(expr, batch)
        assert mask.tolist() == [True, False, False, False]

    def test_false_and_null_is_false(self, batch):
        expr = make_call("AND", lit(False, BOOLEAN), col(4, BOOLEAN))
        out = evaluate(expr, batch)
        assert out.to_values() == [False, False, False, False]

    def test_true_or_null_is_true(self, batch):
        expr = make_call("OR", lit(True, BOOLEAN), col(4, BOOLEAN))
        out = evaluate(expr, batch)
        assert out.to_values() == [True, True, True, True]

    def test_is_null(self, batch):
        out = evaluate(make_call("IS_NULL", col(0, INT)), batch)
        assert out.to_values() == [False, False, True, False]
        out = evaluate(make_call("IS_NOT_NULL", col(0, INT)), batch)
        assert out.to_values() == [True, True, False, True]


class TestPredicates:
    def test_in_list(self, batch):
        out = evaluate(make_call("IN", col(0, INT), lit(1, INT),
                                 lit(-4, INT)), batch)
        assert out.to_values() == [True, False, None, True]

    def test_like(self, batch):
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("ap%", STRING)), batch)
        assert out.to_values() == [True, False, None, True]
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("_anana", STRING)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_like_anchored(self, batch):
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("pple", STRING)), batch)
        assert out.to_values()[0] is False     # no implicit wildcards


class TestConditionals:
    def test_case(self, batch):
        expr = RexCall("CASE", (
            make_call(">", col(0, INT), lit(1, INT)),
            lit("big", STRING),
            make_call("=", col(0, INT), lit(1, INT)),
            lit("one", STRING),
            lit("small", STRING)), STRING)
        out = evaluate(expr, batch)
        assert out.to_values() == ["one", "big", "small", "small"]

    def test_coalesce(self, batch):
        expr = RexCall("COALESCE", (col(0, INT), lit(99, INT)), INT)
        out = evaluate(expr, batch)
        assert out.to_values() == [1, 2, 99, -4]

    def test_if(self, batch):
        expr = RexCall("IF", (col(4, BOOLEAN), lit(1, INT),
                              lit(0, INT)), INT)
        assert evaluate(expr, batch).to_values() == [1, 0, 0, 1]

    def test_nullif(self, batch):
        expr = RexCall("NULLIF", (col(0, INT), lit(2, INT)), INT)
        assert evaluate(expr, batch).to_values() == [1, None, None, -4]


class TestCastsAndTemporal:
    def test_cast_int_to_string(self, batch):
        out = evaluate(RexCall("CAST", (col(0, INT),), STRING), batch)
        assert out.to_values() == ["1", "2", None, "-4"]

    def test_cast_string_to_int_bad_values_null(self, batch):
        out = evaluate(RexCall("CAST", (col(2, STRING),), INT), batch)
        assert out.to_values() == [None, None, None, None]

    def test_cast_int_to_double(self, batch):
        out = evaluate(RexCall("CAST", (col(0, INT),), DOUBLE), batch)
        assert out.to_values() == [1.0, 2.0, None, -4.0]

    def test_extract_units(self, batch):
        year = evaluate(RexCall("EXTRACT_YEAR", (col(3, DATE),), INT),
                        batch)
        assert year.to_values() == [2020, 2020, None, 2021]
        month = evaluate(RexCall("EXTRACT_MONTH", (col(3, DATE),), INT),
                         batch)
        assert month.to_values() == [1, 6, None, 12]
        day = evaluate(RexCall("EXTRACT_DAY", (col(3, DATE),), INT),
                       batch)
        assert day.to_values() == [15, 30, None, 1]
        quarter = evaluate(RexCall("EXTRACT_QUARTER", (col(3, DATE),),
                                   INT), batch)
        assert quarter.to_values() == [1, 2, None, 4]

    def test_date_add_days(self, batch):
        expr = RexCall("DATE_ADD_DAYS", (col(3, DATE), lit(10, INT)),
                       DATE)
        out = evaluate(expr, batch)
        assert out.value(0) == datetime.date(2020, 1, 25)

    def test_date_add_months_clamps_day(self):
        schema = Schema([Column("d", DATE)])
        batch = VectorBatch.from_rows(schema,
                                      [(datetime.date(2020, 1, 31),)])
        expr = RexCall("DATE_ADD_MONTHS", (col(0, DATE), lit(1, INT)),
                       DATE)
        assert evaluate(expr, batch).value(0) == datetime.date(2020, 2, 29)


class TestStringFunctions:
    def test_upper_lower_length_trim(self, batch):
        assert evaluate(RexCall("UPPER", (col(2, STRING),), STRING),
                        batch).to_values() == [
            "APPLE", "BANANA", None, "APRICOT"]
        assert evaluate(RexCall("LENGTH", (col(2, STRING),), INT),
                        batch).to_values() == [5, 6, None, 7]

    def test_substr(self, batch):
        expr = RexCall("SUBSTR", (col(2, STRING), lit(2, INT),
                                  lit(3, INT)), STRING)
        assert evaluate(expr, batch).to_values() == [
            "ppl", "ana", None, "pri"]

    def test_concat(self, batch):
        expr = RexCall("CONCAT", (col(2, STRING), lit("!", STRING)),
                       STRING)
        assert evaluate(expr, batch).to_values() == [
            "apple!", "banana!", None, "apricot!"]
