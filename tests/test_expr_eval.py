"""Vectorized expression evaluation, including NULL semantics."""

import datetime

import numpy as np
import pytest

from repro.common.rows import Column, Schema
from repro.common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT,
                                STRING)
from repro.common.vector import VectorBatch
from repro.exec.expr_eval import evaluate, evaluate_predicate
from repro.plan.rexnodes import RexCall, RexInputRef, RexLiteral, make_call


@pytest.fixture
def batch():
    schema = Schema([Column("i", INT), Column("f", DOUBLE),
                     Column("s", STRING), Column("d", DATE),
                     Column("flag", BOOLEAN)])
    rows = [
        (1, 1.5, "apple", datetime.date(2020, 1, 15), True),
        (2, 2.5, "banana", datetime.date(2020, 6, 30), False),
        (None, None, None, None, None),
        (-4, 0.25, "apricot", datetime.date(2021, 12, 1), True),
    ]
    return VectorBatch.from_rows(schema, rows)


def col(i, dtype):
    return RexInputRef(i, dtype)


def lit(value, dtype):
    return RexLiteral(value, dtype)


class TestArithmetic:
    def test_add_mul(self, batch):
        out = evaluate(RexCall("+", (col(0, INT), lit(10, INT)), INT),
                       batch)
        assert out.to_values() == [11, 12, None, 6]
        out = evaluate(RexCall("*", (col(1, DOUBLE), lit(2, INT)),
                               DOUBLE), batch)
        assert out.to_values() == [3.0, 5.0, None, 0.5]

    def test_divide_by_zero_is_null(self, batch):
        out = evaluate(RexCall("/", (col(0, INT), lit(0, INT)), DOUBLE),
                       batch)
        assert out.to_values() == [None, None, None, None]

    def test_modulo(self, batch):
        out = evaluate(RexCall("%", (col(0, INT), lit(2, INT)), INT),
                       batch)
        assert out.to_values() == [1, 0, None, 0]

    def test_negate(self, batch):
        out = evaluate(RexCall("NEGATE", (col(0, INT),), INT), batch)
        assert out.to_values() == [-1, -2, None, 4]


class TestComparisonAndLogic:
    def test_comparison_null_propagates(self, batch):
        out = evaluate(make_call(">", col(0, INT), lit(1, INT)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_string_compare(self, batch):
        out = evaluate(make_call("=", col(2, STRING),
                                 lit("banana", STRING)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_three_valued_and(self, batch):
        # flag AND (i > 0): null AND false must be false-ish in filters
        expr = make_call("AND", col(4, BOOLEAN),
                         make_call(">", col(0, INT), lit(0, INT)))
        mask = evaluate_predicate(expr, batch)
        assert mask.tolist() == [True, False, False, False]

    def test_false_and_null_is_false(self, batch):
        expr = make_call("AND", lit(False, BOOLEAN), col(4, BOOLEAN))
        out = evaluate(expr, batch)
        assert out.to_values() == [False, False, False, False]

    def test_true_or_null_is_true(self, batch):
        expr = make_call("OR", lit(True, BOOLEAN), col(4, BOOLEAN))
        out = evaluate(expr, batch)
        assert out.to_values() == [True, True, True, True]

    def test_is_null(self, batch):
        out = evaluate(make_call("IS_NULL", col(0, INT)), batch)
        assert out.to_values() == [False, False, True, False]
        out = evaluate(make_call("IS_NOT_NULL", col(0, INT)), batch)
        assert out.to_values() == [True, True, False, True]


class TestPredicates:
    def test_in_list(self, batch):
        out = evaluate(make_call("IN", col(0, INT), lit(1, INT),
                                 lit(-4, INT)), batch)
        assert out.to_values() == [True, False, None, True]

    def test_like(self, batch):
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("ap%", STRING)), batch)
        assert out.to_values() == [True, False, None, True]
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("_anana", STRING)), batch)
        assert out.to_values() == [False, True, None, False]

    def test_like_anchored(self, batch):
        out = evaluate(make_call("LIKE", col(2, STRING),
                                 lit("pple", STRING)), batch)
        assert out.to_values()[0] is False     # no implicit wildcards


class TestConditionals:
    def test_case(self, batch):
        expr = RexCall("CASE", (
            make_call(">", col(0, INT), lit(1, INT)),
            lit("big", STRING),
            make_call("=", col(0, INT), lit(1, INT)),
            lit("one", STRING),
            lit("small", STRING)), STRING)
        out = evaluate(expr, batch)
        assert out.to_values() == ["one", "big", "small", "small"]

    def test_coalesce(self, batch):
        expr = RexCall("COALESCE", (col(0, INT), lit(99, INT)), INT)
        out = evaluate(expr, batch)
        assert out.to_values() == [1, 2, 99, -4]

    def test_if(self, batch):
        expr = RexCall("IF", (col(4, BOOLEAN), lit(1, INT),
                              lit(0, INT)), INT)
        assert evaluate(expr, batch).to_values() == [1, 0, 0, 1]

    def test_nullif(self, batch):
        expr = RexCall("NULLIF", (col(0, INT), lit(2, INT)), INT)
        assert evaluate(expr, batch).to_values() == [1, None, None, -4]


class TestCastsAndTemporal:
    def test_cast_int_to_string(self, batch):
        out = evaluate(RexCall("CAST", (col(0, INT),), STRING), batch)
        assert out.to_values() == ["1", "2", None, "-4"]

    def test_cast_string_to_int_bad_values_null(self, batch):
        out = evaluate(RexCall("CAST", (col(2, STRING),), INT), batch)
        assert out.to_values() == [None, None, None, None]

    def test_cast_int_to_double(self, batch):
        out = evaluate(RexCall("CAST", (col(0, INT),), DOUBLE), batch)
        assert out.to_values() == [1.0, 2.0, None, -4.0]

    def test_extract_units(self, batch):
        year = evaluate(RexCall("EXTRACT_YEAR", (col(3, DATE),), INT),
                        batch)
        assert year.to_values() == [2020, 2020, None, 2021]
        month = evaluate(RexCall("EXTRACT_MONTH", (col(3, DATE),), INT),
                         batch)
        assert month.to_values() == [1, 6, None, 12]
        day = evaluate(RexCall("EXTRACT_DAY", (col(3, DATE),), INT),
                       batch)
        assert day.to_values() == [15, 30, None, 1]
        quarter = evaluate(RexCall("EXTRACT_QUARTER", (col(3, DATE),),
                                   INT), batch)
        assert quarter.to_values() == [1, 2, None, 4]

    def test_date_add_days(self, batch):
        expr = RexCall("DATE_ADD_DAYS", (col(3, DATE), lit(10, INT)),
                       DATE)
        out = evaluate(expr, batch)
        assert out.value(0) == datetime.date(2020, 1, 25)

    def test_date_add_months_clamps_day(self):
        schema = Schema([Column("d", DATE)])
        batch = VectorBatch.from_rows(schema,
                                      [(datetime.date(2020, 1, 31),)])
        expr = RexCall("DATE_ADD_MONTHS", (col(0, DATE), lit(1, INT)),
                       DATE)
        assert evaluate(expr, batch).value(0) == datetime.date(2020, 2, 29)


class TestStringFunctions:
    def test_upper_lower_length_trim(self, batch):
        assert evaluate(RexCall("UPPER", (col(2, STRING),), STRING),
                        batch).to_values() == [
            "APPLE", "BANANA", None, "APRICOT"]
        assert evaluate(RexCall("LENGTH", (col(2, STRING),), INT),
                        batch).to_values() == [5, 6, None, 7]

    def test_substr(self, batch):
        expr = RexCall("SUBSTR", (col(2, STRING), lit(2, INT),
                                  lit(3, INT)), STRING)
        assert evaluate(expr, batch).to_values() == [
            "ppl", "ana", None, "pri"]

    def test_concat(self, batch):
        expr = RexCall("CONCAT", (col(2, STRING), lit("!", STRING)),
                       STRING)
        assert evaluate(expr, batch).to_values() == [
            "apple!", "banana!", None, "apricot!"]


class TestJavaModulo:
    """Hive follows Java: the sign of % is the sign of the dividend."""

    @pytest.fixture
    def signed(self):
        schema = Schema([Column("a", INT), Column("b", INT)])
        rows = [(-7, 3), (7, -3), (-7, -3), (7, 3), (0, 3), (5, 0)]
        return VectorBatch.from_rows(schema, rows)

    def test_sign_of_dividend(self, signed):
        expr = RexCall("%", (col(0, INT), col(1, INT)), INT)
        assert evaluate(expr, signed).to_values() == [
            -1, 1, -1, 1, 0, None]

    def test_mod_alias_matches(self, signed):
        expr = RexCall("MOD", (col(0, INT), col(1, INT)), INT)
        assert evaluate(expr, signed).to_values() == [
            -1, 1, -1, 1, 0, None]

    def test_double_modulo(self):
        schema = Schema([Column("f", DOUBLE)])
        batch = VectorBatch.from_rows(schema, [(-7.5,), (7.5,)])
        expr = RexCall("%", (col(0, DOUBLE), lit(2.0, DOUBLE)), DOUBLE)
        assert evaluate(expr, batch).to_values() == [-1.5, 1.5]


class TestNullifDtype:
    def test_result_uses_expression_dtype(self, batch):
        # analyzer may widen NULLIF(int_col, 1) to DOUBLE; the result
        # vector must carry that dtype, not the first operand's
        expr = RexCall("NULLIF", (col(0, INT), lit(1, INT)), DOUBLE)
        out = evaluate(expr, batch)
        assert out.dtype == DOUBLE
        assert out.to_values() == [None, 2.0, None, -4.0]


class TestIsoWeek:
    def test_week_53_not_wrapped(self):
        # the old '% 52 + 1' formula sent ISO week 53 back to week 2
        schema = Schema([Column("d", DATE)])
        dates = [datetime.date(2020, 12, 31),   # ISO 2020-W53
                 datetime.date(2021, 1, 1),     # still 2020-W53
                 datetime.date(2021, 1, 4),     # 2021-W01
                 datetime.date(2015, 12, 28),   # 2015-W53
                 datetime.date(2020, 6, 15)]
        batch = VectorBatch.from_rows(schema, [(d,) for d in dates])
        expr = RexCall("EXTRACT_WEEK", (col(0, DATE),), INT)
        out = evaluate(expr, batch).to_values()
        assert out == [d.isocalendar()[1] for d in dates]
        assert out[0] == 53

    def test_parity_with_isocalendar_across_years(self):
        schema = Schema([Column("d", DATE)])
        dates = [datetime.date(1970, 1, 1) + datetime.timedelta(days=k)
                 for k in range(0, 20000, 97)]
        batch = VectorBatch.from_rows(schema, [(d,) for d in dates])
        expr = RexCall("EXTRACT_WEEK", (col(0, DATE),), INT)
        out = evaluate(expr, batch).to_values()
        assert out == [d.isocalendar()[1] for d in dates]


class TestVirtualClock:
    def test_current_date_comes_from_context(self, batch):
        from repro.exec.expr_eval import EvalContext
        ctx = EvalContext(now_s=86400.0 * 365 * 10 + 7200)
        expr = RexCall("CURRENT_DATE", (), DATE)
        out = evaluate(expr, batch, ctx).to_values()
        want = (datetime.date(1970, 1, 1)
                + datetime.timedelta(days=3650))
        assert out == [want] * batch.num_rows

    def test_current_timestamp_from_context(self, batch):
        from repro.common.types import TIMESTAMP
        from repro.exec.expr_eval import EvalContext
        ctx = EvalContext(now_s=12.345)
        expr = RexCall("CURRENT_TIMESTAMP", (), TIMESTAMP)
        out = evaluate(expr, batch, ctx).to_values()
        assert out[0] == datetime.datetime(1970, 1, 1, 0, 0, 12, 345000)

    def test_default_context_is_fixed_epoch_not_wall_clock(self, batch):
        # two evaluations arbitrarily far apart must agree: the default
        # context pins the virtual epoch, never the host clock
        expr = RexCall("CURRENT_DATE", (), DATE)
        first = evaluate(expr, batch).to_values()
        second = evaluate(expr, batch).to_values()
        assert first == second == [datetime.date(1970, 1, 1)] * 4


class TestRandDeterminism:
    def test_seeded_rand_reproduces(self, batch):
        expr = RexCall("RAND", (lit(42, INT),), DOUBLE)
        a = evaluate(expr, batch).to_values()
        b = evaluate(expr, batch).to_values()
        assert a == b
        assert all(0.0 <= v < 1.0 for v in a)
        assert len(set(a)) > 1    # per-row stream, not one number

    def test_seed_changes_stream(self, batch):
        one = evaluate(RexCall("RAND", (lit(1, INT),), DOUBLE),
                       batch).to_values()
        two = evaluate(RexCall("RAND", (lit(2, INT),), DOUBLE),
                       batch).to_values()
        assert one != two

    def test_unseeded_rand_salted_by_query_id(self, batch):
        from repro.exec.expr_eval import EvalContext
        expr = RexCall("RAND", (), DOUBLE)
        q1 = evaluate(expr, batch, EvalContext(query_id=1)).to_values()
        q2 = evaluate(expr, batch, EvalContext(query_id=2)).to_values()
        q1_again = evaluate(expr, batch,
                            EvalContext(query_id=1)).to_values()
        assert q1 != q2
        assert q1 == q1_again

    def test_row_offset_continues_stream(self):
        from repro.exec.expr_eval import EvalContext
        schema = Schema([Column("i", INT)])
        big = VectorBatch.from_rows(schema, [(k,) for k in range(10)])
        lo = VectorBatch.from_rows(schema, [(k,) for k in range(6)])
        hi = VectorBatch.from_rows(schema, [(k,) for k in range(4)])
        expr = RexCall("RAND", (lit(9, INT),), DOUBLE)
        whole = evaluate(expr, big).to_values()
        first = evaluate(expr, lo).to_values()
        rest = evaluate(expr, hi,
                        EvalContext(row_offset=6)).to_values()
        assert whole == first + rest
