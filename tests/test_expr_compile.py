"""Compiled-kernel parity: repro.exec.compile must be bit-identical to
the repro.exec.expr_eval reference interpreter.

The compiler is only allowed to be *faster*; every golden test here
evaluates the same expression both ways over randomized batches (all
dtypes, varied NULL patterns, empty batches, division by zero) and
demands identical values, nulls and dtypes.  Three-valued-logic truth
tables pin AND/OR/NOT/CASE/IF behaviour explicitly, and the kernel
cache's typed-digest keying, LRU eviction and hit accounting are
checked directly.
"""

import datetime
import math

import numpy as np
import pytest

from repro.common.rows import Column, Schema
from repro.common.types import (BIGINT, BOOLEAN, DATE, DOUBLE, INT,
                                STRING, TIMESTAMP)
from repro.common.vector import ColumnVector, VectorBatch
from repro.exec.compile import (KernelCache, compile_expr,
                                compile_predicate, typed_digest)
from repro.exec.expr_eval import (EvalContext, evaluate,
                                  evaluate_predicate)
from repro.plan.rexnodes import RexCall, RexInputRef, RexLiteral, make_call

CTX = EvalContext(now_s=1_700_000_123.456, query_id=7)


def col(i, dtype):
    return RexInputRef(i, dtype)


def lit(value, dtype):
    return RexLiteral(value, dtype)


# --------------------------------------------------------------------------- #
# randomized batch generation

SCHEMA = Schema([
    Column("i", INT), Column("b", BIGINT), Column("f", DOUBLE),
    Column("s", STRING), Column("d", DATE), Column("flag", BOOLEAN),
    Column("ts", TIMESTAMP),
])

_WORDS = ["apple", "Banana", "  pear  ", "fig", "date%", "a_b", "",
          "kiwi", "GRAPE", "12", "-3", "x7", "nan"]


def random_batch(seed: int, n: int, null_rate: float = 0.25) -> VectorBatch:
    rng = np.random.default_rng(seed)

    def nulls():
        if null_rate >= 1.0:
            return np.ones(n, dtype=bool)
        if null_rate <= 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < null_rate

    vectors = [
        ColumnVector(INT, rng.integers(-50, 50, n).astype(np.int32),
                     nulls()),
        ColumnVector(BIGINT, rng.integers(-10**6, 10**6, n), nulls()),
        ColumnVector(DOUBLE, np.round(rng.normal(0, 10, n), 3), nulls()),
        ColumnVector(STRING,
                     np.array([_WORDS[k] for k in
                               rng.integers(0, len(_WORDS), n)],
                              dtype=object), nulls()),
        ColumnVector(DATE, rng.integers(0, 20000, n).astype(np.int32),
                     nulls()),
        ColumnVector(BOOLEAN, rng.integers(0, 2, n).astype(bool),
                     nulls()),
        ColumnVector(TIMESTAMP, rng.integers(0, 1_700_000_000_000, n),
                     nulls()),
    ]
    return VectorBatch(SCHEMA, vectors)


def _same_value(a, b) -> bool:
    if a is None or b is None:
        return a is b
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b or (math.isclose(a, b, rel_tol=0, abs_tol=0))
    return a == b and type(a) is type(b)


def assert_parity(expr, batch, ctx=CTX):
    expected = evaluate(expr, batch, ctx)
    actual = compile_expr(expr)(batch, ctx)
    assert actual.dtype == expected.dtype, expr.digest
    ev, av = expected.to_values(), actual.to_values()
    assert len(ev) == len(av), expr.digest
    for row, (e, a) in enumerate(zip(ev, av)):
        assert _same_value(e, a), (
            f"{expr.digest} row {row}: interpreted={e!r} compiled={a!r}")
    # predicates additionally agree on the NULL-is-false mask
    if expr.dtype is BOOLEAN:
        em = evaluate_predicate(expr, batch, ctx)
        am = compile_predicate(expr)(batch, ctx)
        assert em.tolist() == am.tolist(), expr.digest


# the golden corpus: every operator family the compiler lowers
def corpus():
    i, b, f = col(0, INT), col(1, BIGINT), col(2, DOUBLE)
    s, d, flag, ts = (col(3, STRING), col(4, DATE), col(5, BOOLEAN),
                      col(6, TIMESTAMP))
    return [
        # arithmetic, incl. div-by-zero → NULL and Java-sign modulo
        RexCall("+", (i, lit(7, INT)), INT),
        RexCall("-", (b, i), BIGINT),
        RexCall("*", (f, lit(-2.5, DOUBLE)), DOUBLE),
        RexCall("/", (i, lit(0, INT)), DOUBLE),
        RexCall("/", (f, i), DOUBLE),
        RexCall("%", (i, lit(3, INT)), INT),
        RexCall("MOD", (i, lit(-4, INT)), INT),
        RexCall("%", (b, lit(0, BIGINT)), BIGINT),
        RexCall("NEGATE", (f,), DOUBLE),
        # comparisons: same-type, mixed-width, strings
        make_call("=", i, lit(5, INT)),
        make_call("<>", s, lit("fig", STRING)),
        make_call("<", i, f),
        make_call(">=", b, lit(0, BIGINT)),
        make_call(">", s, lit("fig", STRING)),
        # logic
        make_call("AND", flag, make_call(">", i, lit(0, INT))),
        make_call("OR", flag, make_call("<", f, lit(0.0, DOUBLE))),
        make_call("NOT", flag),
        make_call("IS_NULL", s),
        make_call("IS_NOT_NULL", i),
        # IN / LIKE
        make_call("IN", i, lit(1, INT), lit(2, INT), lit(-3, INT)),
        make_call("IN", s, lit("fig", STRING), lit("kiwi", STRING)),
        make_call("LIKE", s, lit("%a%", STRING)),
        make_call("LIKE", s, lit("a_b", STRING)),
        # conditionals
        RexCall("CASE", (make_call(">", i, lit(0, INT)),
                         lit("pos", STRING),
                         make_call("<", i, lit(0, INT)),
                         lit("neg", STRING), lit("zero", STRING)),
                STRING),
        RexCall("IF", (flag, i, lit(-1, INT)), INT),
        RexCall("COALESCE", (s, lit("??", STRING)), STRING),
        RexCall("NULLIF", (i, lit(1, INT)), INT),
        # casts
        RexCall("CAST", (i,), STRING),
        RexCall("CAST", (s,), INT),
        RexCall("CAST", (f,), INT),
        RexCall("CAST", (i,), DOUBLE),
        RexCall("CAST", (b,), BIGINT),
        # temporal
        RexCall("EXTRACT_YEAR", (d,), INT),
        RexCall("EXTRACT_MONTH", (d,), INT),
        RexCall("EXTRACT_WEEK", (d,), INT),
        RexCall("EXTRACT_HOUR", (ts,), INT),
        RexCall("YEAR", (d,), INT),
        RexCall("QUARTER", (d,), INT),
        RexCall("DATE_ADD_DAYS", (d, lit(45, INT)), DATE),
        RexCall("DATE_ADD_MONTHS", (d, lit(13, INT)), DATE),
        # strings
        RexCall("UPPER", (s,), STRING),
        RexCall("LOWER", (s,), STRING),
        RexCall("LENGTH", (s,), INT),
        RexCall("TRIM", (s,), STRING),
        RexCall("SUBSTR", (s, lit(2, INT), lit(3, INT)), STRING),
        RexCall("CONCAT", (s, lit("-", STRING), i), STRING),
        # math
        RexCall("ABS", (i,), INT),
        RexCall("ROUND", (f, lit(1, INT)), DOUBLE),
        RexCall("FLOOR", (f,), BIGINT),
        RexCall("CEIL", (f,), BIGINT),
        RexCall("POWER", (f, lit(2, INT)), DOUBLE),
        RexCall("GREATEST", (i, lit(0, INT)), INT),
        RexCall("LEAST", (f, lit(0.0, DOUBLE)), DOUBLE),
        # context-dependent + interpreter-fallback ops
        RexCall("RAND", (lit(42, INT),), DOUBLE),
        RexCall("CURRENT_DATE", (), DATE),
        RexCall("CURRENT_TIMESTAMP", (), TIMESTAMP),
        RexCall("HASH", (i, s), BIGINT),
        # constant folding inside a live expression
        RexCall("+", (i, RexCall("*", (lit(6, INT), lit(7, INT)), INT)),
                INT),
    ]


CORPUS = corpus()


class TestGoldenParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_batches(self, seed):
        batch = random_batch(seed, n=64, null_rate=0.25)
        for expr in CORPUS:
            assert_parity(expr, batch)

    def test_no_nulls(self):
        batch = random_batch(11, n=32, null_rate=0.0)
        for expr in CORPUS:
            assert_parity(expr, batch)

    def test_all_nulls(self):
        batch = random_batch(12, n=16, null_rate=1.0)
        for expr in CORPUS:
            assert_parity(expr, batch)

    def test_empty_batch(self):
        batch = random_batch(13, n=0)
        for expr in CORPUS:
            assert_parity(expr, batch)

    def test_single_row(self):
        batch = random_batch(14, n=1, null_rate=0.5)
        for expr in CORPUS:
            assert_parity(expr, batch)


class TestThreeValuedLogic:
    """Truth tables over {TRUE, FALSE, NULL}, compiled ≡ interpreted
    ≡ the SQL standard."""

    @pytest.fixture
    def tvl_batch(self):
        schema = Schema([Column("a", BOOLEAN), Column("b", BOOLEAN)])
        rows = [(x, y) for x in (True, False, None)
                for y in (True, False, None)]
        return VectorBatch.from_rows(schema, rows)

    def test_and_table(self, tvl_batch):
        expr = make_call("AND", col(0, BOOLEAN), col(1, BOOLEAN))
        expected = [True, False, None,
                    False, False, False,
                    None, False, None]
        assert evaluate(expr, tvl_batch, CTX).to_values() == expected
        assert compile_expr(expr)(tvl_batch, CTX).to_values() == expected

    def test_or_table(self, tvl_batch):
        expr = make_call("OR", col(0, BOOLEAN), col(1, BOOLEAN))
        expected = [True, True, True,
                    True, False, None,
                    True, None, None]
        assert evaluate(expr, tvl_batch, CTX).to_values() == expected
        assert compile_expr(expr)(tvl_batch, CTX).to_values() == expected

    def test_not_table(self, tvl_batch):
        expr = make_call("NOT", col(0, BOOLEAN))
        expected = [False] * 3 + [True] * 3 + [None] * 3
        assert evaluate(expr, tvl_batch, CTX).to_values() == expected
        assert compile_expr(expr)(tvl_batch, CTX).to_values() == expected

    def test_case_null_condition_falls_through(self, tvl_batch):
        # a NULL WHEN-condition must not select the branch
        expr = RexCall("CASE", (col(0, BOOLEAN), lit(1, INT),
                                lit(0, INT)), INT)
        expected = [1, 1, 1, 0, 0, 0, 0, 0, 0]
        assert evaluate(expr, tvl_batch, CTX).to_values() == expected
        assert compile_expr(expr)(tvl_batch, CTX).to_values() == expected

    def test_if_null_condition_takes_else(self, tvl_batch):
        expr = RexCall("IF", (col(1, BOOLEAN), lit("t", STRING),
                              lit("e", STRING)), STRING)
        expected = ["t", "e", "e"] * 3
        assert evaluate(expr, tvl_batch, CTX).to_values() == expected
        assert compile_expr(expr)(tvl_batch, CTX).to_values() == expected

    def test_predicate_mask_null_is_false(self, tvl_batch):
        expr = make_call("OR", col(0, BOOLEAN), col(1, BOOLEAN))
        mask = compile_predicate(expr)(tvl_batch, CTX)
        assert mask.tolist() == [True, True, True,
                                 True, False, False,
                                 True, False, False]


class TestContextDependence:
    """RAND and CURRENT_* are pure functions of the EvalContext."""

    @pytest.fixture
    def batch(self):
        return random_batch(5, n=8, null_rate=0.0)

    def test_seeded_rand_deterministic(self, batch):
        expr = RexCall("RAND", (lit(99, INT),), DOUBLE)
        kernel = compile_expr(expr)
        first = kernel(batch, CTX).to_values()
        second = kernel(batch, CTX).to_values()
        assert first == second
        assert first == evaluate(expr, batch, CTX).to_values()
        assert len(set(first)) > 1          # per-row, not one constant
        assert all(0.0 <= v < 1.0 for v in first)

    def test_unseeded_rand_varies_by_query(self, batch):
        expr = RexCall("RAND", (), DOUBLE)
        kernel = compile_expr(expr)
        a = kernel(batch, EvalContext(query_id=1)).to_values()
        b = kernel(batch, EvalContext(query_id=2)).to_values()
        again = kernel(batch, EvalContext(query_id=1)).to_values()
        assert a != b
        assert a == again

    def test_rand_stream_continues_across_batches(self, batch):
        # rows [0,8) then [8,16) must equal one 16-row evaluation
        expr = RexCall("RAND", (lit(7, INT),), DOUBLE)
        kernel = compile_expr(expr)
        big = random_batch(5, n=16, null_rate=0.0)
        whole = kernel(big, CTX).to_values()
        lo = kernel(batch, CTX).to_values()
        hi = kernel(batch, EvalContext(now_s=CTX.now_s,
                                       query_id=CTX.query_id,
                                       row_offset=8)).to_values()
        assert whole[:8] == lo
        assert whole[8:] == hi

    def test_current_date_uses_virtual_clock(self, batch):
        expr = RexCall("CURRENT_DATE", (), DATE)
        out = compile_expr(expr)(batch, CTX).to_values()
        want = (datetime.date(1970, 1, 1)
                + datetime.timedelta(days=int(CTX.now_s // 86400)))
        assert out == [want] * batch.num_rows
        assert out == evaluate(expr, batch, CTX).to_values()

    def test_current_timestamp_millisecond_precision(self, batch):
        expr = RexCall("CURRENT_TIMESTAMP", (), TIMESTAMP)
        out = compile_expr(expr)(batch, CTX).to_values()
        assert out == evaluate(expr, batch, CTX).to_values()
        assert out[0].microsecond == 456000   # ms resolution, no finer

    def test_default_context_is_epoch(self, batch):
        expr = RexCall("CURRENT_DATE", (), DATE)
        out = evaluate(expr, batch).to_values()
        assert out[0] == datetime.date(1970, 1, 1)


class TestKernelCache:
    def test_hit_and_compile_counters(self):
        cache = KernelCache()
        expr = RexCall("+", (col(0, INT), lit(1, INT)), INT)
        k1 = cache.kernel(expr)
        k2 = cache.kernel(expr)
        assert k1 is k2
        assert cache.compiled == 1
        assert cache.hits == 1

    def test_typed_digest_discriminates_dtypes(self):
        int_expr = RexCall("+", (col(0, INT), lit(1, INT)), INT)
        dbl_expr = RexCall("+", (col(0, DOUBLE), lit(1, INT)), DOUBLE)
        assert typed_digest(int_expr) != typed_digest(dbl_expr)
        cache = KernelCache()
        cache.kernel(int_expr)
        cache.kernel(dbl_expr)
        assert cache.compiled == 2

    def test_kernel_and_predicate_cached_separately(self):
        cache = KernelCache()
        expr = make_call(">", col(0, INT), lit(0, INT))
        k = cache.kernel(expr)
        p = cache.predicate(expr)
        assert k is not p
        assert cache.compiled == 2
        assert cache.predicate(expr) is p

    def test_lru_eviction(self):
        cache = KernelCache(capacity=2)
        exprs = [RexCall("+", (col(0, INT), lit(k, INT)), INT)
                 for k in range(3)]
        cache.kernel(exprs[0])
        cache.kernel(exprs[1])
        cache.kernel(exprs[0])          # refresh 0: 1 is now LRU
        cache.kernel(exprs[2])          # evicts 1
        before = cache.compiled
        cache.kernel(exprs[0])          # still cached
        assert cache.compiled == before
        cache.kernel(exprs[1])          # recompiles
        assert cache.compiled == before + 1


class TestCompiledCorrectnessDetails:
    """Regression anchors for the subtle lowering decisions."""

    def test_modulo_sign_of_dividend(self):
        schema = Schema([Column("i", INT)])
        batch = VectorBatch.from_rows(
            schema, [(-7,), (7,), (-7,), (0,)])
        expr = RexCall("%", (col(0, INT), lit(3, INT)), INT)
        out = compile_expr(expr)(batch, CTX).to_values()
        assert out == [-1, 1, -1, 0]
        assert out == evaluate(expr, batch, CTX).to_values()

    def test_nullif_keeps_expression_dtype(self):
        schema = Schema([Column("i", INT)])
        batch = VectorBatch.from_rows(schema, [(1,), (2,)])
        expr = RexCall("NULLIF", (col(0, INT), lit(1, INT)), DOUBLE)
        out = compile_expr(expr)(batch, CTX)
        assert out.dtype == DOUBLE
        assert out.to_values() == [None, 2.0]
        ref = evaluate(expr, batch, CTX)
        assert ref.dtype == DOUBLE
        assert ref.to_values() == out.to_values()

    def test_extract_week_53_not_wrapped(self):
        # 2020-12-31 is ISO week 53; the old '% 52 + 1' gave week 2
        schema = Schema([Column("d", DATE)])
        days = (datetime.date(2020, 12, 31)
                - datetime.date(1970, 1, 1)).days
        jan1 = (datetime.date(2021, 1, 1)
                - datetime.date(1970, 1, 1)).days
        batch = VectorBatch.from_rows(schema, [(None,)] * 0 + [
            (datetime.date(2020, 12, 31),), (datetime.date(2021, 1, 1),),
            (datetime.date(2020, 6, 15),)])
        del days, jan1
        expr = RexCall("EXTRACT_WEEK", (col(0, DATE),), INT)
        out = compile_expr(expr)(batch, CTX).to_values()
        iso = [datetime.date(2020, 12, 31).isocalendar()[1],
               datetime.date(2021, 1, 1).isocalendar()[1],
               datetime.date(2020, 6, 15).isocalendar()[1]]
        assert out == iso == [53, 53, 25]
        assert out == evaluate(expr, batch, CTX).to_values()

    def test_division_by_zero_nulls_not_inf(self):
        schema = Schema([Column("f", DOUBLE)])
        batch = VectorBatch.from_rows(schema, [(1.0,), (0.0,), (-2.0,)])
        expr = RexCall("/", (col(0, DOUBLE), col(0, DOUBLE)), DOUBLE)
        out = compile_expr(expr)(batch, CTX).to_values()
        assert out == [1.0, None, 1.0]
        assert out == evaluate(expr, batch, CTX).to_values()

    def test_cast_garbage_under_null_does_not_crash(self):
        # object cells under a null flag may hold arbitrary garbage;
        # the CAST render path must not trip on them
        data = np.array(["1", object()], dtype=object)
        nulls = np.array([False, True])
        batch = VectorBatch(Schema([Column("s", STRING)]),
                            [ColumnVector(STRING, data, nulls)])
        expr = RexCall("CAST", (col(0, STRING),), INT)
        out = compile_expr(expr)(batch, CTX).to_values()
        assert out == [1, None]
