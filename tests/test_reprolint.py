"""repro.lint layer 2: the reprolint AST linter and its CLI.

Each rule gets positive and negative cases, suppression syntax is
exercised at line and file level, and — the merge gate — ``src/`` must
lint clean.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import Finding, RULES, lint_paths, lint_source
from repro.lint.reprolint import main as reprolint_main
from repro.lint.reprolint import report_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def lint(code, path="x.py", rules=None):
    return lint_source(textwrap.dedent(code), path, rules)


def rule_ids(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------------- #
class TestRL001LockDiscipline:
    def test_unguarded_mutation_flagged(self):
        findings = lint("""
            import threading
            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                def add(self, item):
                    self._items.append(item)
            """)
        assert rule_ids(findings) == ["RL001"]
        assert "self._items" in findings[0].message
        assert "Registry.add" in findings[0].message

    def test_guarded_mutation_ok(self):
        assert lint("""
            import threading
            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                def add(self, item):
                    with self._lock:
                        self._items.append(item)
            """) == []

    def test_constructor_exempt(self):
        assert lint("""
            class Registry:
                def __init__(self):
                    self._lock = object()
                    self._items = []
                    self._items.append(1)
            """) == []

    def test_class_without_lock_not_checked(self):
        assert lint("""
            class Bag:
                def __init__(self):
                    self.items = []
                def add(self, item):
                    self.items.append(item)
            """) == []

    def test_assignment_and_del_and_augassign(self):
        findings = lint("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def a(self):
                    self.x = 1
                def b(self):
                    self.n += 1
                def c(self):
                    del self.cache["k"]
            """)
        assert rule_ids(findings) == ["RL001"] * 3

    def test_nested_with_keeps_lock_held(self):
        assert lint("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def a(self, fh):
                    with self._lock:
                        with open("f") as handle:
                            self.x = 1
            """) == []

    def test_local_mutation_not_flagged(self):
        assert lint("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def a(self):
                    items = []
                    items.append(1)
                    return items
            """) == []


class TestRL002WallClock:
    CODE = """
        import time
        def cost():
            return time.perf_counter()
        """

    def test_flagged_inside_scoped_modules(self):
        findings = lint(self.CODE, path="src/repro/optimizer/foo.py")
        assert rule_ids(findings) == ["RL002"]
        assert "perf_counter" in findings[0].message

    def test_not_flagged_elsewhere(self):
        assert lint(self.CODE, path="src/repro/obs/tracing.py") == []

    def test_datetime_now_flagged(self):
        findings = lint("""
            from datetime import datetime
            def stamp():
                return datetime.now()
            """, path="src/repro/runtime/tez.py")
        assert rule_ids(findings) == ["RL002"]


class TestRL008ScrapeClock:
    CODE = """
        import time
        def sample():
            return time.time() + time.monotonic()
        """

    def test_flagged_inside_obs_and_llap(self):
        for path in ("src/repro/obs/cluster.py",
                     "src/repro/llap/cache.py"):
            findings = lint(self.CODE, path=path)
            assert rule_ids(findings) == ["RL008", "RL008"]
            assert "scrape-clock" in findings[0].message

    def test_shim_itself_exempt(self):
        assert lint(self.CODE, path="src/repro/obs/clock.py") == []

    def test_not_flagged_elsewhere(self):
        assert lint(self.CODE, path="src/repro/server/driver.py") == []

    def test_perf_counter_still_allowed_for_tracing(self):
        assert lint("""
            import time
            def span():
                return time.perf_counter()
            """, path="src/repro/obs/tracing.py") == []

    def test_bare_names_flagged(self):
        findings = lint("""
            from time import monotonic
            def sample():
                return monotonic()
            """, path="src/repro/llap/elevator.py")
        assert rule_ids(findings) == ["RL008"]

    def test_exec_scope_flags_time_calls(self):
        findings = lint(self.CODE, path="src/repro/exec/expr_eval.py")
        assert rule_ids(findings) == ["RL008", "RL008"]

    def test_datetime_factories_flagged_in_exec(self):
        findings = lint("""
            import datetime
            def current_date():
                return datetime.datetime.now()
            def today():
                return datetime.date.today()
            def short():
                from datetime import date, datetime
                return date.today(), datetime.utcnow()
            """, path="src/repro/exec/expr_eval.py")
        assert rule_ids(findings) == ["RL008"] * 4
        assert "EvalContext" in findings[0].message

    def test_datetime_constructors_allowed(self):
        # explicit-argument constructors and arithmetic are not clock
        # reads — only the now/utcnow/today factories are banned
        assert lint("""
            import datetime
            EPOCH = datetime.date(1970, 1, 1)
            def to_date(days):
                return EPOCH + datetime.timedelta(days=days)
            def other(obj):
                return obj.clock.now()
            """, path="src/repro/exec/expr_eval.py") == []

    def test_datetime_factories_flagged_in_obs(self):
        findings = lint("""
            import datetime
            def stamp():
                return datetime.datetime.utcnow()
            """, path="src/repro/obs/cluster.py")
        assert rule_ids(findings) == ["RL008"]


class TestRL009HttpServer:
    CODE = """
        from http.server import ThreadingHTTPServer
        def serve(handler):
            return ThreadingHTTPServer(("127.0.0.1", 0), handler)
        """

    def test_flagged_outside_endpoints(self):
        findings = lint(self.CODE, path="src/repro/obs/cluster.py")
        assert rule_ids(findings) == ["RL009"]
        assert "ThreadingHTTPServer" in findings[0].message

    def test_attribute_call_flagged(self):
        findings = lint("""
            import http.server
            def serve(handler):
                return http.server.ThreadingHTTPServer(
                    ("127.0.0.1", 0), handler)
            """, path="src/repro/server/driver.py")
        assert rule_ids(findings) == ["RL009"]

    def test_sanctioned_endpoints_exempt(self):
        for path in ("src/repro/obs/exposition.py",
                     "src/repro/service/endpoint.py"):
            assert lint(self.CODE, path=path) == []


class TestRL003FrozenMutation:
    def test_object_setattr_flagged_anywhere(self):
        findings = lint("""
            def patch(node):
                object.__setattr__(node, "schema", None)
            """, path="src/repro/server/driver.py")
        assert rule_ids(findings) == ["RL003"]

    def test_non_self_attr_assign_in_plan_pkg(self):
        findings = lint("""
            def tweak(node):
                node.count = 5
            """, path="src/repro/plan/relnodes.py")
        assert rule_ids(findings) == ["RL003"]

    def test_non_self_attr_assign_outside_plan_pkg_ok(self):
        assert lint("""
            def tweak(obj):
                obj.count = 5
            """, path="src/repro/server/driver.py") == []


class TestRL004BareExcept:
    def test_flagged(self):
        findings = lint("""
            def risky():
                try:
                    pass
                except:
                    pass
            """)
        assert rule_ids(findings) == ["RL004"]

    def test_typed_except_ok(self):
        assert lint("""
            def risky():
                try:
                    pass
                except ValueError:
                    pass
            """) == []


class TestRL005MutableDefaults:
    def test_list_literal_flagged(self):
        findings = lint("def f(items=[]):\n    return items\n")
        assert rule_ids(findings) == ["RL005"]

    def test_dict_call_flagged(self):
        findings = lint("def f(opts=dict()):\n    return opts\n")
        assert rule_ids(findings) == ["RL005"]

    def test_none_default_ok(self):
        assert lint("def f(items=None):\n    return items\n") == []

    def test_tuple_default_ok(self):
        assert lint("def f(items=()):\n    return items\n") == []


# --------------------------------------------------------------------------- #
class TestRL006ObsInternals:
    def test_reading_metric_internals_flagged(self):
        findings = lint(
            "def p95(hist):\n"
            "    return sorted(hist._values)[-1]\n",
            path="src/repro/llap/workload.py")
        assert rule_ids(findings) == ["RL006"]

    def test_registry_series_access_flagged(self):
        findings = lint(
            "def dump(registry):\n"
            "    return dict(registry._series)\n",
            path="src/repro/server/driver.py")
        assert rule_ids(findings) == ["RL006"]

    def test_self_access_ok(self):
        # a class managing its own state is not peeking at obs internals
        assert lint(
            "class Histogram:\n"
            "    def observe(self, v):\n"
            "        self._values.append(v)\n",
            path="src/repro/llap/cache.py") == []

    def test_inside_obs_package_ok(self):
        assert lint(
            "def p95(hist):\n"
            "    return sorted(hist._values)[-1]\n",
            path="src/repro/obs/registry.py") == []

    def test_snapshot_api_ok(self):
        assert lint(
            "def dump(registry):\n"
            "    return registry.snapshot()\n",
            path="src/repro/server/driver.py") == []

    def test_suppression(self):
        findings = lint(
            "def dump(registry):\n"
            "    return dict(registry._series)"
            "  # reprolint: disable=RL006\n",
            path="src/repro/server/driver.py")
        assert findings == []


# --------------------------------------------------------------------------- #
class TestRL010ManualLockCalls:
    def test_acquire_without_try_finally(self):
        findings = lint("""
            class C:
                def leak(self):
                    self._lock.acquire()
                    work()
                    self._lock.release()
        """, rules=["RL010"])
        assert rule_ids(findings) == ["RL010", "RL010"]

    def test_acquire_then_try_finally_release_ok(self):
        findings = lint("""
            class C:
                def good(self):
                    self._lock.acquire()
                    try:
                        work()
                    finally:
                        self._lock.release()
        """, rules=["RL010"])
        assert findings == []

    def test_acquire_inside_try_with_finally_release_ok(self):
        findings = lint("""
            class C:
                def good(self):
                    try:
                        self._lock.acquire()
                        work()
                    finally:
                        self._lock.release()
        """, rules=["RL010"])
        assert findings == []

    def test_release_in_except_handler_flagged(self):
        findings = lint("""
            class C:
                def bad(self):
                    try:
                        work()
                    except ValueError:
                        self._lock.release()
        """, rules=["RL010"])
        assert rule_ids(findings) == ["RL010"]

    def test_non_lock_receiver_ignored(self):
        findings = lint("""
            def f(sess):
                sess.pool.acquire()
                sess.pool.release()
        """, rules=["RL010"])
        assert findings == []

    def test_condition_receiver_covered(self):
        findings = lint("""
            class C:
                def bad(self):
                    self._cond.acquire()
                    work()
                    self._cond.release()
        """, rules=["RL010"])
        assert len(findings) == 2


class TestRL011ThreadConstruction:
    def test_thread_outside_sanctioned_modules(self):
        findings = lint("""
            import threading
            t = threading.Thread(target=work, daemon=True)
        """, path="src/repro/metastore/hms.py", rules=["RL011"])
        assert rule_ids(findings) == ["RL011"]

    def test_thread_in_service_with_daemon_ok(self):
        findings = lint("""
            import threading
            t = threading.Thread(target=work, daemon=True)
        """, path="src/repro/service/core.py", rules=["RL011"])
        assert findings == []

    def test_thread_in_service_without_daemon_flagged(self):
        findings = lint("""
            import threading
            t = threading.Thread(target=work)
        """, path="src/repro/service/core.py", rules=["RL011"])
        assert rule_ids(findings) == ["RL011"]

    def test_exposition_endpoint_sanctioned(self):
        findings = lint("""
            import threading
            t = threading.Thread(target=serve, daemon=True)
        """, path="src/repro/obs/exposition.py", rules=["RL011"])
        assert findings == []


# --------------------------------------------------------------------------- #
class TestRL012MetricHelp:
    def test_undocumented_metric_literal_flagged(self):
        findings = lint("""
            registry.counter("totally.new.metric", pool=p).inc()
        """, rules=["RL012"])
        assert rule_ids(findings) == ["RL012"]
        assert "totally.new.metric" in findings[0].message

    def test_catalog_entry_ok(self):
        findings = lint("""
            registry.counter("queries.total", op="select").inc()
        """, rules=["RL012"])
        assert findings == []

    def test_inline_help_ok(self):
        findings = lint("""
            registry.gauge("totally.new.metric",
                           help="documented inline").set(1)
        """, rules=["RL012"])
        assert findings == []

    def test_all_accessors_covered(self):
        code = """
            registry.counter("a.b")
            registry.gauge("c.d")
            registry.histogram("e.f")
            registry.register_callback("g.h", fn)
        """
        findings = lint(code, rules=["RL012"])
        assert rule_ids(findings) == ["RL012"] * 4

    def test_dynamic_name_is_blind_spot(self):
        # f-strings / variables are skipped by design (those sites
        # pass help= inline, which the runtime check still enforces)
        findings = lint("""
            registry.counter(f"dyn.{name}").inc()
            registry.counter(name).inc()
        """, rules=["RL012"])
        assert findings == []

    def test_undotted_literal_not_a_metric(self):
        findings = lint("""
            collections.Counter("abc")
        """, rules=["RL012"])
        assert findings == []

    def test_suppressible(self):
        findings = lint(
            'registry.counter("x.y")  # reprolint: disable=RL012\n',
            rules=["RL012"])
        assert findings == []


# --------------------------------------------------------------------------- #
class TestSuppression:
    def test_line_suppression(self):
        findings = lint(
            "def f(xs=[]):  # reprolint: disable=RL005\n"
            "    return xs\n")
        assert findings == []

    def test_line_suppression_wrong_rule_keeps_finding(self):
        findings = lint(
            "def f(xs=[]):  # reprolint: disable=RL001\n"
            "    return xs\n")
        assert rule_ids(findings) == ["RL005"]

    def test_file_suppression(self):
        findings = lint(
            "# reprolint: disable-file=RL005\n"
            "def f(xs=[]):\n"
            "    return xs\n")
        assert findings == []

    def test_rules_filter(self):
        code = ("def f(xs=[]):\n"
                "    try:\n"
                "        pass\n"
                "    except:\n"
                "        pass\n")
        assert rule_ids(lint(code, rules=["RL004"])) == ["RL004"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint("def f(:\n")
        assert rule_ids(findings) == ["RL000"]


class TestReportingAndCli:
    def test_json_report_shape(self):
        findings = [Finding("RL004", "a.py", 3, 0, "bare except")]
        doc = json.loads(report_json(findings))
        assert doc["tool"] == "reprolint"
        assert doc["total"] == 1
        assert doc["counts"] == {"RL004": 1}
        assert doc["findings"][0]["path"] == "a.py"
        assert set(doc["rules"]) == set(RULES)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    return x\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    return x\n")
        assert reprolint_main([str(clean)]) == 0
        assert reprolint_main([str(dirty)]) == 1
        capsys.readouterr()
        assert reprolint_main(["--format", "json", str(dirty)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 1

    def test_cli_script_runs(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    return x\n")
        tool = os.path.join(REPO_ROOT, "tools", "reprolint")
        proc = subprocess.run(
            [sys.executable, tool, "--format", "json", str(dirty)],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["total"] == 1


# --------------------------------------------------------------------------- #
class TestRepoIsClean:
    def test_src_has_zero_findings(self):
        """The merge gate: the shipped source tree lints clean (real
        fixes or documented suppressions, never silent findings)."""
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tools_reprolint_exists_and_is_executable(self):
        tool = os.path.join(REPO_ROOT, "tools", "reprolint")
        assert os.path.exists(tool)
        assert os.access(tool, os.X_OK)
