"""Federation pushdown edge cases: partial consumption, residual

operators, pushdown flag, and ANALYZE/DDL corners of the driver.
"""

import pytest

import repro
from repro.config import HiveConf
from repro.errors import AnalysisError, CatalogError
from repro.federation import (DruidEngine, DruidStorageHandler,
                              JdbcStorageHandler)
from repro.plan.relnodes import Filter, Project, Sort, find_scans, walk


@pytest.fixture
def druid_session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    server.register_storage_handler("druid",
                                    DruidStorageHandler(DruidEngine()))
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute(
        "CREATE EXTERNAL TABLE dt (d DATE, dim STRING, m DOUBLE) "
        "STORED BY 'druid'")
    session.execute(
        "INSERT INTO dt VALUES (DATE '2018-01-05', 'a', 1.0), "
        "(DATE '2018-01-06', 'bb', 2.0), (DATE '2018-02-01', 'a', 4.0)")
    return session


class TestPartialConsumption:
    def test_filter_pushed_projection_stays(self, druid_session):
        """An expression projection cannot push: it stays above the

        pushed scan and still computes correctly."""
        result = druid_session.execute(
            "SELECT m * 2 FROM dt WHERE dim = 'a' ORDER BY 1")
        assert result.rows == [(2.0,), (8.0,)]
        scans = find_scans(result.optimized.root)
        assert scans[0].pushed_query is not None
        assert any(isinstance(n, Project)
                   for n in walk(result.optimized.root))

    def test_unpushable_filter_splits(self, druid_session):
        """LIKE cannot translate: the whole filter stays in Hive but the

        scan itself is still pushed as a Druid scan query."""
        result = druid_session.execute(
            "SELECT COUNT(*) FROM dt WHERE dim LIKE 'b%'")
        assert result.rows == [(1,)]
        assert any(isinstance(n, Filter)
                   for n in walk(result.optimized.root))

    def test_sort_without_aggregate_not_pushed(self, druid_session):
        result = druid_session.execute(
            "SELECT dim FROM dt ORDER BY m DESC LIMIT 2")
        assert result.rows == [("a",), ("bb",)]
        assert any(isinstance(n, Sort)
                   for n in walk(result.optimized.root))

    def test_flag_disables_pushdown(self, druid_session):
        druid_session.conf.federation_pushdown = False
        result = druid_session.execute(
            "SELECT dim, SUM(m) FROM dt GROUP BY dim ORDER BY dim")
        assert result.rows == [("a", 5.0), ("bb", 2.0)]
        assert all(s.pushed_query is None
                   for s in find_scans(result.optimized.root))

    def test_avg_not_pushed_but_correct(self, druid_session):
        result = druid_session.execute(
            "SELECT dim, AVG(m) FROM dt GROUP BY dim ORDER BY dim")
        assert result.rows == [("a", 2.5), ("bb", 2.0)]


class TestJdbcEdges:
    @pytest.fixture
    def session(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        server.register_storage_handler("jdbc", JdbcStorageHandler())
        s = server.connect()
        s.conf.results_cache_enabled = False
        s.execute("CREATE EXTERNAL TABLE jt (k INT, v STRING) "
                  "STORED BY 'jdbc'")
        s.execute("INSERT INTO jt VALUES (1, 'x'), (2, 'y''z')")
        return s

    def test_quote_escaping_in_generated_sql(self, session):
        result = session.execute("SELECT k FROM jt WHERE v = 'y''z'")
        assert result.rows == [(2,)]

    def test_join_between_two_jdbc_tables(self, session):
        session.execute("CREATE EXTERNAL TABLE jt2 (k INT, w DOUBLE) "
                        "STORED BY 'jdbc'")
        session.execute("INSERT INTO jt2 VALUES (1, 0.5), (2, 0.7)")
        rows = session.execute(
            "SELECT jt.v, jt2.w FROM jt, jt2 WHERE jt.k = jt2.k "
            "ORDER BY jt.k").rows
        assert rows == [("x", 0.5), ("y'z", 0.7)]

    def test_missing_handler_errors(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        session = server.connect()
        with pytest.raises(CatalogError):
            session.execute("CREATE EXTERNAL TABLE z (a INT) "
                            "STORED BY 'jdbc'")


class TestDriverCorners:
    def test_analyze_table_recomputes_stats(self, loaded_session):
        server = loaded_session.server
        table = server.hms.get_table("t")
        # wipe stats, then ANALYZE restores them
        from repro.metastore.stats import TableStatistics
        server.hms.set_statistics(table, TableStatistics())
        result = loaded_session.execute(
            "ANALYZE TABLE t COMPUTE STATISTICS FOR COLUMNS")
        assert result.rows_affected == 5
        stats = server.hms.get_statistics(table)
        assert stats.row_count == 5
        assert stats.column("a").max_value == 5

    def test_describe_materialized_view(self, loaded_session):
        loaded_session.execute(
            "CREATE MATERIALIZED VIEW mv AS SELECT b, COUNT(*) c "
            "FROM t GROUP BY b")
        rows = loaded_session.execute("DESCRIBE mv").rows
        assert [r[0] for r in rows] == ["b", "c"]

    def test_drop_table_on_mv_guard(self, loaded_session):
        loaded_session.execute(
            "CREATE MATERIALIZED VIEW mv AS SELECT b FROM t")
        with pytest.raises(CatalogError):
            loaded_session.execute("DROP MATERIALIZED VIEW t")
        loaded_session.execute("DROP MATERIALIZED VIEW mv")
        assert "mv" not in loaded_session.execute("SHOW TABLES").rows

    def test_explain_non_select_rejected(self, loaded_session):
        with pytest.raises(AnalysisError):
            loaded_session.execute("EXPLAIN INSERT INTO t VALUES "
                                   "(1,'x',1.0,DATE '2020-01-01')")

    def test_explain_includes_dag(self, loaded_session):
        rows = loaded_session.execute(
            "EXPLAIN SELECT b, COUNT(*) FROM t GROUP BY b").rows
        text = "\n".join(r[0] for r in rows)
        assert "-- DAG:" in text
        assert "Map 1" in text and "Reducer 1" in text
