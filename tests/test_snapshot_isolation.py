"""Multi-session ACID semantics through the SQL layer: snapshot

isolation, write conflicts, compaction under concurrent readers.
"""

import pytest

import repro
from repro.config import HiveConf
from repro.errors import WriteConflictError


@pytest.fixture
def server():
    return repro.HiveServer2(HiveConf.v3_profile())


class TestSnapshotIsolation:
    def test_readers_see_consistent_counts(self, server):
        writer = server.connect()
        reader = server.connect()
        writer.execute("CREATE TABLE t (a INT)")
        writer.execute("INSERT INTO t VALUES (1), (2)")
        assert reader.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
        writer.execute("INSERT INTO t VALUES (3)")
        # a *new* query sees the new data (autocommit snapshots)
        reader.conf.results_cache_enabled = False
        assert reader.execute("SELECT COUNT(*) FROM t").rows == [(3,)]

    def test_update_then_read_other_session(self, server):
        a = server.connect()
        b = server.connect()
        a.execute("CREATE TABLE t (k INT, v STRING)")
        a.execute("INSERT INTO t VALUES (1, 'before')")
        a.execute("UPDATE t SET v = 'after' WHERE k = 1")
        assert b.execute("SELECT v FROM t").rows == [("after",)]

    def test_write_conflict_raises(self, server):
        """Two concurrent UPDATE transactions on one (unpartitioned)

        table: the second committer loses (first commit wins)."""
        session = server.connect()
        session.execute("CREATE TABLE t (k INT, v INT)")
        session.execute("INSERT INTO t VALUES (1, 0)")
        tm = server.hms.txn_manager
        table = server.hms.get_table("t")
        loser = tm.open_transaction()
        tm.record_write_set(loser, table.qualified_name, (), "update")
        # the SQL-level update opens, writes and commits in between
        session.execute("UPDATE t SET v = 1")
        with pytest.raises(WriteConflictError):
            tm.commit(loser)

    def test_aborted_write_invisible(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1)")
        # simulate a writer that dies before commit
        from repro.acid.writer import AcidWriter
        tm = server.hms.txn_manager
        table = server.hms.get_table("t")
        txn = tm.open_transaction()
        wid = tm.allocate_write_id(txn, table.qualified_name)
        AcidWriter(server.fs).write_insert_delta(
            table.location, wid, table.schema, [(999,)])
        tm.abort(txn)
        session.conf.results_cache_enabled = False
        assert session.execute("SELECT COUNT(*) FROM t").rows == [(1,)]

    def test_compaction_transparent_to_queries(self, server):
        session = server.connect()
        session.conf.results_cache_enabled = False
        session.execute("CREATE TABLE t (a INT)")
        for i in range(12):
            session.execute(f"INSERT INTO t VALUES ({i})")
        session.execute("DELETE FROM t WHERE a % 3 = 0")
        before = session.execute("SELECT a FROM t ORDER BY a").rows
        assert server.run_compaction() >= 1
        after = session.execute("SELECT a FROM t ORDER BY a").rows
        assert before == after
        # compaction actually reduced the directory count
        table = server.hms.get_table("t")
        assert len(server.fs.list_dirs(table.location)) <= 2

    def test_multi_insert_visibility_is_atomic_per_statement(self, server):
        session = server.connect()
        session.conf.results_cache_enabled = False
        session.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT)")
        # one INSERT spanning two partitions commits atomically: both
        # partitions carry the same WriteId
        session.execute("INSERT INTO p VALUES (1, 10), (2, 20)")
        table = server.hms.get_table("p")
        dirs = []
        for part in table.list_partitions():
            dirs.extend(d.rsplit("/", 1)[-1]
                        for d in server.fs.list_dirs(part.location))
        assert dirs == ["delta_1_1", "delta_1_1"]


class TestAcidAblationFlags:
    def test_non_acid_warehouse(self):
        server = repro.HiveServer2(HiveConf.legacy_profile())
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        assert not server.hms.get_table("t").is_acid
        session.execute("INSERT INTO t VALUES (1), (2)")
        assert session.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
