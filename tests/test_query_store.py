"""Query Store: fingerprint-level workload history (repro.obs.query_store).

Covers the identity layer (canonicalization, fingerprints, plan
hashes), the per-(fingerprint, plan) aggregation with exact bounded
percentiles, the two event kinds (plan changes with structural diffs,
latency regressions against the windowed baseline), the SQL surfaces
(``sys.query_store*``, ``EXPLAIN HISTORY``, the SET knobs), the WM
``regression(...)`` trigger path, and the two hard cases: determinism
under seeded fault injection and exact counts under 16-way concurrency.
"""

import threading

import pytest

import repro
from repro.config import HiveConf
from repro.errors import WorkloadManagementError
from repro.obs import fingerprint as fp
from repro.obs.query_log import QueryLogEntry
from repro.obs.query_store import QueryStore
from repro.obs.registry import METRIC_HELP


# --------------------------------------------------------------------------- #
# identity: canonicalization / fingerprints / plan hashes

class TestFingerprint:
    def test_literals_stripped_and_case_folded(self):
        assert fp.canonicalize(
            "SELECT a, b FROM T where A = 5 AND b = 'x';") == \
            "SELECT a , b FROM t WHERE a = ? AND b = ?"

    def test_same_shape_same_fingerprint(self):
        assert fp.fingerprint("SELECT * FROM t WHERE a = 5") == \
            fp.fingerprint("select * from T where a = 99")

    def test_different_shape_different_fingerprint(self):
        assert fp.fingerprint("SELECT a FROM t") != \
            fp.fingerprint("SELECT b FROM t")

    def test_unparseable_falls_back_to_text(self):
        # parse failures canonicalize by whitespace only — still a
        # stable identity, never an exception
        assert fp.canonicalize("SELECT   FROM\n WHERE !!!") == \
            "SELECT FROM WHERE ! ! !"
        assert len(fp.fingerprint("not sql at all")) == 12

    def test_plan_diff_structural(self):
        diff = fp.plan_diff("a\nb\nc", "a\nX\nc")
        assert "-b" in diff and "+X" in diff
        assert fp.plan_diff("same", "same") == ""

    def test_plan_hash_stable(self):
        assert fp.hash_plan_text("TableScan t") == \
            fp.hash_plan_text("TableScan t")
        assert fp.hash_plan_text("TableScan t") != \
            fp.hash_plan_text("TableScan u")


# --------------------------------------------------------------------------- #
# the store itself, fed synthetic entries

def entry(i, total_s, *, started_s=None, status="ok", from_cache=False,
          reexecuted=False, rows=10):
    return QueryLogEntry(
        query_id=i, statement="SELECT ...", status=status,
        from_cache=from_cache, reexecuted=reexecuted, rows_produced=rows,
        started_s=total_s * i if started_s is None else started_s,
        total_s=total_s, queue_s=0.01, wall_ms=1.0,
        disk_bytes=100, cache_bytes=50)


class TestQueryStoreUnit:
    def test_aggregation_counts(self):
        store = QueryStore()
        for i in range(4):
            store.record(entry(i, 1.0), fingerprint="fp1",
                         plan_hash="p1", now_s=float(i))
        store.record(entry(4, 1.0, status="error"), fingerprint="fp1",
                     plan_hash="p1", now_s=4.0)
        store.record(entry(5, 1.0, from_cache=True), fingerprint="fp1",
                     plan_hash="p1", now_s=5.0)
        store.record(entry(6, 1.0, reexecuted=True), fingerprint="fp1",
                     plan_hash="p1", now_s=6.0)
        (row,) = store.rows_store()
        fingerprint, _stmt, plans, execs, errors, retries, rc_hits = \
            row[:7]
        assert (fingerprint, plans, execs) == ("fp1", 1, 7)
        assert (errors, retries, rc_hits) == (1, 1, 1)
        assert store.recorded == 7

    def test_cached_and_failed_not_in_latency_window(self):
        store = QueryStore(window_s=1000.0)
        store.record(entry(0, 1.0), fingerprint="f", now_s=0.0)
        store.record(entry(1, 50.0, status="error"), fingerprint="f",
                     now_s=1.0)
        store.record(entry(2, 50.0, from_cache=True), fingerprint="f",
                     now_s=2.0)
        (row,) = store.rows_store()
        p95 = row[12]
        assert p95 == 1.0      # the poison samples were excluded

    def test_window_rollover_builds_baseline(self):
        store = QueryStore(window_s=10.0, regression_min_samples=1)
        # bucket 0
        store.record(entry(0, 1.0, started_s=1.0), fingerprint="f",
                     now_s=1.0)
        # bucket 1 -> the old current becomes baseline
        store.record(entry(1, 1.0, started_s=11.0), fingerprint="f",
                     now_s=11.0)
        stats = store._fps["f"]
        assert list(stats.baseline) == [1.0]
        assert stats.current == [1.0]

    def test_regression_event_deduped(self):
        store = QueryStore(window_s=10.0, regression_threshold=1.5,
                           regression_min_samples=2)
        for i in range(4):       # bucket 0: the fast baseline
            store.record(entry(i, 1.0, started_s=float(i)),
                         fingerprint="f", now_s=float(i))
        for i in range(4, 8):    # bucket 1: 4x slower
            store.record(entry(i, 4.0, started_s=10.0 + i),
                         fingerprint="f", now_s=10.0 + i)
        events = [e for e in store.events() if e.kind == "regression"]
        assert len(events) == 1
        event = events[0]
        assert event.before_p95_s == 1.0
        assert event.after_p95_s == 4.0
        assert event.factor == pytest.approx(4.0)
        assert event.count >= 2          # repeat detections bumped it
        assert store.regressions == 1

    def test_no_regression_below_threshold(self):
        store = QueryStore(window_s=10.0, regression_threshold=1.5,
                           regression_min_samples=2)
        for i in range(4):
            store.record(entry(i, 1.0, started_s=float(i)),
                         fingerprint="f", now_s=float(i))
        for i in range(4, 8):    # 1.2x — inside the threshold
            store.record(entry(i, 1.2, started_s=10.0 + i),
                         fingerprint="f", now_s=10.0 + i)
        assert [e for e in store.events()
                if e.kind == "regression"] == []

    def test_plan_change_event_with_diff(self):
        store = QueryStore()
        store.record(entry(0, 1.0), fingerprint="f", plan_hash="old",
                     plan_explain="TableScan t\n  Filter a > ?",
                     now_s=0.0)
        store.record(entry(1, 1.0), fingerprint="f", plan_hash="new",
                     plan_explain="TableScan t\n  MV rewrite mv1",
                     now_s=1.0)
        (event,) = [e for e in store.events()
                    if e.kind == "plan_change"]
        assert (event.old_plan_hash, event.new_plan_hash) == \
            ("old", "new")
        assert "Filter" in event.detail and "MV rewrite" in event.detail
        assert store.plan_changes == 1
        # flapping back and forth dedups per (old, new) direction
        store.record(entry(2, 1.0), fingerprint="f", plan_hash="old",
                     plan_explain="x", now_s=2.0)
        store.record(entry(3, 1.0), fingerprint="f", plan_hash="new",
                     plan_explain="y", now_s=3.0)
        changes = [e for e in store.events() if e.kind == "plan_change"]
        assert len(changes) == 2
        assert changes[0].count == 2     # old->new seen twice

    def test_capacity_eviction_lru(self):
        store = QueryStore(capacity=2)
        store.record(entry(0, 1.0), fingerprint="a", now_s=1.0)
        store.record(entry(1, 1.0), fingerprint="b", now_s=2.0)
        store.record(entry(2, 1.0), fingerprint="c", now_s=3.0)
        assert store.evictions == 1
        assert {row[0] for row in store.rows_store()} == {"b", "c"}

    def test_max_events_bounded(self):
        store = QueryStore(max_events=2)
        for i in range(4):
            store.record(entry(2 * i, 1.0), fingerprint=f"f{i}",
                         plan_hash="p1", plan_explain="a", now_s=0.0)
            store.record(entry(2 * i + 1, 1.0), fingerprint=f"f{i}",
                         plan_hash="p2", plan_explain="b", now_s=1.0)
        assert len(store.events()) == 2
        assert store.events_retained() == 2

    def test_disabled_store_records_nothing(self):
        store = QueryStore()
        store.enabled = False
        store.record(entry(0, 1.0), fingerprint="f", now_s=0.0)
        store.note_plan_cache("default", "SELECT 1", True)
        assert store.rows_store() == []
        assert len(store) == 0

    def test_plan_rows_shape(self):
        store = QueryStore()
        store.record(entry(0, 2.0), fingerprint="f", plan_hash="p1",
                     now_s=0.0)
        (row,) = store.rows_plans()
        assert row[0] == "f" and row[1] == "p1"
        assert row[2] == 1               # executions
        assert row[9] == 2.0             # p95
        assert row[11] == 2.0            # mean_s


# --------------------------------------------------------------------------- #
# through the session: sys tables, EXPLAIN HISTORY, knobs

RECURRING = "SELECT a, COUNT(*) FROM t WHERE a > 0 GROUP BY a"


def run_workload(session, times=6, sql=RECURRING):
    session.execute("SET hive.query.results.cache.enabled=false")
    for _ in range(times):
        session.execute(sql)


class TestSysTables:
    def test_query_store_row(self, loaded_session):
        run_workload(loaded_session)
        rows = loaded_session.execute(
            "SELECT fingerprint, plans, executions, plan_cache_hits, "
            "plan_cache_misses FROM sys.query_store "
            "WHERE executions >= 6").rows
        assert len(rows) == 1
        fingerprint, plans, execs, hits, misses = rows[0]
        assert plans == 1 and execs == 6
        # first execution compiles (miss), the rest hit the plan cache
        assert misses >= 1 and hits == execs - misses

    def test_literals_conflate_to_one_fingerprint(self, loaded_session):
        loaded_session.execute(
            "SET hive.query.results.cache.enabled=false")
        for threshold in (0, 1, 2):
            loaded_session.execute(
                f"SELECT a, COUNT(*) FROM t WHERE a > {threshold} "
                "GROUP BY a")
        rows = loaded_session.execute(
            "SELECT executions FROM sys.query_store "
            "WHERE executions >= 3").rows
        assert rows == [(3,)]

    def test_joinable_to_query_log(self, loaded_session):
        run_workload(loaded_session, times=3)
        rows = loaded_session.execute(
            "SELECT COUNT(*) FROM sys.query_log l "
            "JOIN sys.query_store s ON l.fingerprint = s.fingerprint "
            "WHERE s.executions >= 3").rows
        assert rows == [(3,)]

    def test_plans_table(self, loaded_session):
        run_workload(loaded_session, times=2)
        rows = loaded_session.execute(
            "SELECT fingerprint, plan_hash, executions "
            "FROM sys.query_store_plans WHERE executions >= 2").rows
        assert len(rows) == 1
        assert len(rows[0][1]) == 12     # a plan hash, not empty

    def test_events_table_empty_without_findings(self, loaded_session):
        run_workload(loaded_session, times=2)
        assert loaded_session.execute(
            "SELECT COUNT(*) FROM sys.query_store_events").rows == [(0,)]


class TestExplainHistory:
    def test_renders_history(self, loaded_session):
        run_workload(loaded_session, times=4)
        lines = [row[0] for row in loaded_session.execute(
            "EXPLAIN HISTORY " + RECURRING).rows]
        text = "\n".join(lines)
        assert "fingerprint:" in text
        assert "executions: 4" in text
        assert "plans: 1" in text
        assert "latency p50/p95/p99" in text
        assert "[current]" in text

    def test_unknown_statement(self, loaded_session):
        lines = [row[0] for row in loaded_session.execute(
            "EXPLAIN HISTORY SELECT x FROM u WHERE k = 7777").rows]
        assert len(lines) == 1
        assert lines[0].startswith("no history for fingerprint")

    def test_explain_history_unparses(self):
        from repro.sql.parser import parse_statement
        stmt = parse_statement("EXPLAIN HISTORY SELECT a FROM t")
        assert stmt.history
        assert stmt.unparse().startswith("EXPLAIN HISTORY")


class TestKnobs:
    def test_set_pushes_live(self, loaded_session, server):
        loaded_session.execute(
            "SET hive.query.store.regression.threshold=2.5")
        assert server.obs.query_store.regression_threshold == 2.5
        loaded_session.execute("SET hive.query.store.capacity=64")
        assert server.obs.query_store.capacity == 64

    def test_disable_stops_recording(self, loaded_session, server):
        run_workload(loaded_session, times=2)
        before = server.obs.query_store.recorded
        loaded_session.execute("SET hive.query.store.enabled=false")
        loaded_session.execute(RECURRING)
        assert server.obs.query_store.recorded == before

    def test_capacity_shrink_trims(self, loaded_session, server):
        run_workload(loaded_session, times=2)
        assert len(server.obs.query_store) > 1
        loaded_session.execute("SET hive.query.store.capacity=1")
        assert len(server.obs.query_store) == 1

    def test_conf_validation(self):
        conf = HiveConf.v3_profile()
        conf.qstore_regression_threshold = 1.0
        with pytest.raises(Exception):
            conf.validate()


# --------------------------------------------------------------------------- #
# the acceptance demos: plan change and regression, end to end

class TestPlanChangeE2E:
    def test_mv_rewrite_changes_plan(self, loaded_session, server):
        sql = "SELECT a, COUNT(*) FROM t GROUP BY a"
        loaded_session.execute(
            "SET hive.query.results.cache.enabled=false")
        for _ in range(3):
            loaded_session.execute(sql)
        loaded_session.execute(
            "CREATE MATERIALIZED VIEW mv_pc AS "
            "SELECT a, COUNT(*) FROM t GROUP BY a")
        loaded_session.execute(sql)
        events = [e for e in server.obs.query_store.events()
                  if e.kind == "plan_change"]
        assert len(events) == 1
        event = events[0]
        assert event.old_plan_hash and event.new_plan_hash
        assert event.old_plan_hash != event.new_plan_hash
        assert event.detail.strip()      # a non-empty structural diff
        # EXPLAIN HISTORY shows both plans and the diff
        text = "\n".join(row[0] for row in loaded_session.execute(
            "EXPLAIN HISTORY " + sql).rows)
        assert event.old_plan_hash in text
        assert event.new_plan_hash in text
        assert "plans: 2" in text
        assert "plan diff:" in text


class TestRegressionE2E:
    def test_slowdown_fires_exactly_one_event(self, loaded_session,
                                              server):
        # one bucket per execution: the tiny window turns every run
        # into "current" and all predecessors into baseline
        loaded_session.execute("SET hive.query.store.window.s=0.0001")
        loaded_session.execute(
            "SET hive.query.store.regression.min.samples=1")
        run_workload(loaded_session, times=6)
        # slow the runtime down (virtual cost, deterministic)
        loaded_session.execute(
            "SET hive.vectorized.execution.enabled=false")
        loaded_session.execute("SET hive.llap.enabled=false")
        for _ in range(3):
            loaded_session.execute(RECURRING)
        events = [e for e in server.obs.query_store.events()
                  if e.kind == "regression"]
        assert len(events) == 1          # deduped across repeats
        event = events[0]
        assert event.factor > 1.5
        assert event.after_p95_s > event.before_p95_s > 0.0
        rows = loaded_session.execute(
            "SELECT kind, before_p95_s, after_p95_s, factor "
            "FROM sys.query_store_events").rows
        assert rows == [("regression", event.before_p95_s,
                         event.after_p95_s, event.factor)]
        text = "\n".join(row[0] for row in loaded_session.execute(
            "EXPLAIN HISTORY " + RECURRING).rows)
        assert "regression: p95" in text

    def test_wm_regression_trigger_kills(self, server):
        session = server.connect(application="bi_app")
        for sql in [
            "CREATE RESOURCE PLAN guard",
            "CREATE POOL guard.bi WITH alloc_fraction=1.0, "
            "query_parallelism=4",
            "CREATE RULE stop_regressed IN guard "
            "WHEN regression(query.latency_s) > 2 THEN KILL",
            "ADD RULE stop_regressed TO bi",
            "CREATE APPLICATION MAPPING bi_app IN guard TO bi",
            "ALTER RESOURCE PLAN guard ENABLE ACTIVATE",
        ]:
            session.execute(sql)
        session.execute("CREATE TABLE r (a INT)")
        session.execute("INSERT INTO r VALUES (1), (2), (3)")
        session.execute("SET hive.query.results.cache.enabled=false")
        session.execute("SET hive.query.store.window.s=0.0001")
        session.execute(
            "SET hive.query.store.regression.min.samples=1")
        sql = "SELECT COUNT(*) FROM r WHERE a > 0"
        for _ in range(5):
            session.execute(sql)
        # slow the cluster down without leaving LLAP (an unmanaged
        # query would skip WM trigger checks entirely)
        session.execute("SET hive.faults.slow.node.rate=1.0")
        session.execute("SET hive.faults.slow.node.multiplier=30")
        # first slow run records the regressed sample...
        session.execute(sql)
        # ...the next one sees regression_factor > 2 mid-flight: KILL
        with pytest.raises(WorkloadManagementError):
            session.execute(sql)


# --------------------------------------------------------------------------- #
# determinism and concurrency

class TestDeterminismUnderFaults:
    def _run(self):
        conf = HiveConf.v3_profile()
        conf.faults_seed = 42
        conf.faults_task_fail_rate = 0.5
        conf.validate()
        server = repro.HiveServer2(conf)
        session = server.connect()
        session.conf.results_cache_enabled = False
        session.execute("CREATE TABLE s (region STRING, amount INT)")
        # separate INSERTs -> separate files -> multi-task vertices,
        # so injected task failures have sites to strike
        for values in ("('east', 10), ('west', 20)",
                       "('east', 30), ('north', 5)",
                       "('west', 40), ('south', 15)",
                       "('north', 25), ('east', 50)"):
            session.execute(f"INSERT INTO s VALUES {values}")
        for _ in range(6):
            session.execute("SELECT region, SUM(amount) FROM s "
                            "GROUP BY region ORDER BY region")
        rows = [row for row in server.obs.query_store.rows_store()
                if row[3] >= 6]
        return server, rows

    def test_retries_never_double_count(self):
        server, rows = self._run()
        assert len(rows) == 1
        executions = rows[0][3]
        # injected task retries happen *inside* an execution; the
        # store must still see exactly six
        assert executions == 6
        assert server.obs.registry.total("runtime.failed_task_attempts") \
            > 0          # the faults actually struck
        log_count = sum(
            1 for e in server.obs.query_log.all_entries()
            if e.fingerprint == rows[0][0])
        assert log_count == 6

    def test_same_seed_same_store(self):
        _, first = self._run()
        _, second = self._run()
        # identical seed -> identical aggregates, percentiles included;
        # mean_wall_ms (index 15) is wall clock and legitimately varies
        def virtual(rows):
            return [row[:15] + row[16:] for row in rows]
        assert virtual(first) == virtual(second)


class TestConcurrentExactCounts:
    def test_sixteen_threads_exact_counts(self):
        server = repro.HiveServer2(HiveConf.v3_profile())
        setup = server.connect()
        setup.conf.results_cache_enabled = False
        setup.execute("CREATE TABLE c (a INT, b INT)")
        setup.execute("INSERT INTO c VALUES (1, 10), (2, 20), (3, 30)")
        setup.execute("SELECT SUM(b) FROM c WHERE a > 0")
        setup.execute("SELECT COUNT(*) FROM c WHERE b < 100")
        sum_fp = [e.fingerprint
                  for e in server.obs.query_log.all_entries()
                  if "SUM" in e.statement][-1]
        count_fp = [e.fingerprint
                    for e in server.obs.query_log.all_entries()
                    if "COUNT" in e.statement][-1]
        errors = []

        def worker(index):
            try:
                own = server.connect()
                own.conf.results_cache_enabled = False
                for seq in range(3):
                    # distinct literals, same fingerprints
                    own.execute(f"SELECT SUM(b) FROM c "
                                f"WHERE a > {index % 3}")
                    own.execute(f"SELECT COUNT(*) FROM c "
                                f"WHERE b < {100 + index + seq}")
            except Exception as error:   # pragma: no cover - surfaced
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        by_fp = {row[0]: row for row in
                 server.obs.query_store.rows_store()}
        # exact: 1 warm-up + 16 threads x 3 each, nothing lost or
        # double-counted under contention
        assert by_fp[sum_fp][3] == 1 + 16 * 3
        assert by_fp[count_fp][3] == 1 + 16 * 3
        assert by_fp[sum_fp][4] == 0     # no errors


# --------------------------------------------------------------------------- #
# metrics exposure + help audit (satellite: no undocumented series)

class TestMetricsAndUi:
    def test_qstore_gauges(self, loaded_session, server):
        run_workload(loaded_session, times=3)
        registry = server.obs.registry
        assert registry.value("qstore.fingerprints") >= 1
        assert registry.value("qstore.recorded") >= 3
        assert registry.value("qstore.plans") >= 1

    def test_qstore_metrics_documented(self):
        for name in ("qstore.fingerprints", "qstore.plans",
                     "qstore.events", "qstore.recorded",
                     "qstore.plan_changes", "qstore.regressions",
                     "qstore.evictions"):
            assert METRIC_HELP.get(name), name

    def test_every_registered_metric_has_help(self, loaded_session,
                                              server):
        """The METRIC_HELP coverage audit: after a real workload has
        touched every instrumentation site reachable here, no metric
        may expose an empty HELP string."""
        run_workload(loaded_session, times=2)
        registry = server.obs.registry
        undocumented = [name for name in registry.names()
                        if not registry.describe(name)]
        assert undocumented == []
        for name, rows in registry.snapshot().items():
            for row in rows:
                assert row["help"], name

    def test_ui_section(self, loaded_session, server):
        from repro.obs.exposition import render_ui
        run_workload(loaded_session, times=3)
        section = render_ui(server.obs)["query_store"]
        assert section["fingerprints"] >= 1
        assert section["top"][0]["executions"] >= 3
        assert "events" in section
