"""Multi-statement transactions (the §9 roadmap item, implemented).

BEGIN/START TRANSACTION ... COMMIT/ROLLBACK spanning several DML
statements, with read-your-own-writes, snapshot-stable reads, deferred
statistics, per-statement delta directories (stmtId), and
first-commit-wins conflicts at COMMIT.
"""

import pytest

import repro
from repro.errors import TransactionError, WriteConflictError


@pytest.fixture
def env():
    server = repro.HiveServer2()
    session = server.connect()
    session.conf.results_cache_enabled = False
    session.execute("CREATE TABLE t (a INT, b STRING)")
    session.execute("INSERT INTO t VALUES (1, 'base'), (2, 'base')")
    other = server.connect()
    other.conf.results_cache_enabled = False
    return server, session, other


class TestLifecycle:
    def test_read_your_own_writes(self, env):
        _, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (3, 'new')")
        rows = session.execute("SELECT a FROM t ORDER BY a").rows
        assert rows == [(1,), (2,), (3,)]
        session.execute("COMMIT")

    def test_isolation_until_commit(self, env):
        _, session, other = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (3, 'new')")
        session.execute("UPDATE t SET b = 'upd' WHERE a = 1")
        assert other.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
        assert other.execute(
            "SELECT b FROM t WHERE a = 1").rows == [("base",)]
        session.execute("COMMIT")
        assert other.execute("SELECT COUNT(*) FROM t").rows == [(3,)]
        assert other.execute(
            "SELECT b FROM t WHERE a = 1").rows == [("upd",)]

    def test_rollback_discards_everything(self, env):
        _, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (3, 'x')")
        session.execute("DELETE FROM t WHERE a = 1")
        session.execute("ROLLBACK")
        rows = session.execute("SELECT a, b FROM t ORDER BY a").rows
        assert rows == [(1, "base"), (2, "base")]

    def test_update_own_insert(self, env):
        _, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (9, 'fresh')")
        updated = session.execute(
            "UPDATE t SET b = 'patched' WHERE a = 9")
        assert updated.rows_affected == 1
        session.execute("COMMIT")
        assert session.execute(
            "SELECT b FROM t WHERE a = 9").rows == [("patched",)]

    def test_snapshot_stable_for_reads(self, env):
        _, session, other = env
        session.execute("BEGIN")
        before = session.execute("SELECT COUNT(*) FROM t").rows
        other.execute("INSERT INTO t VALUES (50, 'concurrent')")
        after = session.execute("SELECT COUNT(*) FROM t").rows
        assert before == after == [(2,)]   # repeatable reads
        session.execute("COMMIT")
        assert session.execute("SELECT COUNT(*) FROM t").rows == [(3,)]


class TestErrors:
    def test_nested_begin_rejected(self, env):
        _, session, _ = env
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("BEGIN")
        session.execute("ROLLBACK")

    def test_commit_without_begin(self, env):
        _, session, _ = env
        with pytest.raises(TransactionError):
            session.execute("COMMIT")
        with pytest.raises(TransactionError):
            session.execute("ROLLBACK")

    def test_conflict_at_commit(self, env):
        _, session, other = env
        session.execute("BEGIN")
        session.execute("UPDATE t SET b = 'mine' WHERE a = 1")
        other.execute("UPDATE t SET b = 'theirs' WHERE a = 1")
        with pytest.raises(WriteConflictError):
            session.execute("COMMIT")
        # the transaction state is cleared; the winner's write survives
        assert session.execute(
            "SELECT b FROM t WHERE a = 1").rows == [("theirs",)]

    def test_insert_overwrite_rejected_in_txn(self, env):
        _, session, _ = env
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("INSERT OVERWRITE TABLE t SELECT 1, 'x'")
        session.execute("ROLLBACK")


class TestStatementIds:
    def test_per_statement_delta_dirs(self, env):
        server, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (10, 'a')")
        session.execute("INSERT INTO t VALUES (11, 'b')")
        session.execute("COMMIT")
        table = server.hms.get_table("t")
        names = sorted(d.rsplit("/", 1)[-1]
                       for d in server.fs.list_dirs(table.location))
        # both statements share WriteId 2 but use distinct stmtIds
        assert "delta_2_2" in names
        assert "delta_2_2_1" in names

    def test_row_ids_unique_across_statements(self, env):
        server, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (10, 'a')")
        session.execute("INSERT INTO t VALUES (11, 'b')")
        session.execute("COMMIT")
        # deleting one row written by stmt 0 must not touch stmt 1's row
        session.execute("DELETE FROM t WHERE a = 10")
        rows = session.execute("SELECT a FROM t ORDER BY a").rows
        assert rows == [(1,), (2,), (11,)]

    def test_compaction_folds_statement_deltas(self, env):
        server, session, _ = env
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (10, 'a')")
        session.execute("INSERT INTO t VALUES (11, 'b')")
        session.execute("COMMIT")
        from repro.metastore.compaction import CompactionType
        server.hms.compaction_queue.enqueue("default.t", None,
                                            CompactionType.MAJOR)
        server.run_compaction()
        rows = session.execute("SELECT COUNT(*) FROM t").rows
        assert rows == [(4,)]
        table = server.hms.get_table("t")
        assert len(server.fs.list_dirs(table.location)) == 1

    def test_stats_deferred_until_commit(self, env):
        server, session, _ = env
        table = server.hms.get_table("t")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (10, 'a'), (11, 'b')")
        assert server.hms.get_statistics(table).row_count == 2
        session.execute("COMMIT")
        assert server.hms.get_statistics(table).row_count == 4

    def test_stats_dropped_on_rollback(self, env):
        server, session, _ = env
        table = server.hms.get_table("t")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (10, 'a')")
        session.execute("ROLLBACK")
        assert server.hms.get_statistics(table).row_count == 2
