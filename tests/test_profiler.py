"""Sub-query profiling pipeline: per-vertex/per-operator profiles, skew
and straggler analysis, percentile WM triggers, query-log retention, and
the ``sys.vertex_log``/``sys.operator_log``/``sys.wm_events`` tables.
"""

import json

import pytest

from repro.config import HiveConf
from repro.errors import ConfigError, ParseError
from repro.llap.workload import (Pool, QueryAdmission, ResourcePlan,
                                 Trigger, TriggerAction, WmEventLog,
                                 WorkloadManager)
from repro.obs import MetricsRegistry
from repro.obs.query_log import (QueryLog, QueryLogEntry,
                                 QueryLogOverflow)
from repro.obs.report import (perf_gate, render_bench_report,
                              update_experiments)
from repro.server.driver import HiveServer2


def make_server(data_scale=1.0, **conf_overrides):
    conf = HiveConf.v3_profile()
    for key, value in conf_overrides.items():
        setattr(conf, key, value)
    conf.cost.data_scale = data_scale
    return HiveServer2(conf)


def load_skewed_join(session, hot_rows=400, cold_rows=100, keys=20):
    """A fact/dim pair where join key 0 dominates the fact side."""
    session.execute("CREATE TABLE dim (k INT, name STRING)")
    session.execute("CREATE TABLE fact (k INT, v INT)")
    session.execute("INSERT INTO dim VALUES " + ", ".join(
        f"({i}, 'n{i}')" for i in range(keys)))
    values = [f"(0, {i})" for i in range(hot_rows)]
    values += [f"({1 + i % (keys - 1)}, {i})" for i in range(cold_rows)]
    session.execute("INSERT INTO fact VALUES " + ", ".join(values))


SKEWED_JOIN_SQL = ("SELECT d.name, COUNT(*) FROM fact f "
                   "JOIN dim d ON f.k = d.k GROUP BY d.name")


# --------------------------------------------------------------------------- #
# vertex profiling: task distributions, skew, stragglers

class TestVertexProfiling:
    def test_skewed_join_has_skew_factor_over_two(self):
        server = make_server(data_scale=2000.0)
        session = server.connect()
        load_skewed_join(session)
        result = session.execute(SKEWED_JOIN_SQL)
        reducers = [vm for vm in result.metrics.vertices
                    if vm.name.startswith("Reducer") and vm.tasks > 1]
        assert reducers, "expected multi-task reducers at this scale"
        assert any(vm.skew_factor > 2.0 for vm in reducers)
        assert any(vm.straggler for vm in reducers)

    def test_task_durations_match_task_count(self):
        server = make_server(data_scale=2000.0)
        session = server.connect()
        load_skewed_join(session)
        result = session.execute(SKEWED_JOIN_SQL)
        for vm in result.metrics.vertices:
            assert len(vm.task_durations) == vm.tasks
            assert vm.max_task_s >= vm.median_task_s

    def test_uniform_query_is_not_a_straggler(self):
        server = make_server()
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = session.execute("SELECT a FROM t")
        for vm in result.metrics.vertices:
            assert vm.skew_factor == pytest.approx(1.0)
            assert not vm.straggler

    def test_skew_threshold_conf_knob(self):
        with pytest.raises(ConfigError):
            HiveConf.v3_profile().copy(straggler_skew_threshold=0.5)

    def test_operator_profiles_attached_to_vertices(self):
        server = make_server()
        session = server.connect()
        load_skewed_join(session, hot_rows=50, cold_rows=20)
        result = session.execute(SKEWED_JOIN_SQL)
        kinds = {op.operator for vm in result.metrics.vertices
                 for op in vm.operators}
        assert "TableScan" in kinds
        assert "Join" in kinds
        assert "Aggregate" in kinds
        total_attr = sum(op.virtual_s for vm in result.metrics.vertices
                        for op in vm.operators)
        modeled = sum(vm.io_s + vm.cpu_s + vm.shuffle_s
                      for vm in result.metrics.vertices)
        assert total_attr == pytest.approx(modeled, rel=1e-6)


# --------------------------------------------------------------------------- #
# sys.vertex_log / sys.operator_log

class TestVertexAndOperatorSysTables:
    def test_vertex_log_joins_query_log_with_skew(self):
        server = make_server(data_scale=2000.0)
        session = server.connect()
        load_skewed_join(session)
        session.execute(SKEWED_JOIN_SQL)
        rows = session.execute(
            "SELECT v.name, v.skew_factor "
            "FROM sys.vertex_log v JOIN sys.query_log q "
            "ON v.query_id = q.query_id").rows
        assert rows, "vertex_log join produced no rows"
        assert any(skew is not None and skew > 2.0
                   for _name, skew in rows)

    def test_vertex_log_columns(self):
        server = make_server()
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("SELECT a FROM t")
        rows = session.execute(
            "SELECT name, tasks, duration_s, straggler "
            "FROM sys.vertex_log").rows
        assert rows
        for name, tasks, duration_s, straggler in rows:
            assert tasks >= 1
            assert duration_s >= 0.0
            assert straggler in (True, False)

    def test_operator_log_rows_and_join(self):
        server = make_server()
        session = server.connect()
        load_skewed_join(session, hot_rows=50, cold_rows=20)
        session.execute(SKEWED_JOIN_SQL)
        rows = session.execute(
            "SELECT o.operator, o.rows_out, o.virtual_s "
            "FROM sys.operator_log o JOIN sys.query_log q "
            "ON o.query_id = q.query_id").rows
        operators = {r[0] for r in rows}
        assert "Join" in operators
        assert "TableScan" in operators

    def test_sys_query_log_select_star_width(self):
        server = make_server()
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("SELECT COUNT(*) FROM t")
        result = session.execute("SELECT * FROM sys.query_log")
        # vertices/operators ride the entry, not the sys.query_log row
        assert len(result.column_names) == 26
        assert result.column_names[-1] == "fingerprint"


# --------------------------------------------------------------------------- #
# percentile triggers + sys.wm_events

WM_DDL = [
    "CREATE RESOURCE PLAN daytime",
    "CREATE POOL daytime.bi WITH alloc_fraction=0.8, "
    "query_parallelism=5",
    "CREATE POOL daytime.etl WITH alloc_fraction=0.2, "
    "query_parallelism=20",
    "CREATE APPLICATION MAPPING bi_app IN daytime TO bi",
    "CREATE APPLICATION MAPPING etl_app IN daytime TO etl",
]


def activate(session, *rules):
    for ddl in WM_DDL:
        session.execute(ddl)
    for rule_ddl in rules:
        session.execute(rule_ddl)
    session.execute("ALTER RESOURCE PLAN daytime ENABLE ACTIVATE")


def run_warmup(session, n=4):
    """A few moderately heavy queries to heat the bi pool's p95."""
    for i in range(n):
        session.execute(
            f"SELECT a, SUM(b) FROM t WHERE b > {i} GROUP BY a")


def make_wm_server():
    server = make_server(data_scale=3000.0)
    session = server.connect(application="bi_app")
    session.execute("CREATE TABLE t (a INT, b INT)")
    session.execute("INSERT INTO t VALUES " + ", ".join(
        f"({i}, {i * 2})" for i in range(500)))
    return server, session


CHEAP_SQL = "SELECT COUNT(*) FROM t WHERE a = 1"


class TestPercentileTriggers:
    def test_p95_moves_query_a_gauge_trigger_would_not(self):
        # gauge phase: per-query runtime trigger at the same threshold
        # never fires — every query is individually under 2s
        server, session = make_wm_server()
        activate(session,
                 "CREATE RULE shed IN daytime WHEN total_runtime > 2 "
                 "THEN MOVE etl", "ADD RULE shed TO bi")
        run_warmup(session)
        gauge_result = session.execute(CHEAP_SQL)
        assert gauge_result.metrics.total_s < 2.0
        assert gauge_result.metrics.moved_to_pool is None

        # percentile phase: identical workload, but the trigger watches
        # the pool's p95 latency — the cheap query is moved because the
        # *distribution* is hot, not because the query itself is
        server, session = make_wm_server()
        activate(session,
                 "CREATE RULE shed IN daytime WHEN "
                 "p95(query.latency_s) > 2 THEN MOVE etl",
                 "ADD RULE shed TO bi")
        run_warmup(session)
        p95_result = session.execute(CHEAP_SQL)
        assert p95_result.metrics.moved_to_pool == "etl"

    def test_mixed_pools_only_triggered_pool_moves(self):
        server, session = make_wm_server()
        activate(session,
                 "CREATE RULE shed IN daytime WHEN "
                 "p95(query.latency_s) > 2 THEN MOVE etl",
                 "ADD RULE shed TO bi")
        run_warmup(session)
        etl_session = server.connect(application="etl_app")
        etl_result = etl_session.execute(
            "SELECT COUNT(*) FROM t WHERE a = 2")
        # etl has no triggers and its own latency distribution
        assert etl_result.metrics.pool == "etl"
        assert etl_result.metrics.moved_to_pool is None
        moved = session.execute(CHEAP_SQL)
        assert moved.metrics.moved_to_pool == "etl"

    def test_wm_events_logged_and_sql_queryable(self):
        server, session = make_wm_server()
        activate(session,
                 "CREATE RULE shed IN daytime WHEN "
                 "p95(query.latency_s) > 2 THEN MOVE etl",
                 "ADD RULE shed TO bi")
        run_warmup(session)
        session.execute(CHEAP_SQL)
        events = server.obs.wm_events.entries()
        assert events
        last = events[-1]
        assert last.trigger_name == "shed"
        assert last.metric == "p95(query.latency_s)"
        assert last.action == "move"
        assert last.target_pool == "etl"
        rows = session.execute(
            "SELECT trigger_name, metric, action, target_pool "
            "FROM sys.wm_events").rows
        assert ("shed", "p95(query.latency_s)", "move", "etl") in rows

    def test_percentile_syntax_requires_p_prefix(self):
        server, session = make_wm_server()
        session.execute("CREATE RESOURCE PLAN p2")
        with pytest.raises(ParseError):
            session.execute("CREATE RULE bad IN p2 WHEN "
                            "quantile(query.latency_s) > 2 THEN KILL")

    def test_percentile_trigger_unit(self):
        # direct WorkloadManager evaluation without a server
        plan = ResourcePlan("plan")
        plan.add_pool(Pool("bi", 0.8, 5))
        plan.add_pool(Pool("etl", 0.2, 20))
        plan.enabled = True
        trigger = Trigger("shed", "p95(query.latency_s)", 1.0,
                          TriggerAction.MOVE, "etl")
        assert trigger.percentile == (95.0, "query.latency_s")
        plan.pools["bi"].triggers.append(trigger)
        events = WmEventLog()
        registry = MetricsRegistry()
        wm = WorkloadManager(plan, registry=registry, event_log=events)
        for _ in range(10):
            registry.histogram("query.latency_s", pool="bi").observe(3.0)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers_from_registry(registry, admission, query_id=7)
        assert admission.moved_to == "etl"
        assert len(events) == 1
        assert events.entries()[0].query_id == 7

    def test_plain_gauge_triggers_still_work(self):
        plan = ResourcePlan("plan")
        plan.add_pool(Pool("bi", 0.8, 5))
        plan.add_pool(Pool("etl", 0.2, 20))
        plan.enabled = True
        plan.pools["bi"].triggers.append(
            Trigger("slow", "total_runtime", 10.0,
                    TriggerAction.MOVE, "etl"))
        registry = MetricsRegistry()
        registry.gauge("wm.query.total_runtime", query="3").set(99.0)
        wm = WorkloadManager(plan, registry=registry)
        admission = QueryAdmission(pool="bi", capacity_fraction=0.8)
        wm.check_triggers_from_registry(registry, admission, query_id=3)
        assert admission.moved_to == "etl"
        assert admission.fired_trigger == "slow"


# --------------------------------------------------------------------------- #
# registry percentile read API

class TestRegistryPercentile:
    def test_percentile_reads_histogram_series(self):
        registry = MetricsRegistry()
        for _ in range(20):
            registry.histogram("lat", pool="bi").observe(0.003)
        registry.histogram("lat", pool="bi").observe(10.0)
        p50 = registry.percentile("lat", 50, pool="bi")
        p99 = registry.percentile("lat", 99, pool="bi")
        assert p50 is not None and p99 is not None
        assert p50 < p99

    def test_percentile_missing_or_wrong_kind_is_none(self):
        registry = MetricsRegistry()
        assert registry.percentile("nope", 95) is None
        registry.gauge("g").set(1)
        assert registry.percentile("g", 95) is None


# --------------------------------------------------------------------------- #
# query-log retention

class TestQueryLogRetention:
    def test_eviction_spills_to_overflow(self):
        log = QueryLog(capacity=3)
        for i in range(10):
            log.append(QueryLogEntry(query_id=i, statement=f"q{i}"))
        assert len(log) == 3
        assert log.overflow.spilled == 7
        everything = log.all_entries()
        assert [e.query_id for e in everything] == list(range(10))

    def test_file_backed_overflow_round_trip(self, tmp_path):
        path = str(tmp_path / "overflow.jsonl")
        log = QueryLog(capacity=1, overflow=QueryLogOverflow(path))
        first = QueryLogEntry(query_id=1, statement="a")
        first.vertices = [(1, 0, "Map 1", 2, 10, 0.0, 0.1, 0.2, 0.0,
                           0.0, 0.3, 0.0, 0.3, 0, 0.2, 0.1, 2.0, True)]
        log.append(first)
        log.append(QueryLogEntry(query_id=2, statement="b"))
        restored = log.overflow.entries()
        assert [e.query_id for e in restored] == [1]
        assert restored[0].vertices[0][2] == "Map 1"
        assert isinstance(restored[0].vertices[0], tuple)

    def test_set_capacity_spills_excess(self):
        log = QueryLog(capacity=10)
        for i in range(10):
            log.append(QueryLogEntry(query_id=i, statement=f"q{i}"))
        log.set_capacity(4)
        assert len(log) == 4
        assert log.overflow.spilled == 6
        assert len(log.all_entries()) == 10

    def test_conf_knob_sets_server_capacity(self):
        server = make_server(obs_query_log_capacity=2)
        assert server.obs.query_log.capacity == 2
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("SELECT a FROM t")
        session.execute("SELECT COUNT(*) FROM t")
        assert len(server.obs.query_log) == 2
        assert server.obs.query_log.overflow.spilled >= 2
        # sys.query_log reads ring + overflow: nothing disappears
        rows = session.execute(
            "SELECT COUNT(*) FROM sys.query_log").rows
        assert rows[0][0] >= 4

    def test_set_statement_resizes_live_log(self):
        server = make_server()
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("SET hive.obs.query.log.capacity = 3")
        assert server.obs.query_log.capacity == 3
        with pytest.raises(ConfigError):
            session.execute("SET hive.obs.query.log.capacity = 0")
        assert server.obs.query_log.capacity == 3

    def test_snapshot_reports_spill_count(self):
        server = make_server(obs_query_log_capacity=1)
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("SELECT COUNT(*) FROM t")
        snap = server.obs.snapshot()
        assert snap["queries"]["spilled"] >= 1


# --------------------------------------------------------------------------- #
# EXPLAIN ANALYZE tree

class TestExplainAnalyzeTree:
    def test_vertex_time_bars_and_operator_lines(self):
        server = make_server(data_scale=2000.0)
        session = server.connect()
        load_skewed_join(session)
        result = session.execute("EXPLAIN ANALYZE " + SKEWED_JOIN_SQL)
        text = "\n".join(r[0] for r in result.rows)
        assert "-- vertex" in text
        assert "[#" in text                  # time bar
        assert "--   op " in text            # nested operator rows
        assert "skew=" in text
        assert "STRAGGLER" in text


# --------------------------------------------------------------------------- #
# chrome trace: nested vertex/operator spans

class TestChromeTraceNesting:
    def test_operator_spans_nest_under_vertices(self):
        server = make_server()
        session = server.connect()
        load_skewed_join(session, hot_rows=50, cold_rows=20)
        session.execute(SKEWED_JOIN_SQL)
        payload = json.loads(server.obs.to_chrome_trace())
        names = [e["name"] for e in payload["traceEvents"]]
        vertex_events = [n for n in names if n.startswith("vertex ")]
        op_events = [n for n in names if n.startswith("op ")]
        assert vertex_events
        assert any("op Join" == n for n in op_events)
        assert any("op TableScan" == n for n in op_events)
        # vertex spans carry the skew attrs into the trace args
        vertex_args = [e["args"] for e in payload["traceEvents"]
                       if e["name"].startswith("vertex ")]
        assert all("skew_factor" in a for a in vertex_args)

    def test_span_tree_nests_operators(self):
        server = make_server()
        session = server.connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        result = session.execute("SELECT a FROM t")
        execute_span = result.trace.find("execute")
        vertex = next(s for s in execute_span.children
                      if s.name.startswith("vertex "))
        assert vertex.children, "operator spans missing"
        assert vertex.children[0].name.startswith("op ")


# --------------------------------------------------------------------------- #
# bench report + perf gate

SAMPLE_EXPORT = {
    "summary": {"llap": {"queries": 2, "failed": 0, "total_s": 10.0}},
    "records": [
        {"scenario": "llap", "query": "q1", "seconds": 4.0, "rows": 5,
         "from_cache": False,
         "breakdown": {"startup_s": 0.1, "io_s": 1.0, "cpu_s": 2.0,
                       "shuffle_s": 0.5, "cache_hit_fraction": 0.25}},
        {"scenario": "llap", "query": "q2", "seconds": None,
         "error": "boom"},
    ],
}


class TestBenchReport:
    def test_render_contains_markers_and_rows(self):
        text = render_bench_report(SAMPLE_EXPORT)
        assert text.startswith("<!-- BENCH_OBS:BEGIN -->")
        assert text.endswith("<!-- BENCH_OBS:END -->")
        assert "| q1 | 4.000 |" in text
        assert "FAIL (boom)" in text
        assert "| llap | 2 | 0 | 10.000 |" in text

    def test_update_experiments_is_idempotent(self):
        doc = "# EXPERIMENTS\n\nprose stays.\n"
        once = update_experiments(doc, SAMPLE_EXPORT)
        assert "prose stays." in once
        twice = update_experiments(once, SAMPLE_EXPORT)
        assert twice == once
        assert twice.count("<!-- BENCH_OBS:BEGIN -->") == 1

    def test_perf_gate_passes_within_tolerance(self):
        current = {"summary": {"llap": {"queries": 2, "failed": 0,
                                        "total_s": 11.0}}}
        assert perf_gate(SAMPLE_EXPORT, current) == []

    def test_perf_gate_fails_on_regression(self):
        current = {"summary": {"llap": {"queries": 2, "failed": 0,
                                        "total_s": 13.0}}}
        problems = perf_gate(SAMPLE_EXPORT, current)
        assert problems and "llap" in problems[0]

    def test_perf_gate_fails_on_missing_scenario_or_new_failures(self):
        assert perf_gate(SAMPLE_EXPORT, {"summary": {}})
        current = {"summary": {"llap": {"queries": 2, "failed": 1,
                                        "total_s": 9.0}}}
        assert perf_gate(SAMPLE_EXPORT, current)

    def test_perf_gate_wall_clock(self):
        baseline = {"summary": {"llap": {"queries": 2, "failed": 0,
                                         "total_s": 10.0,
                                         "wall_s": 1.0}}}
        # 2x wall growth sits inside the generous default tolerance
        current = {"summary": {"llap": {"queries": 2, "failed": 0,
                                        "total_s": 10.0,
                                        "wall_s": 2.0}}}
        assert perf_gate(baseline, current) == []
        # a 6x blowup fails; a tighter knob catches the 2x too
        blowup = {"summary": {"llap": {"queries": 2, "failed": 0,
                                       "total_s": 10.0,
                                       "wall_s": 6.0}}}
        problems = perf_gate(baseline, blowup)
        assert problems and "wall time" in problems[0]
        assert perf_gate(baseline, current, wall_tolerance=0.5)

    def test_perf_gate_wall_skipped_without_baseline_data(self):
        # pre-wall baselines (no wall_s) must not fail the gate
        current = {"summary": {"llap": {"queries": 2, "failed": 0,
                                        "total_s": 10.0,
                                        "wall_s": 99.0}}}
        assert perf_gate(SAMPLE_EXPORT, current) == []
