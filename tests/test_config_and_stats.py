"""HiveConf profiles/validation and the optimizer's StatsProvider."""

import pytest

from repro.common.rows import Column, Schema
from repro.common.types import DOUBLE, INT, STRING
from repro.config import HiveConf
from repro.errors import ConfigError
from repro.fs import SimFileSystem
from repro.metastore.hms import HiveMetastore
from repro.metastore.stats import TableStatistics
from repro.optimizer.stats import StatsProvider
from repro.plan import relnodes as rel
from repro.plan.rexnodes import (AggregateCall, RexInputRef, RexLiteral,
                                 make_call)


class TestHiveConf:
    def test_copy_overrides(self):
        conf = HiveConf.v3_profile()
        clone = conf.copy(llap_enabled=False, num_nodes=3)
        assert clone.llap_enabled is False and clone.num_nodes == 3
        assert conf.llap_enabled is True      # original untouched
        assert clone.cost is not conf.cost    # deep-ish copy

    def test_copy_unknown_key(self):
        with pytest.raises(ConfigError):
            HiveConf().copy(no_such_flag=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            HiveConf(reexecution_strategy="retry").validate()
        with pytest.raises(ConfigError):
            HiveConf(semijoin_bloom_fpp=2.0).validate()
        with pytest.raises(ConfigError):
            HiveConf(num_nodes=0).validate()

    def test_profiles_differ_where_the_paper_says(self):
        legacy = HiveConf.legacy_profile()
        v3 = HiveConf.v3_profile()
        for flag in ("cbo_enabled", "vectorized_execution",
                     "llap_enabled", "shared_work_optimization",
                     "semijoin_reduction", "mv_rewriting",
                     "results_cache_enabled", "support_setops",
                     "support_interval_notation"):
            assert getattr(v3, flag) and not getattr(legacy, flag), flag
        # rule-based rewrites existed in 1.2 and stay on
        assert legacy.filter_pushdown and legacy.project_pruning
        assert legacy.partition_pruning

    def test_container_profile(self):
        container = HiveConf.v3_container_profile()
        assert container.cbo_enabled and not container.llap_enabled


@pytest.fixture
def stats_env():
    hms = HiveMetastore(SimFileSystem())
    schema = Schema([Column("k", INT), Column("cat", STRING),
                     Column("v", DOUBLE)])
    table = hms.create_table("default", "t", schema)
    rows = [(i % 100, f"c{i % 4}", float(i)) for i in range(10_000)]
    hms.set_statistics(table, TableStatistics.from_rows(schema, rows))
    scan = rel.TableScan("default.t", schema)
    return hms, scan


class TestStatsProvider:
    def test_scan_cardinality(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        assert provider.row_count(scan) == pytest.approx(10_000)

    def test_equality_selectivity_uses_ndv(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        predicate = make_call("=", RexInputRef(1, STRING),
                              RexLiteral("c1", STRING))
        filtered = rel.Filter(scan, predicate)
        estimate = provider.row_count(filtered)
        assert 1500 <= estimate <= 4000       # ~1/4 of the rows

    def test_range_selectivity_uses_min_max(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        predicate = make_call(">", RexInputRef(2, DOUBLE),
                              RexLiteral(7500.0, DOUBLE))
        estimate = provider.row_count(rel.Filter(scan, predicate))
        assert 1500 <= estimate <= 3500       # ~25% of the range

    def test_in_selectivity(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        predicate = make_call("IN", RexInputRef(0, INT),
                              RexLiteral(1, INT), RexLiteral(2, INT))
        estimate = provider.row_count(rel.Filter(scan, predicate))
        assert 100 <= estimate <= 350         # 2 of ~100 keys

    def test_aggregate_bounded_by_group_ndv(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        aggregate = rel.Aggregate(scan, (1,), (), ("cat",))
        estimate = provider.row_count(aggregate)
        assert estimate <= 10                 # only 4 categories

    def test_join_cardinality(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        join = rel.Join(scan, scan, "inner",
                        make_call("=", RexInputRef(0, INT),
                                  RexInputRef(3, INT)))
        estimate = provider.row_count(join)
        # |L| * |R| / ndv(k) = 1e8 / 100 = 1e6
        assert 2e5 <= estimate <= 5e6

    def test_overrides_win(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms, overrides={scan.digest: 7})
        assert provider.row_count(scan) == 7

    def test_limit_caps(self, stats_env):
        hms, scan = stats_env
        provider = StatsProvider(hms)
        assert provider.row_count(rel.Limit(scan, 5)) == 5
        assert provider.row_count(
            rel.Sort(scan, (rel.SortKey(0),), fetch=9)) == 9

    def test_unknown_table_defaults(self):
        hms = HiveMetastore(SimFileSystem())
        schema = Schema([Column("x", INT)])
        hms.create_table("default", "empty", schema)
        provider = StatsProvider(hms)
        scan = rel.TableScan("default.empty", schema)
        assert provider.row_count(scan) >= 1
