"""End-to-end SQL through HiveServer2: DDL, DML, query correctness."""

import datetime

import pytest

import repro
from repro.config import HiveConf
from repro.errors import (AnalysisError, CatalogError, ExecutionError,
                          ParseError)


class TestDdl:
    def test_create_show_describe_drop(self, session):
        session.execute("CREATE TABLE t (a INT, b STRING)")
        assert session.execute("SHOW TABLES").rows == [("t",)]
        described = session.execute("DESCRIBE t").rows
        assert [(r[0], r[1]) for r in described] == [
            ("a", "int"), ("b", "string")]
        session.execute("DROP TABLE t")
        assert session.execute("SHOW TABLES").rows == []

    def test_if_not_exists_and_if_exists(self, session):
        session.execute("CREATE TABLE t (a INT)")
        session.execute("CREATE TABLE IF NOT EXISTS t (a INT)")
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE t (a INT)")
        session.execute("DROP TABLE t")
        session.execute("DROP TABLE IF EXISTS t")
        with pytest.raises(CatalogError):
            session.execute("DROP TABLE t")

    def test_ctas(self, session):
        session.execute("CREATE TABLE src (a INT, b STRING)")
        session.execute("INSERT INTO src VALUES (1,'x'), (2,'y')")
        session.execute("CREATE TABLE dst AS "
                        "SELECT a * 10 big, b FROM src WHERE a > 1")
        assert session.execute("SELECT * FROM dst").rows == [(20, "y")]

    def test_transactional_property_respected(self, session):
        session.execute("CREATE TABLE nta (a INT) "
                        "TBLPROPERTIES ('transactional'='false')")
        table = session.hms.get_table("nta")
        assert not table.is_acid
        session.execute("CREATE TABLE ta (a INT)")
        assert session.hms.get_table("ta").is_acid

    def test_create_database_and_qualified_use(self, session):
        session.execute("CREATE DATABASE mart")
        session.execute("CREATE TABLE mart.facts (v INT)")
        session.execute("INSERT INTO mart.facts VALUES (5)")
        assert session.execute(
            "SELECT v FROM mart.facts").rows == [(5,)]


class TestInsert:
    def test_values_with_column_list(self, session):
        session.execute("CREATE TABLE t (a INT, b STRING, c DOUBLE)")
        session.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        assert session.execute("SELECT a, b, c FROM t").rows == [
            (7, None, 1.5)]

    def test_insert_select(self, session):
        session.execute("CREATE TABLE src (a INT)")
        session.execute("CREATE TABLE dst (a INT)")
        session.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = session.execute(
            "INSERT INTO dst SELECT a * 2 FROM src WHERE a < 3")
        assert result.rows_affected == 2
        assert sorted(session.execute("SELECT a FROM dst").rows) == [
            (2,), (4,)]

    def test_static_partition_insert(self, session):
        session.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT)")
        session.execute("INSERT INTO p PARTITION (ds=7) VALUES (1), (2)")
        table = session.hms.get_table("p")
        assert (7,) in table.partitions
        assert session.execute(
            "SELECT v, ds FROM p ORDER BY v").rows == [(1, 7), (2, 7)]

    def test_dynamic_partition_insert(self, session):
        session.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT)")
        session.execute("INSERT INTO p VALUES (1, 10), (2, 20), (3, 10)")
        table = session.hms.get_table("p")
        assert set(table.partitions) == {(10,), (20,)}
        rows = session.execute("SELECT ds, COUNT(*) FROM p GROUP BY ds "
                               "ORDER BY ds").rows
        assert rows == [(10, 2), (20, 1)]

    def test_insert_overwrite(self, session):
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("INSERT OVERWRITE TABLE t SELECT 99")
        assert session.execute("SELECT a FROM t").rows == [(99,)]

    def test_values_must_be_constant(self, session):
        session.execute("CREATE TABLE t (a INT)")
        with pytest.raises(AnalysisError):
            session.execute("INSERT INTO t VALUES (a + 1)")


class TestUpdateDelete:
    @pytest.fixture
    def table(self, session):
        session.execute("CREATE TABLE t (a INT, b STRING, c DOUBLE)")
        session.execute("INSERT INTO t VALUES "
                        "(1,'x',1.0), (2,'y',2.0), (3,'x',3.0)")
        return session

    def test_update_with_expression(self, table):
        result = table.execute("UPDATE t SET c = c * 10, b = upper(b) "
                               "WHERE a >= 2")
        assert result.rows_affected == 2
        rows = table.execute("SELECT a, b, c FROM t ORDER BY a").rows
        assert rows == [(1, "x", 1.0), (2, "Y", 20.0), (3, "X", 30.0)]

    def test_delete_all(self, table):
        assert table.execute("DELETE FROM t").rows_affected == 3
        assert table.execute("SELECT COUNT(*) FROM t").rows == [(0,)]

    def test_update_non_acid_rejected(self, session):
        session.execute("CREATE TABLE nta (a INT) "
                        "TBLPROPERTIES ('transactional'='false')")
        session.execute("INSERT INTO nta VALUES (1)")
        with pytest.raises(ExecutionError):
            session.execute("UPDATE nta SET a = 2")
        with pytest.raises(ExecutionError):
            session.execute("DELETE FROM nta")

    def test_update_partitioned_table(self, session):
        session.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT)")
        session.execute("INSERT INTO p VALUES (1, 10), (2, 20)")
        result = session.execute("UPDATE p SET v = v + 100 WHERE ds = 20")
        assert result.rows_affected == 1
        assert sorted(session.execute("SELECT v FROM p").rows) == [
            (1,), (102,)]

    def test_delete_with_predicate_on_partition_column(self, session):
        session.execute("CREATE TABLE p (v INT) PARTITIONED BY (ds INT)")
        session.execute("INSERT INTO p VALUES (1, 10), (2, 20), (3, 20)")
        assert session.execute(
            "DELETE FROM p WHERE ds = 20").rows_affected == 2


class TestMerge:
    def test_full_merge(self, session):
        session.execute("CREATE TABLE t (id INT, v DOUBLE, note STRING)")
        session.execute("INSERT INTO t VALUES "
                        "(1, 1.0, 'keep'), (2, 2.0, 'upd'), "
                        "(3, 3.0, 'del')")
        session.execute("CREATE TABLE s (id INT, v DOUBLE, del INT)")
        session.execute("INSERT INTO s VALUES "
                        "(2, 20.0, 0), (3, 0.0, 1), (4, 40.0, 0)")
        result = session.execute("""
            MERGE INTO t USING s ON t.id = s.id
            WHEN MATCHED AND s.del = 1 THEN DELETE
            WHEN MATCHED THEN UPDATE SET v = s.v
            WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.v, 'new')""")
        assert result.rows_affected == 3
        rows = session.execute("SELECT id, v, note FROM t ORDER BY id").rows
        assert rows == [(1, 1.0, "keep"), (2, 20.0, "upd"),
                        (4, 40.0, "new")]

    def test_merge_duplicate_match_rejected(self, session):
        session.execute("CREATE TABLE t (id INT, v INT)")
        session.execute("INSERT INTO t VALUES (1, 0)")
        session.execute("CREATE TABLE s (id INT, v INT)")
        session.execute("INSERT INTO s VALUES (1, 1), (1, 2)")
        with pytest.raises(ExecutionError, match="multiple source rows"):
            session.execute("MERGE INTO t USING s ON t.id = s.id "
                            "WHEN MATCHED THEN UPDATE SET v = s.v")


class TestQueries:
    @pytest.fixture
    def data(self, loaded_session):
        return loaded_session

    def test_projection_and_filter(self, data):
        rows = data.execute(
            "SELECT a, upper(b) FROM t WHERE c > 2 ORDER BY a").rows
        assert rows == [(2, "TWO"), (3, "THREE"), (4, "FOUR")]

    def test_aggregate_with_nulls(self, data):
        rows = data.execute(
            "SELECT COUNT(*), COUNT(b), SUM(c), AVG(c) FROM t").rows
        assert rows == [(5, 4, 12.0, 3.0)]

    def test_join_inner_and_outer(self, data):
        inner = data.execute(
            "SELECT t.a, u.x FROM t JOIN u ON t.a = u.k ORDER BY 1, 2"
        ).rows
        assert inner == [(1, 10), (2, 20), (2, 25), (3, 30)]
        left = data.execute(
            "SELECT t.a, u.x FROM t LEFT JOIN u ON t.a = u.k "
            "WHERE t.a >= 4 ORDER BY t.a").rows
        assert left == [(4, None), (5, None)]

    def test_date_functions(self, data):
        rows = data.execute(
            "SELECT EXTRACT(month FROM d) m, COUNT(*) FROM t "
            "GROUP BY EXTRACT(month FROM d) ORDER BY m").rows
        assert rows == [(1, 3), (2, 2)]

    def test_case_and_in(self, data):
        rows = data.execute(
            "SELECT a, CASE WHEN a IN (1, 3, 5) THEN 'odd' ELSE 'even' "
            "END FROM t ORDER BY a").rows
        assert [r[1] for r in rows] == ["odd", "even", "odd", "even",
                                        "odd"]

    def test_cte_and_subquery(self, data):
        rows = data.execute(
            "WITH big AS (SELECT * FROM t WHERE a > 2) "
            "SELECT COUNT(*) FROM big WHERE a IN "
            "(SELECT k FROM u)").rows
        assert rows == [(1,)]

    def test_window_over_aggregate(self, data):
        rows = data.execute(
            "SELECT b, cnt, RANK() OVER (ORDER BY cnt DESC) r FROM "
            "(SELECT b, COUNT(*) cnt FROM t WHERE b IS NOT NULL "
            "GROUP BY b) x ORDER BY r, b").rows
        assert all(r[2] == 1 for r in rows)      # all counts equal: tie

    def test_explain_runs(self, data):
        rows = data.execute(
            "EXPLAIN SELECT b, COUNT(*) FROM t GROUP BY b").rows
        assert any("Aggregate" in r[0] for r in rows)
        assert any("TableScan" in r[0] for r in rows)

    def test_set_config_changes_behaviour(self, data):
        data.execute("SET hive.vectorized.execution.enabled=false")
        assert data.conf.vectorized_execution is False
        with pytest.raises(AnalysisError):
            data.execute("SET no.such.key=1")

    def test_set_rejects_invalid_boolean(self, data):
        # booleans were silently coerced to False before; now any
        # unrecognized spelling is an error naming the key
        with pytest.raises(AnalysisError, match="hive.llap.enabled"):
            data.execute("SET hive.llap.enabled=maybe")
        assert data.conf.llap_enabled is True  # unchanged
        data.execute("SET hive.llap.enabled=off")
        assert data.conf.llap_enabled is False

    def test_set_key_may_contain_keyword_segments(self, data):
        # hive.cbo.ENABLE / hive.check.PLAN parse as config keys even
        # though ENABLE and PLAN are SQL keywords
        data.execute("SET hive.cbo.enable=false")
        assert data.conf.cbo_enabled is False
        data.execute("SET hive.check.plan=paranoid")
        assert data.conf.plan_check_mode == "paranoid"

    def test_set_check_plan_rejects_bad_mode(self, data):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="check_plan"):
            data.execute("SET hive.check.plan=sometimes")
        # the rejected value is rolled back, the session stays usable
        data.conf.plan_check_mode
        assert data.execute("SELECT count(*) FROM t").rows

    def test_parse_error_surfaces(self, data):
        with pytest.raises(ParseError):
            data.execute("SELEKT 1")

    def test_order_by_date_column(self, data):
        rows = data.execute("SELECT d FROM t ORDER BY d DESC LIMIT 1").rows
        assert rows == [(datetime.date(2020, 2, 2),)]


class TestVectorizedKnobsAndDeterminism:
    @pytest.fixture
    def data(self, loaded_session):
        return loaded_session

    def test_compile_knob_toggles_without_changing_results(self, data):
        query = ("SELECT a, upper(b), c * 2 + 1 FROM t "
                 "WHERE a % 2 = 1 ORDER BY a")
        on = data.execute(query).rows
        data.execute("SET hive.vectorized.compile.enabled=false")
        assert data.conf.vectorized_compile is False
        assert data.execute(query).rows == on
        data.execute("SET hive.vectorized.compile.enabled=true")
        assert data.execute(query).rows == on

    def test_fusion_knob_toggles_without_changing_results(self, data):
        query = ("SELECT upper(b) FROM t WHERE c > 2 AND a < 5 "
                 "ORDER BY a")
        fused = data.execute(query).rows
        data.execute("SET hive.vectorized.fusion.enabled=false")
        assert data.conf.vectorized_fusion is False
        assert data.execute(query).rows == fused

    def test_current_date_is_virtual_not_host(self, data):
        # the session clock starts at the virtual epoch; a wall-clock
        # leak would return today's real date here
        rows = data.execute("SELECT current_date() FROM t LIMIT 1").rows
        assert rows == [(datetime.date(1970, 1, 1),)]

    def test_seeded_rand_stable_across_executions(self, data):
        query = "SELECT a, rand(42) FROM t ORDER BY a"
        first = data.execute(query).rows
        second = data.execute(query).rows
        assert first == second
        values = [r[1] for r in first]
        assert len(set(values)) == len(values)   # per-row stream
        assert all(0.0 <= v < 1.0 for v in values)

    def test_unseeded_rand_changes_per_statement(self, data):
        one = data.execute("SELECT rand() FROM t").rows
        two = data.execute("SELECT rand() FROM t").rows
        assert one != two          # distinct query ids → distinct salt

    def test_rand_identical_across_fresh_servers(self, conf):
        import repro

        def run():
            session = repro.HiveServer2(
                repro.HiveConf.v3_profile()).connect()
            session.execute("CREATE TABLE r (a INT)")
            session.execute(
                "INSERT INTO r VALUES (1), (2), (3), (4)")
            return session.execute(
                "SELECT a, rand(7), rand() FROM r ORDER BY a").rows

        assert run() == run()      # full-stack reproducibility
