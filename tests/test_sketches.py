"""RLE codec, HyperLogLog++ and Bloom filter — including the property

tests that pin the invariants HMS statistics and the semijoin/IO paths
rely on (lossless RLE, lossless HLL merge, no Bloom false negatives).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import rle
from repro.common.bloom import BloomFilter
from repro.common.hll import HyperLogLog
from repro.errors import HiveError


class TestRle:
    def test_repeat_runs_detected(self):
        runs = rle.encode(np.array([5, 5, 5, 5, 1, 2]))
        assert isinstance(runs[0], rle.RepeatRun)
        assert runs[0].count == 4
        assert isinstance(runs[1], rle.LiteralRun)

    def test_short_repeats_stay_literal(self):
        runs = rle.encode(np.array([1, 1, 2, 2, 3, 3]))
        assert all(isinstance(r, rle.LiteralRun) for r in runs)

    def test_roundtrip_objects(self):
        data = np.array(["a", "a", "a", "b", None, None, None],
                        dtype=object)
        runs = rle.encode(data)
        out = rle.decode(runs, np.dtype(object))
        assert list(out) == list(data)

    def test_empty(self):
        assert rle.encode(np.array([], dtype=np.int64)) == []
        assert len(rle.decode([], np.dtype(np.int64))) == 0

    def test_nan_runs_compress(self):
        data = np.array([np.nan] * 5, dtype=np.float64)
        runs = rle.encode(data)
        assert len(runs) == 1 and isinstance(runs[0], rle.RepeatRun)

    def test_encoded_size_rewards_repeats(self):
        repeated = rle.encode(np.full(1000, 7, dtype=np.int64))
        distinct = rle.encode(np.arange(1000, dtype=np.int64))
        assert (rle.encoded_size_bytes(repeated, 8)
                < rle.encoded_size_bytes(distinct, 8) / 100)

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        data = np.array(values, dtype=np.int64)
        out = rle.decode(rle.encode(data), np.dtype(np.int64))
        assert out.tolist() == values


class TestHyperLogLog:
    def test_small_cardinality_exact_ish(self):
        sketch = HyperLogLog(12)
        sketch.add_all(range(100))
        assert abs(sketch.cardinality() - 100) <= 3

    def test_large_cardinality_within_error(self):
        sketch = HyperLogLog(12)
        sketch.add_all(range(50_000))
        estimate = sketch.cardinality()
        assert abs(estimate - 50_000) / 50_000 < 0.06

    def test_duplicates_ignored(self):
        sketch = HyperLogLog(12)
        for _ in range(10):
            sketch.add_all(range(500))
        assert abs(sketch.cardinality() - 500) <= 20

    def test_merge_equals_union(self):
        left, right, union = (HyperLogLog(12) for _ in range(3))
        left.add_all(range(0, 3000))
        right.add_all(range(2000, 5000))
        union.add_all(range(0, 5000))
        merged = left.merge(right)
        assert merged.cardinality() == union.cardinality()

    def test_merge_precision_mismatch(self):
        with pytest.raises(HiveError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_serialization_roundtrip(self):
        sketch = HyperLogLog(10)
        sketch.add_all(["a", "b", "c", 1, 2.5])
        clone = HyperLogLog.from_bytes(sketch.to_bytes())
        assert clone.cardinality() == sketch.cardinality()

    def test_invalid_precision(self):
        with pytest.raises(HiveError):
            HyperLogLog(2)

    @given(st.sets(st.integers(0, 10_000), max_size=200),
           st.sets(st.integers(0, 10_000), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_merge_is_lossless_property(self, left_values, right_values):
        """merge(A, B) must estimate exactly like a sketch fed A ∪ B —

        the additivity HMS statistics depend on (Section 4.1)."""
        left, right, union = (HyperLogLog(10) for _ in range(3))
        left.add_all(left_values)
        right.add_all(right_values)
        union.add_all(left_values | right_values)
        assert left.merge(right).cardinality() == union.cardinality()


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000, 0.03)
        bloom.add_all(range(1000))
        assert all(bloom.might_contain(v) for v in range(1000))

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(2000, 0.03)
        bloom.add_all(range(2000))
        false_hits = sum(bloom.might_contain(v)
                         for v in range(10_000, 14_000))
        assert false_hits / 4000 < 0.1

    def test_vectorized_probe(self):
        bloom = BloomFilter(10, 0.01)
        bloom.add_all(["x", "y"])
        mask = bloom.might_contain_many(
            np.array(["x", "nope", "y"], dtype=object))
        assert mask[0] and mask[2]

    def test_merge_union(self):
        a = BloomFilter(100, 0.05)
        b = BloomFilter(100, 0.05)
        a.add(1)
        b.add(2)
        merged = a.merge(b)
        assert merged.might_contain(1) and merged.might_contain(2)

    def test_merge_shape_mismatch(self):
        with pytest.raises(HiveError):
            BloomFilter(10, 0.05).merge(BloomFilter(10_000, 0.05))

    def test_invalid_fpp(self):
        with pytest.raises(HiveError):
            BloomFilter(10, 1.5)

    @given(st.sets(st.one_of(st.integers(), st.text(max_size=8)),
                   max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_membership_property(self, values):
        bloom = BloomFilter(max(len(values), 1), 0.01)
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)
