"""Shared fixtures for the test suite."""

import pytest

import repro
from repro.common.rows import Column, Schema
from repro.common.types import DATE, DOUBLE, INT, STRING
from repro.config import HiveConf


@pytest.fixture
def conf():
    """Fast default configuration for unit tests.

    Plan-invariant checking runs at least in "on" mode for every test
    that goes through this fixture, so any optimizer rewrite that breaks
    a tree invariant fails loudly here.  HIVE_CHECK_PLAN=paranoid (the
    CI lint job) escalates to per-rule validation.
    """
    conf = HiveConf.v3_profile()
    if conf.plan_check_mode == "off":
        conf.check_plan = "on"
    return conf


@pytest.fixture
def server(conf):
    return repro.HiveServer2(conf)


@pytest.fixture
def session(server):
    return server.connect()


@pytest.fixture
def loaded_session(session):
    """A session with two small, loaded tables ``t`` and ``u``."""
    session.execute("CREATE TABLE t (a INT, b STRING, c DOUBLE, d DATE)")
    session.execute("CREATE TABLE u (k INT, x INT, y STRING)")
    session.execute("""
        INSERT INTO t VALUES
          (1, 'one',   1.5, DATE '2020-01-01'),
          (2, 'two',   2.5, DATE '2020-01-02'),
          (3, 'three', 3.5, DATE '2020-01-03'),
          (4, 'four',  4.5, DATE '2020-02-01'),
          (5, NULL,    NULL, DATE '2020-02-02')""")
    session.execute("""
        INSERT INTO u VALUES
          (1, 10, 'ux1'), (2, 20, 'ux2'), (2, 25, 'ux2b'),
          (3, 30, 'ux3'), (9, 90, 'ux9')""")
    return session


@pytest.fixture
def simple_schema():
    return Schema([Column("a", INT), Column("b", STRING),
                   Column("c", DOUBLE), Column("d", DATE)])
