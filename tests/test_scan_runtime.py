"""Scan executor runtime behaviour: partition handling, sargs, semijoin

filters, and IO attribution.
"""

import pytest

import repro
from repro.common.bloom import BloomFilter
from repro.config import HiveConf
from repro.plan import relnodes as rel
from repro.runtime.scan import ScanMetrics, SemijoinFilter, _rex_to_sarg
from repro.plan.rexnodes import RexCall, RexInputRef, RexLiteral, make_call
from repro.common.types import DATE, INT, STRING
from repro.common.rows import Column, Schema
import datetime


@pytest.fixture
def session():
    server = repro.HiveServer2(HiveConf.v3_profile())
    s = server.connect()
    s.conf.results_cache_enabled = False
    s.execute("CREATE TABLE p (v INT, w STRING) PARTITIONED BY (ds INT)")
    rows = ", ".join(f"({i}, 'w{i}', {i % 5})" for i in range(100))
    s.execute(f"INSERT INTO p VALUES {rows}")
    return s


class TestPartitionedScans:
    def test_partition_values_materialize_as_columns(self, session):
        rows = session.execute(
            "SELECT ds, COUNT(*) FROM p GROUP BY ds ORDER BY ds").rows
        assert rows == [(d, 20) for d in range(5)]

    def test_static_pruning_reads_fewer_partitions(self, session):
        result = session.execute("SELECT COUNT(*) FROM p WHERE ds = 3")
        assert result.rows == [(20,)]
        scan = rel.find_scans(result.optimized.root)[0]
        assert scan.pruned_partitions == ((3,),)

    def test_pruning_reduces_io(self, session):
        session.server.llap_cache.clear()
        session.server.llap_factory.io.reset()
        session.server.llap_factory._metadata.clear()
        full = session.execute("SELECT SUM(v) FROM p")
        session.server.llap_cache.clear()
        session.server.llap_factory._metadata.clear()
        pruned = session.execute("SELECT SUM(v) FROM p WHERE ds = 0")
        assert pruned.metrics.disk_bytes < full.metrics.disk_bytes

    def test_filter_on_partition_and_data_column(self, session):
        rows = session.execute(
            "SELECT v FROM p WHERE ds = 1 AND v < 10 ORDER BY v").rows
        assert rows == [(1,), (6,)]

    def test_empty_partition_set(self, session):
        assert session.execute(
            "SELECT COUNT(*) FROM p WHERE ds = 99").rows == [(0,)]


class TestSargConversion:
    SCHEMA = Schema([Column("a", INT), Column("b", STRING),
                     Column("d", DATE)])

    def test_comparison_forms(self):
        sarg = _rex_to_sarg(make_call(">", RexInputRef(0, INT),
                                      RexLiteral(5, INT)), self.SCHEMA)
        assert (sarg.column, sarg.op, sarg.value) == ("a", ">", 5)
        flipped = _rex_to_sarg(make_call("<", RexLiteral(5, INT),
                                         RexInputRef(0, INT)), self.SCHEMA)
        assert (flipped.column, flipped.op) == ("a", ">")

    def test_date_literal_converted_to_storage(self):
        day = datetime.date(2020, 1, 10)
        sarg = _rex_to_sarg(
            make_call("=", RexInputRef(2, DATE),
                      RexLiteral(day, DATE)), self.SCHEMA)
        assert sarg.value == DATE.to_storage(day)

    def test_in_list(self):
        sarg = _rex_to_sarg(
            make_call("IN", RexInputRef(1, STRING),
                      RexLiteral("x", STRING), RexLiteral("y", STRING)),
            self.SCHEMA)
        assert sarg.op == "in" and sarg.value == ("x", "y")

    def test_null_literal_not_sargable(self):
        assert _rex_to_sarg(
            make_call("=", RexInputRef(0, INT), RexLiteral(None, INT)),
            self.SCHEMA) is None

    def test_non_ref_not_sargable(self):
        expr = make_call("=", RexCall("+", (RexInputRef(0, INT),
                                            RexLiteral(1, INT)), INT),
                         RexLiteral(5, INT))
        assert _rex_to_sarg(expr, self.SCHEMA) is None


class TestSemijoinFilter:
    def test_from_vector(self):
        from repro.common.vector import ColumnVector
        vector = ColumnVector.from_values(INT, [5, 1, 9, None, 5])
        sj = SemijoinFilter.from_vector("k", vector, 0.05)
        assert (sj.min_value, sj.max_value) == (1, 9)
        assert sj.build_rows == 3
        assert sj.bloom.might_contain(5)
        assert sj.bloom.might_contain(9)

    def test_empty_build_side_filters_everything(self, session):
        # a dimension filter matching nothing: the fact scan must return
        # zero rows without error
        session.execute("CREATE TABLE d (ds INT, tag STRING)")
        session.execute("INSERT INTO d VALUES (1, 'only')")
        result = session.execute(
            "SELECT COUNT(*) FROM p, d WHERE p.ds = d.ds "
            "AND d.tag = 'no-such-tag'")
        assert result.rows == [(0,)]

    def test_metrics_report_filtered_rows(self, session):
        session.execute("CREATE TABLE dim2 (ds INT, keep STRING)")
        session.execute("INSERT INTO dim2 VALUES (2, 'y')")
        result = session.execute(
            "SELECT COUNT(*) FROM p, dim2 WHERE p.ds = dim2.ds "
            "AND keep = 'y'")
        assert result.rows == [(20,)]
        assert result.optimized.semijoin_reducers


class TestScanMetrics:
    def test_merge(self):
        a = ScanMetrics(rows=10, disk_bytes=100, cache_bytes=5,
                        files_opened=2)
        b = ScanMetrics(rows=4, disk_bytes=50, cache_bytes=0,
                        files_opened=1, external_time_s=0.5)
        a.merge(b)
        assert a.rows == 14 and a.disk_bytes == 150
        assert a.files_opened == 3 and a.external_time_s == 0.5

    def test_cache_attribution_llap_vs_direct(self, session):
        server = session.server
        server.llap_cache.clear()
        server.llap_factory._metadata.clear()
        server.llap_factory.io.reset()
        cold = session.execute("SELECT SUM(v) FROM p")
        warm = session.execute("SELECT SUM(v) FROM p")
        assert cold.metrics.disk_bytes > 0
        assert warm.metrics.cache_bytes > 0
        assert warm.metrics.disk_bytes == 0
        # container mode attributes everything to disk, every time
        session.conf.llap_enabled = False
        session.conf.llap_cache_enabled = False
        direct = session.execute("SELECT SUM(v) FROM p")
        assert direct.metrics.cache_bytes == 0
        assert direct.metrics.disk_bytes > 0
