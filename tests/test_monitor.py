"""repro.obs.monitor — cluster timeseries, live queries, KILL QUERY,
and the HTTP /metrics exposition layer."""

import json
import threading
import urllib.request

import pytest

import repro
from repro.bench import TPCDS_QUERIES, TpcdsScale, create_tpcds_warehouse
from repro.config import HiveConf
from repro.errors import (AnalysisError, HiveError, QueryKilledError,
                          WorkloadManagementError)
from repro.llap.cache import ChunkKey, LlapCache
from repro.llap.placement import files_on_node, node_of
from repro.obs import MetricsRegistry, TimeseriesStore
from repro.obs.live import LiveQueryRegistry
from repro.obs.promparse import parse_prometheus_text, total_series


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


# --------------------------------------------------------------------------- #
# timeseries store

class TestTimeseriesStore:
    def test_append_and_latest(self):
        ts = TimeseriesStore()
        ts.append("txn.open", 3.0, ts_s=1.0, wall_s=100.0)
        ts.append("txn.open", 5.0, ts_s=2.0, wall_s=101.0)
        latest = ts.latest("txn.open")
        assert latest.value == 5.0 and latest.ts_s == 2.0
        assert len(ts.series("txn.open")) == 2

    def test_labels_split_series(self):
        ts = TimeseriesStore()
        ts.append("llap.queue_depth", 1.0, ts_s=0.0, wall_s=0.0, node="0")
        ts.append("llap.queue_depth", 9.0, ts_s=0.0, wall_s=0.0, node="1")
        assert ts.latest("llap.queue_depth", node="0").value == 1.0
        assert ts.latest("llap.queue_depth", node="1").value == 9.0

    def test_capacity_bound(self):
        ts = TimeseriesStore(capacity=4)
        for i in range(50):
            ts.append("g", float(i), ts_s=float(i), wall_s=0.0)
        series = ts.series("g")
        assert len(series) == 4
        assert [s.value for s in series] == [46.0, 47.0, 48.0, 49.0]

    def test_capacity_must_allow_rate(self):
        with pytest.raises(ValueError):
            TimeseriesStore(capacity=1)

    def test_rate_increase_over_window(self):
        ts = TimeseriesStore()
        for t, v in [(0.0, 0.0), (30.0, 6.0), (60.0, 12.0)]:
            ts.append("faults.injected", v, ts_s=t, wall_s=0.0)
        # window [0, 60]: increase 12 over 60s
        assert ts.rate("faults.injected", 60.0, now_s=60.0) == \
            pytest.approx(0.2)
        # window [30, 60]: only the last two samples count
        assert ts.rate("faults.injected", 30.0, now_s=60.0) == \
            pytest.approx(0.2)

    def test_rate_sums_labeled_series(self):
        ts = TimeseriesStore()
        for node in ("0", "1"):
            ts.append("c", 0.0, ts_s=0.0, wall_s=0.0, node=node)
            ts.append("c", 3.0, ts_s=10.0, wall_s=0.0, node=node)
        assert ts.rate("c", 10.0, now_s=10.0) == pytest.approx(0.6)

    def test_rate_needs_two_samples(self):
        ts = TimeseriesStore()
        assert ts.rate("missing", 60.0, now_s=0.0) is None
        ts.append("one", 5.0, ts_s=0.0, wall_s=0.0)
        assert ts.rate("one", 60.0, now_s=0.0) is None

    def test_rate_clamps_counter_reset(self):
        ts = TimeseriesStore()
        ts.append("c", 100.0, ts_s=0.0, wall_s=0.0)
        ts.append("c", 2.0, ts_s=10.0, wall_s=0.0)
        assert ts.rate("c", 60.0, now_s=10.0) == 0.0

    def test_rows_are_sorted_and_rendered(self):
        ts = TimeseriesStore()
        ts.append("b", 1.0, ts_s=2.0, wall_s=0.0, node="1")
        ts.append("a", 1.0, ts_s=1.0, wall_s=0.0)
        rows = list(ts.rows())
        assert rows[0][0] <= rows[1][0]
        labeled = [r for r in rows if r[2] == "b"]
        assert labeled[0][3] == "node=1"


# --------------------------------------------------------------------------- #
# live query registry

class TestLiveQueryRegistry:
    def test_register_update_finish(self):
        live = LiveQueryRegistry()
        live.register(7, "SELECT 1", database="tpcds")
        live.update(7, phase="optimize")
        row = live.rows()[0]
        assert row[0] == 7 and row[2] == "tpcds" and row[4] == "optimize"
        live.finish(7)
        assert len(live) == 0

    def test_vertex_progress_and_eta(self):
        live = LiveQueryRegistry()
        live.register(1, "q")
        live.vertex_progress(1, 1, 4, tasks_done=10, tasks_total=40,
                             elapsed_s=2.0, pool_p50=10.0)
        entry = live.get(1)
        assert entry.phase == "running vertex 1/4"
        assert entry.progress == pytest.approx(0.25)
        assert entry.eta_s == pytest.approx(8.0)      # p50 - elapsed
        live.vertex_progress(1, 4, 4, tasks_done=40, tasks_total=40,
                             elapsed_s=9.0, pool_p50=None)
        assert live.get(1).phase == "finishing"

    def test_eta_falls_back_to_linear_extrapolation(self):
        live = LiveQueryRegistry()
        live.register(1, "q")
        live.vertex_progress(1, 1, 2, tasks_done=1, tasks_total=2,
                             elapsed_s=4.0, pool_p50=None)
        assert live.get(1).eta_s == pytest.approx(4.0)

    def test_kill_flag_raises_at_checkpoint(self):
        live = LiveQueryRegistry()
        live.register(3, "q")
        assert live.request_kill(3, reason="operator") is True
        with pytest.raises(QueryKilledError) as err:
            live.checkpoint(3)
        assert err.value.query_id == 3
        assert "operator" in str(err.value)

    def test_kill_unknown_id_returns_false(self):
        live = LiveQueryRegistry()
        assert live.request_kill(99) is False

    def test_checkpoint_hooks_do_not_reenter(self):
        live = LiveQueryRegistry()
        live.register(1, "q")
        calls = []

        def hook(entry):
            calls.append(entry.query_id)
            live.checkpoint(1)     # a hook running SQL re-checkpoints

        live.add_checkpoint_hook(hook)
        live.checkpoint(1)
        assert calls == [1]
        live.remove_checkpoint_hook(hook)
        live.checkpoint(1)
        assert calls == [1]

    def test_kill_counters(self):
        registry = MetricsRegistry()
        live = LiveQueryRegistry(registry=registry)
        live.register(5, "q")
        live.request_kill(5)
        live.finish(5, status="killed")
        assert registry.total("monitor.kill_requests") == 1
        assert registry.total("monitor.kills") == 1


# --------------------------------------------------------------------------- #
# driver integration: sys.live_queries + KILL QUERY

class TestLiveQueriesE2E:
    def test_progress_is_visible_and_increasing_mid_flight(self, server):
        session = create_tpcds_warehouse(server, TpcdsScale.tiny())
        live = server.obs.live_queries
        seen = []

        def spy(entry):
            seen.append((entry.phase, entry.progress,
                         entry.vertices_done, entry.vertices_total))

        live.add_checkpoint_hook(spy)
        try:
            session.execute(TPCDS_QUERIES[0].sql)
        finally:
            live.remove_checkpoint_hook(spy)
        assert len(seen) >= 2
        fractions = [p for _, p, _, _ in seen]
        assert fractions == sorted(fractions)
        assert any(d > 0 for _, _, d, _ in seen)
        # total is published with the first completed vertex
        assert seen[-1][3] > 0

    def test_sys_live_queries_row_mid_flight(self, loaded_session,
                                             server):
        rows_seen = []

        def snoop(entry):
            result = loaded_session.execute(
                "SELECT query_id, statement, phase FROM sys.live_queries")
            rows_seen.extend(result.rows)

        server.obs.live_queries.add_checkpoint_hook(snoop)
        try:
            loaded_session.execute(
                "SELECT b, COUNT(*) FROM t GROUP BY b")
        finally:
            server.obs.live_queries.remove_checkpoint_hook(snoop)
        group_rows = [r for r in rows_seen if "GROUP BY" in r[1]]
        assert group_rows, "running query missing from sys.live_queries"
        # the statement is gone once finished
        after = loaded_session.execute(
            "SELECT statement FROM sys.live_queries").rows
        assert not any("GROUP BY" in r[0] for r in after)

    def test_kill_query_statement_mid_flight(self, server):
        session = create_tpcds_warehouse(server, TpcdsScale.tiny())
        killer = server.connect()
        live = server.obs.live_queries

        def assassin(entry):
            live.remove_checkpoint_hook(assassin)
            killer.execute(f"KILL QUERY {entry.query_id}")

        live.add_checkpoint_hook(assassin)
        with pytest.raises(QueryKilledError):
            session.execute(TPCDS_QUERIES[0].sql)
        # flight recorder shows the kill; the WM event log audits it
        log = session.execute(
            "SELECT status FROM sys.query_log "
            "WHERE status = 'killed'").rows
        assert log, "killed query missing from sys.query_log"
        events = session.execute(
            "SELECT trigger_name FROM sys.wm_events").rows
        assert ("kill_query",) in events
        assert server.obs.registry.total("monitor.kills") == 1

    def test_kill_query_unknown_id_is_an_error(self, session):
        with pytest.raises(AnalysisError, match="no live query"):
            session.execute("KILL QUERY 424242")

    def test_kill_query_unparses(self):
        from repro.sql.parser import parse_statement
        statement = parse_statement("KILL QUERY 17")
        assert statement.query_id == 17
        assert statement.unparse() == "KILL QUERY 17"


# --------------------------------------------------------------------------- #
# cluster timeseries + sys tables

class TestClusterTimeseries:
    def test_interval_sampling_records_multiple_points(self, server):
        session = server.connect()
        session.execute("SET hive.monitor.sample.interval.s=0.001")
        session.execute("CREATE TABLE t (a INT)")
        for i in range(4):
            session.execute(f"INSERT INTO t VALUES ({i})")
            session.execute(f"SELECT COUNT(*) + {i} FROM t")
        rows = session.execute(
            "SELECT ts_s FROM sys.timeseries "
            "WHERE name = 'txn.open'").rows
        assert len(rows) >= 2
        stamps = [r[0] for r in rows]
        assert stamps == sorted(stamps)
        assert stamps[-1] > stamps[0]

    def test_cluster_nodes_and_daemons_tables(self, server):
        session = server.connect()
        nodes = session.execute("SELECT * FROM sys.cluster_nodes")
        assert len(nodes.rows) == server.conf.num_nodes
        assert all(row[1] == "alive" for row in nodes.rows)
        daemons = session.execute(
            "SELECT node, cache_bytes, occupancy FROM sys.llap_daemons")
        assert len(daemons.rows) == server.conf.num_nodes

    def test_daemon_heatmap_follows_cache_usage(self, server):
        session = create_tpcds_warehouse(server, TpcdsScale.tiny())
        session.execute(TPCDS_QUERIES[0].sql)      # warm the cache
        total = session.execute(
            "SELECT SUM(cache_bytes) FROM sys.llap_daemons").rows[0][0]
        assert total == server.llap_cache.used_bytes

    def test_scrape_also_samples(self, server):
        before = len(server.obs.timeseries)
        server.obs.scrape()
        assert len(server.obs.timeseries) >= before
        sample = server.obs.timeseries.latest("txn.open")
        assert sample is not None and sample.source == "scrape"

    def test_sampling_disabled_with_nonpositive_interval(self, server):
        session = server.connect()
        session.execute("SET hive.monitor.sample.interval.s=0")
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1)")
        count = session.execute(
            "SELECT COUNT(*) FROM sys.timeseries").rows[0][0]
        session.execute("SELECT a FROM t")
        after = session.execute(
            "SELECT COUNT(*) FROM sys.timeseries").rows[0][0]
        assert after == count


# --------------------------------------------------------------------------- #
# metric help metadata

class TestMetricHelp:
    def test_registry_can_require_help(self):
        registry = MetricsRegistry(require_help=True)
        with pytest.raises(HiveError, match="help"):
            registry.counter("no.such.metric")
        registry.counter("documented", help="a documented counter").inc()
        assert registry.describe("documented") == "a documented counter"

    def test_catalog_backfills_known_names(self):
        registry = MetricsRegistry(require_help=True)
        registry.counter("queries.total").inc()
        assert registry.describe("queries.total")

    def test_sys_metrics_exposes_help_column(self, loaded_session):
        loaded_session.execute("SELECT COUNT(*) FROM t")
        rows = loaded_session.execute(
            "SELECT name, help FROM sys.metrics").rows
        assert rows
        missing = sorted({name for name, help_text in rows
                          if not help_text})
        assert missing == [], f"metrics without help: {missing}"


# --------------------------------------------------------------------------- #
# HTTP exposition

class TestHttpExposition:
    @pytest.fixture
    def monitored_server(self, conf):
        server = repro.HiveServer2(conf)
        server.obs.start_http()
        yield server
        server.obs.stop_http()

    def test_metrics_endpoint_is_valid_prometheus(self, monitored_server):
        session = create_tpcds_warehouse(monitored_server,
                                         TpcdsScale.tiny())
        session.execute(TPCDS_QUERIES[0].sql)
        url = monitored_server.obs.http_server.url
        body = _get(url + "/metrics").decode()
        families = parse_prometheus_text(body)
        assert total_series(families) >= 50
        used = families["hive_llap_cache_used_bytes"]
        assert used.type == "gauge" and used.help
        assert {s.labels.get("node") for s in used.samples} == \
            {str(n) for n in range(monitored_server.conf.num_nodes)}
        latency = families.get("hive_query_latency_s")
        assert latency is not None and latency.type == "histogram"

    def test_healthz_and_ui(self, monitored_server):
        url = monitored_server.obs.http_server.url
        assert _get(url + "/healthz").decode().strip() == "ok"
        ui = json.loads(_get(url + "/ui"))
        assert set(ui) >= {"live_queries", "nodes", "wm_events",
                           "fault_events", "timeseries"}
        assert len(ui["nodes"]) == monitored_server.conf.num_nodes

    def test_unknown_path_is_404(self, monitored_server):
        url = monitored_server.obs.http_server.url
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(url + "/nope")
        assert err.value.code == 404

    def test_scrape_records_scrape_samples(self, monitored_server):
        url = monitored_server.obs.http_server.url
        _get(url + "/metrics")
        sample = monitored_server.obs.timeseries.latest("txn.open")
        assert sample is not None and sample.source == "scrape"

    def test_http_port_knob_autostarts(self, conf):
        conf.monitor_http_port = _free_port()
        server = repro.HiveServer2(conf)
        try:
            assert server.obs.http_server is not None
            assert server.obs.http_server.port == conf.monitor_http_port
            body = _get(server.obs.http_server.url + "/healthz")
            assert body.decode().strip() == "ok"
        finally:
            server.obs.stop_http()

    def test_concurrent_scrapes_under_faults(self, conf):
        conf.faults_task_fail_rate = 0.2
        conf.faults_io_error_rate = 0.2
        conf.faults_seed = 42
        server = repro.HiveServer2(conf)
        server.obs.start_http()
        url = server.obs.http_server.url
        errors = []
        stop = threading.Event()

        def scraper():
            reader = server.connect()
            while not stop.is_set():
                try:
                    parse_prometheus_text(_get(url + "/metrics").decode())
                    reader.execute("SELECT * FROM sys.live_queries")
                except Exception as error:      # noqa: BLE001 - reported
                    errors.append(error)
                    return

        threads = [threading.Thread(target=scraper) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            session = create_tpcds_warehouse(server, TpcdsScale.tiny())
            for i, query in enumerate(TPCDS_QUERIES[:6]):
                session.execute(query.sql)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            server.obs.stop_http()
        assert not errors, f"scrape raced the running query: {errors[0]}"
        assert not any(t.is_alive() for t in threads)


def _free_port() -> int:
    import socket
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# --------------------------------------------------------------------------- #
# prometheus parser (it must reject what a scraper would reject)

class TestPromParser:
    def test_rejects_samples_without_headers(self):
        with pytest.raises(ValueError, match="HELP/TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_rejects_bad_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE m widget\nm 1\n")

    def test_rejects_garbage_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("# TYPE m gauge\nm pancake\n")

    def test_rejects_non_cumulative_histogram(self):
        payload = ("# TYPE h histogram\n"
                   'h_bucket{le="1"} 5\n'
                   'h_bucket{le="+Inf"} 3\n'
                   "h_sum 2\nh_count 3\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(payload)

    def test_parses_escaped_labels(self):
        payload = ('# TYPE m gauge\n'
                   'm{q="say \\"hi\\"\\nback\\\\slash"} 1\n')
        families = parse_prometheus_text(payload)
        assert families["m"].samples[0].labels["q"] == \
            'say "hi"\nback\\slash'

    def test_roundtrip_with_renderer(self):
        from repro.obs.exposition import render_prometheus
        registry = MetricsRegistry()
        registry.counter("a.b", help="ab", pool='we"ird\npool').inc(3)
        registry.histogram("lat.s", help="lat").observe(0.5)
        families = parse_prometheus_text(render_prometheus(registry))
        assert families["hive_a_b"].samples[0].labels["pool"] == \
            'we"ird\npool'
        assert families["hive_lat_s"].type == "histogram"


# --------------------------------------------------------------------------- #
# rate() alert rules riding the WM trigger machinery

class TestRateTriggers:
    def _arm(self, session, metric="queries.total", threshold=0.001):
        for sql in [
            "SET hive.monitor.sample.interval.s=0.001",
            "CREATE RESOURCE PLAN prod",
            "CREATE POOL prod.bi WITH alloc_fraction=1.0, "
            "query_parallelism=4",
            "ALTER PLAN prod SET DEFAULT POOL = bi",
            f"CREATE RULE storm IN prod WHEN rate({metric}) > "
            f"{threshold} OVER 60s THEN KILL",
            "ADD RULE storm TO bi",
            "ALTER RESOURCE PLAN prod ENABLE ACTIVATE",
        ]:
            session.execute(sql)

    def test_rate_rule_parses_with_window(self):
        from repro.sql.parser import parse_statement
        statement = parse_statement(
            "CREATE RULE r IN p WHEN rate(faults.injected) > 5 "
            "OVER 120s THEN KILL")
        assert statement.metric == "rate(faults.injected)"
        assert statement.over_s == 120.0
        assert "OVER 120s" in statement.unparse()

    def test_rate_rule_kills_when_rate_exceeds_threshold(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT, b STRING)")
        session.execute("INSERT INTO t VALUES (1,'x'),(2,'y')")
        self._arm(session)
        killed = None
        for i in range(8):
            try:
                session.execute(
                    f"SELECT COUNT(*) + {i} FROM t GROUP BY b")
            except WorkloadManagementError as error:
                killed = error
                break
        assert killed is not None and "storm" in str(killed)
        server.workload_manager.plan.enabled = False
        events = session.execute(
            "SELECT trigger_name, metric FROM sys.wm_events").rows
        assert ("storm", "rate(queries.total)") in events

    def test_rate_rule_idle_metric_never_fires(self, server):
        session = server.connect()
        session.execute("CREATE TABLE t (a INT, b STRING)")
        session.execute("INSERT INTO t VALUES (1,'x'),(2,'y')")
        self._arm(session, metric="faults.injected", threshold=5.0)
        for i in range(5):
            session.execute(f"SELECT COUNT(*) + {i} FROM t GROUP BY b")


# --------------------------------------------------------------------------- #
# placement agreement (satellite: one rule, used everywhere)

class TestPlacementAgreement:
    def test_node_of_basics(self):
        assert node_of(7, 4) == 3
        assert node_of(7, 1) == 0
        assert node_of(7, 0) == 0          # degenerate cluster
        assert files_on_node(range(10), 1, 4) == {1, 5, 9}

    def test_cache_heatmap_and_invalidation_agree(self):
        cache = LlapCache(capacity_bytes=1 << 20)
        num_nodes = 4
        for file_id in range(12):
            cache.put(ChunkKey(file_id, 100, 0, "a"),
                      payload=b"x", nbytes=64)
        usage = cache.node_usage(num_nodes)
        assert sum(chunks for _, chunks in usage.values()) == 12
        for node in range(num_nodes):
            expected = len(files_on_node(range(12), node, num_nodes))
            assert usage[node][1] == expected
        # killing node 2 drops exactly the heatmap's chunk count
        dropped = cache.invalidate_node(2, num_nodes)
        assert dropped == usage[2][1]
        assert cache.node_usage(num_nodes).get(2, (0, 0))[1] == 0

    def test_cluster_monitor_uses_same_rule(self, server):
        monitor = server.obs.cluster
        for file_id in (0, 5, 13):
            assert monitor.node_of(file_id) == \
                node_of(file_id, server.conf.num_nodes)
